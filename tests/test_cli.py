"""Tests for the warehouse CLI (repro.cli)."""

import pytest

from repro.cli import main
from repro.xmlio import fuzzy_to_string, transaction_to_string
from repro import (
    DeleteOperation,
    InsertOperation,
    UpdateTransaction,
)
from repro.tpwj.parser import parse_pattern
from repro.trees import tree


@pytest.fixture
def store(tmp_path, slide12_doc):
    """A warehouse directory initialised from the slide-12 document."""
    doc_file = tmp_path / "doc.xml"
    doc_file.write_text(fuzzy_to_string(slide12_doc))
    path = tmp_path / "wh"
    assert main(["init", str(path), "--document", str(doc_file)]) == 0
    return path


class TestInit:
    def test_init_with_root_label(self, tmp_path, capsys):
        assert main(["init", str(tmp_path / "w"), "--root", "directory"]) == 0
        out = capsys.readouterr().out
        assert "created warehouse" in out and "1 nodes" in out

    def test_init_from_document(self, store, capsys):
        main(["stats", str(store)])
        assert "nodes: 4" in capsys.readouterr().out

    def test_init_twice_fails(self, store, capsys):
        assert main(["init", str(store), "--root", "x"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_query_canonical_output(self, store, capsys):
        assert main(["query", str(store), "//D"]) == 0
        out = capsys.readouterr().out
        assert "0.700000" in out and "A(C(D))" in out

    def test_query_xml_output(self, store, capsys):
        assert main(["query", str(store), "//D", "--xml"]) == 0
        out = capsys.readouterr().out
        assert "<A>" in out and "P = 0.700000" in out

    def test_query_no_answers(self, store, capsys):
        assert main(["query", str(store), "//Z"]) == 0
        assert "(no answers)" in capsys.readouterr().out

    def test_query_limit(self, store, capsys):
        assert main(["query", str(store), "*", "--limit", "2"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2

    def test_bad_pattern_is_an_error(self, store, capsys):
        # Pattern syntax has its own exit code (3), distinct from the
        # generic model-error code (2).
        assert main(["query", str(store), "A {"]) == 3
        err = capsys.readouterr().err
        assert "error:" in err
        # The shared parser helper names the offending argument.
        assert "invalid pattern 'A {'" in err

    def test_query_stream_mode(self, store, capsys):
        # Row mode: lazy match order, --limit pushed into the engine.
        assert main(["query", str(store), "//D", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "0.700000" in out and "A(C(D))" in out
        assert main(["query", str(store), "*", "--stream", "--limit", "2"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert main(["query", str(store), "//Z", "--stream"]) == 0
        assert "(no answers)" in capsys.readouterr().out

    def test_query_without_planner(self, store, capsys):
        assert main(["query", str(store), "//D", "--no-planner"]) == 0
        out = capsys.readouterr().out
        assert "0.700000" in out and "A(C(D))" in out


class TestExplain:
    def test_explain_prints_plan_and_stats(self, store, capsys):
        assert main(["explain", str(store), "/A { //D }"]) == 0
        out = capsys.readouterr().out
        assert "statistics:" in out
        assert "visit order:" in out
        assert "plan cache:" in out

    def test_explain_shares_parse_errors_with_query(self, store, capsys):
        assert main(["explain", str(store), "A {"]) == 3
        err = capsys.readouterr().err
        assert "error:" in err and "invalid pattern 'A {'" in err

    def test_explain_missing_warehouse_is_an_error(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope"), "//D"]) == 2
        assert "error:" in capsys.readouterr().err


class TestUpdate:
    def test_update_from_file(self, store, tmp_path, capsys):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        tx_file = tmp_path / "tx.xml"
        tx_file.write_text(transaction_to_string(tx))
        assert main(["update", str(store), "--xupdate", str(tx_file)]) == 0
        out = capsys.readouterr().out
        assert "applied: True" in out and "matches: 1" in out

    def test_confidence_override(self, store, tmp_path, capsys):
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [DeleteOperation("b")], 1.0
        )
        tx_file = tmp_path / "tx.xml"
        tx_file.write_text(transaction_to_string(tx))
        assert main(
            ["update", str(store), "--xupdate", str(tx_file), "--confidence", "0.4"]
        ) == 0
        assert "event: w3" in capsys.readouterr().out


class TestMaintenance:
    def test_stats(self, store, capsys):
        assert main(["stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 4" in out and "sequence: 1" in out

    def test_simplify(self, store, capsys):
        assert main(["simplify", str(store)]) == 0
        assert "nodes: 4 -> 4" in capsys.readouterr().out

    def test_history_and_tail(self, store, tmp_path, capsys):
        assert main(["history", str(store)]) == 0
        assert "#1  create" in capsys.readouterr().out
        assert main(["history", str(store), "--tail", "0"]) == 0

    def test_worlds(self, store, capsys):
        assert main(["worlds", str(store)]) == 0
        out = capsys.readouterr().out
        assert "A(C(D))" in out and "0.700000" in out

    def test_estimate(self, store, capsys):
        assert main(["estimate", str(store), "//D", "--samples", "500"]) == 0
        out = capsys.readouterr().out
        assert "±" in out and "A(C(D))" in out

    def test_export_roundtrips(self, store, capsys):
        from repro.xmlio import fuzzy_from_string

        assert main(["export", str(store)]) == 0
        document = fuzzy_from_string(capsys.readouterr().out)
        assert document.size() == 4

    def test_missing_warehouse_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestModuleEntry:
    def test_python_dash_m(self, store):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "stats", str(store)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "nodes: 4" in result.stdout


class TestBatchUpdate:
    def test_batch_file_commits_once(self, store, tmp_path, capsys):
        from repro import TransactionBatch
        from repro.xmlio import batch_to_string

        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        batch_file = tmp_path / "batch.xml"
        batch_file.write_text(batch_to_string(TransactionBatch([tx, tx])))
        assert main(["update", str(store), "--xupdate", str(batch_file)]) == 0
        out = capsys.readouterr().out
        assert "batch of 2" in out and "applied: 2" in out
        main(["history", str(store)])
        history = capsys.readouterr().out
        assert "#2  batch" in history
        assert "#3" not in history  # one commit, not two


class TestCompact:
    def test_compact_folds_wal(self, store, capsys):
        # The CLI update commits via the WAL and compacts on close, so
        # drive a pending WAL through the library with a no-compact
        # policy first.
        from repro.api import connect

        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
        )
        with connect(store, snapshot_every=100, compact_on_close=False) as session:
            session.update(tx)
        assert main(["compact", str(store)]) == 0
        out = capsys.readouterr().out
        assert "folded 1 WAL records" in out
        main(["stats", str(store)])
        stats_out = capsys.readouterr().out
        assert "wal_depth: 0" in stats_out

    def test_stats_show_wal_depth(self, store, capsys):
        assert main(["stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "wal_depth:" in out and "snapshot_sequence:" in out


class TestPipeAndInterrupt:
    """Regression: `repro query --stream | head -1` must exit 141 quietly
    (and Ctrl-C 130), releasing the stream's snapshot pin either way."""

    @staticmethod
    def _spy_connect(monkeypatch, record):
        """Wrap repro.cli.connect so the test can observe the session's
        read_sessions gauge at the moment the CLI closes it."""
        import repro.cli as cli

        real_connect = cli.connect

        class SpySession:
            def __init__(self, session):
                self._session = session

            def __getattr__(self, name):
                return getattr(self._session, name)

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                record["read_sessions_at_close"] = self._session.stats()[
                    "read_sessions"
                ]
                return self._session.__exit__(*exc_info)

        monkeypatch.setattr(
            cli, "connect", lambda path, **kw: SpySession(real_connect(path, **kw))
        )

    class _FailingStdout:
        """Raises after the first full row, like a vanished `head -1`."""

        def __init__(self, exc_type):
            self.exc_type = exc_type
            self.writes = 0

        def write(self, text):
            self.writes += 1
            if self.writes > 2:  # print() = one write for text, one for \n
                raise self.exc_type()
            return len(text)

        def flush(self):
            pass

    def test_broken_pipe_exits_141_and_releases_pin(self, store, monkeypatch):
        import sys as _sys

        record = {}
        self._spy_connect(monkeypatch, record)
        monkeypatch.setattr(
            _sys, "stdout", self._FailingStdout(BrokenPipeError)
        )
        assert main(["query", str(store), "*", "--stream"]) == 141
        assert record["read_sessions_at_close"] == 0

    def test_keyboard_interrupt_exits_130_and_releases_pin(
        self, store, monkeypatch
    ):
        import sys as _sys

        record = {}
        self._spy_connect(monkeypatch, record)
        monkeypatch.setattr(
            _sys, "stdout", self._FailingStdout(KeyboardInterrupt)
        )
        assert main(["query", str(store), "*", "--stream"]) == 130
        assert record["read_sessions_at_close"] == 0

    def test_broken_pipe_on_flush_is_quiet(self, store, monkeypatch):
        import sys as _sys

        class FlushBomb:
            def write(self, text):
                return len(text)

            def flush(self):
                raise BrokenPipeError()

        record = {}
        self._spy_connect(monkeypatch, record)
        monkeypatch.setattr(_sys, "stdout", FlushBomb())
        monkeypatch.setattr(
            "repro.cli.print",
            lambda *a, **k: __import__("builtins").print(*a, **k)
            or _sys.stdout.flush(),
            raising=False,
        )
        assert main(["query", str(store), "*", "--stream"]) == 141
        assert record["read_sessions_at_close"] == 0

    def test_real_pipe_to_head(self, store):
        """End to end through a real shell pipe: no traceback, exit 141."""
        import subprocess
        import sys as _sys

        script = (
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))"
        )
        # Enough rows to overflow the pipe buffer needs a bigger store;
        # head closing early after one line is the behaviour under test,
        # so emit each row unbuffered (-u) to force the EPIPE.
        proc = subprocess.run(
            f'"{_sys.executable}" -u -c \'{script}\' query "{store}" "*" '
            "--stream | head -1; echo ${PIPESTATUS[0]}",
            shell=True,
            executable="/bin/bash",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        lines = proc.stdout.strip().splitlines()
        exit_code = int(lines[-1])
        assert exit_code in (0, 141)  # 0 iff every row fit the pipe buffer
        assert "Traceback" not in proc.stderr
