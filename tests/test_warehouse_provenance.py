"""Tests for warehouse provenance: tracing answer probabilities back to
the updates that introduced their events."""

import pytest

from repro import InsertOperation, UpdateTransaction
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.warehouse import Warehouse
from repro.workloads import ExtractionScenario


@pytest.fixture
def warehouse(tmp_path, slide12_doc):
    with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
        yield wh


class TestProvenance:
    def test_update_event_is_traceable(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N", "x"))], 0.5
        )
        report = warehouse._commit_update(tx)
        entry = warehouse.provenance(report.confidence_event)
        assert entry is not None
        assert entry["confidence"] == 0.5
        assert "xu:insert" in entry["transaction"]

    def test_preexisting_event_has_no_origin(self, warehouse):
        assert warehouse.provenance("w1") is None

    def test_unknown_event_has_no_origin(self, warehouse):
        assert warehouse.provenance("nothing") is None

    def test_each_update_gets_its_own_event(self, warehouse):
        events = []
        for confidence in (0.5, 0.6):
            tx = UpdateTransaction(
                parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], confidence
            )
            events.append(warehouse._commit_update(tx).confidence_event)
        assert len(set(events)) == 2
        for event, confidence in zip(events, (0.5, 0.6)):
            assert warehouse.provenance(event)["confidence"] == confidence


class TestExplain:
    def test_explains_answer_events(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N", "x"))], 0.5
        )
        report = warehouse._commit_update(tx)
        answers = warehouse._query_answers("//N")
        assert len(answers) == 1
        records = warehouse.explain(answers[0])
        by_event = {r["event"]: r for r in records}
        assert report.confidence_event in by_event
        origin = by_event[report.confidence_event]["origin"]
        assert origin is not None and origin["confidence"] == 0.5
        assert by_event[report.confidence_event]["probability"] == pytest.approx(0.5)

    def test_initial_events_marked_unoriginated(self, warehouse):
        answers = warehouse._query_answers("//D")  # depends on w2 from the initial doc
        records = warehouse.explain(answers[0])
        assert any(r["event"] == "w2" and r["origin"] is None for r in records)

    def test_explain_over_module_stream(self, tmp_path):
        scenario = ExtractionScenario(seed=3, n_people=2)
        with Warehouse.create(tmp_path / "wh", scenario.initial_document()) as wh:
            for tx in scenario.stream(10):
                wh._commit_update(tx)
            for answer in wh._query_answers("/directory { person { //email } }"):
                records = wh.explain(answer)
                # Every event in a stream-built document must trace back
                # to a committed update.
                assert records
                for record in records:
                    assert record["origin"] is not None
                    assert 0.0 < record["probability"] <= 1.0
