"""Integration tests: the warehouse architecture of slide 3, end to end.

Module streams (IE, cleaning, matching) feed probabilistic updates into
a warehouse; queries come back with confidences; simplification keeps
the store compact; exact, possible-worlds and Monte-Carlo evaluation
agree along the way.
"""

import random

import pytest

from repro import (
    estimate_query,
    query_possible_worlds,
    to_possible_worlds,
)
from repro.core.query import query_fuzzy_tree
from repro.warehouse import Warehouse
from repro.workloads import CleaningScenario, ExtractionScenario, MatchingScenario


class TestExtractionPipeline:
    def test_full_pipeline(self, tmp_path):
        scenario = ExtractionScenario(seed=11, n_people=5)
        with Warehouse.create(tmp_path / "wh", scenario.initial_document()) as wh:
            for tx in scenario.stream(30):
                wh._commit_update(tx)
            # Every query must return ranked, in-range probabilities.
            for pattern in scenario.query_mix():
                answers = wh._query_answers(pattern)
                probabilities = [a.probability for a in answers]
                assert all(0.0 < p <= 1.0 + 1e-9 for p in probabilities)
                assert probabilities == sorted(probabilities, reverse=True)
            stats = wh.stats()
            assert stats["sequence"] == 31
            assert stats["log_entries"] == 31

        # Durability: reopening yields the same answers.
        with Warehouse.open(tmp_path / "wh") as wh:
            scenario2 = ExtractionScenario(seed=11, n_people=5)
            for pattern in scenario2.query_mix():
                wh._query_answers(pattern)

    def test_confidence_accumulates_across_conflicting_facts(self, tmp_path):
        """Two modules proposing emails for the same person both persist."""
        scenario = ExtractionScenario(seed=1, n_people=1)
        with Warehouse.create(tmp_path / "wh", scenario.initial_document()) as wh:
            emails = [tx for tx in scenario.stream(60) if "email" in str(tx.operations)]
            for tx in emails[:2]:
                wh._commit_update(tx)
            answers = wh._query_answers("/directory { person { //email } }")
            # Each inserted email is an independent uncertain fact.
            assert len(answers) >= 1
            for answer in answers:
                assert answer.probability < 1.0


class TestCleaningPipeline:
    def test_dedup_then_simplify_shrinks_document(self, tmp_path):
        scenario = CleaningScenario(seed=5, n_products=4, duplicate_rate=1.0)
        with Warehouse.create(tmp_path / "wh", scenario.initial_document()) as wh:
            before_nodes = wh.stats()["nodes"]
            for tx in scenario.stream(6):
                wh._commit_update(tx)
            grown = wh.stats()["nodes"]
            report = wh.simplify()
            shrunk = wh.stats()["nodes"]
            assert grown >= before_nodes  # survivor copies accumulated
            assert shrunk <= grown
            assert report.nodes_after == shrunk

    def test_simplify_does_not_change_answers(self, tmp_path):
        scenario = CleaningScenario(seed=6, n_products=3, duplicate_rate=1.0)
        with Warehouse.create(tmp_path / "wh", scenario.initial_document()) as wh:
            for tx in scenario.stream(4):
                wh._commit_update(tx)
            pattern = scenario.query_mix()[0]
            before = {
                a.tree.canonical(): a.probability for a in wh._query_answers(pattern)
            }
            wh.simplify()
            after = {
                a.tree.canonical(): a.probability for a in wh._query_answers(pattern)
            }
            assert set(before) == set(after)
            for key in before:
                assert after[key] == pytest.approx(before[key], abs=1e-9)


class TestThreeEvaluatorsAgree:
    def test_exact_worlds_and_montecarlo(self):
        scenario = MatchingScenario(seed=7)
        doc = scenario.initial_document()
        from repro.core.update import apply_update

        for tx in scenario.stream(4):
            apply_update(doc, tx)

        pattern = scenario.query_mix()[1]  # //match
        exact = {
            a.tree.canonical(): a.probability
            for a in query_fuzzy_tree(doc, pattern)
        }
        via_worlds = {
            w.tree.canonical(): w.probability
            for w in query_possible_worlds(to_possible_worlds(doc), pattern)
        }
        assert set(exact) == set(via_worlds)
        for key in exact:
            assert exact[key] == pytest.approx(via_worlds[key], abs=1e-9)

        estimates = {
            e.tree.canonical(): e.probability
            for e in estimate_query(doc, pattern, samples=3000, rng=random.Random(8))
        }
        for key, probability in exact.items():
            assert estimates.get(key, 0.0) == pytest.approx(probability, abs=0.05)


class TestMixedModules:
    def test_three_module_types_share_one_warehouse(self, tmp_path):
        """Slide 3: several modules feed the same store."""
        extraction = ExtractionScenario(seed=21, n_people=3)
        with Warehouse.create(tmp_path / "wh", extraction.initial_document()) as wh:
            matching = MatchingScenario(seed=22)
            # Interleave extraction inserts with a matching-style annotation
            # under the directory root.
            from repro import InsertOperation, UpdateTransaction
            from repro.tpwj.parser import parse_pattern
            from repro.trees import tree

            for index, tx in enumerate(extraction.stream(10)):
                wh._commit_update(tx)
                if index % 3 == 0:
                    annotation = UpdateTransaction(
                        parse_pattern("/directory[$d]"),
                        [InsertOperation("d", tree("audit", tree("note", f"n{index}")))],
                        0.99,
                    )
                    wh._commit_update(annotation)
            wh.document.validate()
            assert wh.stats()["sequence"] > 10
