"""Unit tests for fuzzy data simplification (repro.core.simplify)."""

import pytest

from repro import (
    Condition,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    simplify,
    to_possible_worlds,
)
from repro.core.simplify import ALL_RULES


def doc_with(events: dict, build) -> FuzzyTree:
    table = EventTable(events)
    return FuzzyTree(build(), table)


class TestCertainRule:
    def test_probability_one_literal_dropped(self):
        doc = doc_with(
            {"sure": 1.0},
            lambda: FuzzyNode(
                "A", children=[FuzzyNode("B", condition=Condition.of("sure"))]
            ),
        )
        report = simplify(doc, rules=("certain", "gc"))
        assert doc.root.children[0].condition.is_true
        assert report.dropped_literals == 1
        assert "sure" not in doc.events

    def test_probability_zero_positive_literal_removes_node(self):
        doc = doc_with(
            {"never": 0.0},
            lambda: FuzzyNode(
                "A", children=[FuzzyNode("B", condition=Condition.of("never"))]
            ),
        )
        simplify(doc, rules=("certain",))
        assert doc.size() == 1

    def test_probability_one_negative_literal_removes_node(self):
        doc = doc_with(
            {"sure": 1.0},
            lambda: FuzzyNode(
                "A", children=[FuzzyNode("B", condition=Condition.of("!sure"))]
            ),
        )
        simplify(doc, rules=("certain",))
        assert doc.size() == 1


class TestImpossibleRule:
    def test_path_conflict_removes_subtree(self):
        doc = doc_with(
            {"w1": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode(
                        "B",
                        condition=Condition.of("w1"),
                        children=[
                            FuzzyNode(
                                "C",
                                condition=Condition.of("!w1"),
                                children=[FuzzyNode("D")],
                            )
                        ],
                    )
                ],
            ),
        )
        report = simplify(doc, rules=("impossible",))
        assert doc.size() == 2  # A and B remain
        assert report.removed_impossible == 2  # C and D


class TestImpliedRule:
    def test_ancestor_literal_dropped_from_descendant(self):
        doc = doc_with(
            {"w1": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode(
                        "B",
                        condition=Condition.of("w1"),
                        children=[FuzzyNode("C", condition=Condition.of("w1"))],
                    )
                ],
            ),
        )
        simplify(doc, rules=("implied",))
        c = doc.root.children[0].children[0]
        assert c.condition.is_true

    def test_opposite_polarity_not_dropped(self):
        doc = doc_with(
            {"w1": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode(
                        "B",
                        condition=Condition.of("w1"),
                        children=[FuzzyNode("C", condition=Condition.of("!w1"))],
                    )
                ],
            ),
        )
        simplify(doc, rules=("implied",))
        c = doc.root.children[0].children[0]
        assert c.condition == Condition.of("!w1")


class TestSiblingMerge:
    def test_complementary_pair_merges(self):
        doc = doc_with(
            {"w1": 0.5, "w2": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1", "w2")),
                    FuzzyNode("B", condition=Condition.of("w1", "!w2")),
                ],
            ),
        )
        report = simplify(doc, rules=("siblings", "gc"))
        assert report.merged_siblings == 1
        assert doc.size() == 2
        assert doc.root.children[0].condition == Condition.of("w1")
        assert "w2" not in doc.events

    def test_identical_conditions_not_merged(self):
        # Two copies with the SAME condition are a genuine multiset of 2.
        doc = doc_with(
            {"w1": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1")),
                    FuzzyNode("B", condition=Condition.of("w1")),
                ],
            ),
        )
        simplify(doc)
        assert doc.size() == 3

    def test_different_subtrees_not_merged(self):
        doc = doc_with(
            {"w1": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", value="x", condition=Condition.of("w1")),
                    FuzzyNode("B", value="y", condition=Condition.of("!w1")),
                ],
            ),
        )
        simplify(doc)
        assert doc.size() == 3

    def test_children_conditions_must_match_too(self):
        doc = doc_with(
            {"w1": 0.5, "w2": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode(
                        "B",
                        condition=Condition.of("w1"),
                        children=[FuzzyNode("C", condition=Condition.of("w2"))],
                    ),
                    FuzzyNode(
                        "B",
                        condition=Condition.of("!w1"),
                        children=[FuzzyNode("C")],
                    ),
                ],
            ),
        )
        simplify(doc, rules=("siblings",))
        assert len(doc.root.children) == 2  # not mergeable

    def test_cascading_merges(self):
        # Four complementary copies collapse pairwise then fully.
        doc = doc_with(
            {"w1": 0.5, "w2": 0.5},
            lambda: FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1", "w2")),
                    FuzzyNode("B", condition=Condition.of("w1", "!w2")),
                    FuzzyNode("B", condition=Condition.of("!w1", "w2")),
                    FuzzyNode("B", condition=Condition.of("!w1", "!w2")),
                ],
            ),
        )
        simplify(doc, rules=("siblings",))
        assert doc.size() == 2
        assert doc.root.children[0].condition.is_true


class TestGc:
    def test_unused_events_collected(self, slide12_doc):
        slide12_doc.events.declare("orphan", 0.4)
        report = simplify(slide12_doc, rules=("gc",))
        assert report.collected_events == 1
        assert "orphan" not in slide12_doc.events

    def test_used_events_kept(self, slide12_doc):
        simplify(slide12_doc, rules=("gc",))
        assert set(slide12_doc.events.names()) == {"w1", "w2"}


class TestSemanticsPreservation:
    @pytest.mark.parametrize("rules", [ALL_RULES] + [(rule,) for rule in ALL_RULES])
    def test_each_rule_preserves_distribution(self, slide12_doc, rules):
        before = to_possible_worlds(slide12_doc)
        simplify(slide12_doc, rules=rules)
        assert to_possible_worlds(slide12_doc).same_distribution(before, 1e-12)

    def test_after_update_chain(self, slide15_doc):
        from repro import (
            DeleteOperation,
            InsertOperation,
            UpdateTransaction,
        )
        from repro.core.update import apply_update
        from repro.tpwj.parser import parse_pattern
        from repro.trees import tree as t

        tx = UpdateTransaction(
            parse_pattern("/A[$a] { B, C[$c] }"),
            [DeleteOperation("c"), InsertOperation("a", t("D"))],
            0.9,
        )
        apply_update(slide15_doc, tx)
        before = to_possible_worlds(slide15_doc)
        report = simplify(slide15_doc)
        after = to_possible_worlds(slide15_doc)
        assert after.same_distribution(before, 1e-12)
        assert report.nodes_after <= report.nodes_before

    def test_unknown_rule_rejected(self, slide12_doc):
        with pytest.raises(ValueError, match="unknown"):
            simplify(slide12_doc, rules=("bogus",))

    def test_report_measures(self, slide12_doc):
        report = simplify(slide12_doc)
        assert report.nodes_before == 4
        assert report.rounds >= 1
