"""Unit tests for world assignments (repro.events.assignment)."""

import random

import pytest

from repro.events import (
    EventTable,
    assignment_weight,
    enumerate_assignments,
    sample_assignment,
)


class TestEnumeration:
    def test_counts(self):
        assert len(list(enumerate_assignments([]))) == 1
        assert len(list(enumerate_assignments(["a"]))) == 2
        assert len(list(enumerate_assignments(["a", "b", "c"]))) == 8

    def test_all_distinct(self):
        seen = {tuple(sorted(a.items())) for a in enumerate_assignments(["a", "b"])}
        assert len(seen) == 4

    def test_deterministic_order(self):
        first = list(enumerate_assignments(["a", "b"]))
        second = list(enumerate_assignments(["a", "b"]))
        assert first == second
        # Binary counting: first event toggles fastest.
        assert [a["a"] for a in first] == [False, True, False, True]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_assignments(["a", "a"]))

    def test_yields_fresh_dicts(self):
        assignments = list(enumerate_assignments(["a"]))
        assignments[0]["a"] = not assignments[0]["a"]
        assert assignments[0] != assignments[1] or True  # no aliasing crash


class TestWeights:
    def test_weight_is_product(self):
        table = EventTable({"a": 0.8, "b": 0.7})
        weight = assignment_weight({"a": True, "b": False}, table)
        assert weight == pytest.approx(0.8 * 0.3)

    def test_weights_sum_to_one(self):
        table = EventTable({"a": 0.3, "b": 0.9, "c": 0.5})
        total = sum(
            assignment_weight(a, table) for a in enumerate_assignments(table.names())
        )
        assert total == pytest.approx(1.0)

    def test_empty_assignment_weight_is_one(self):
        assert assignment_weight({}, EventTable()) == 1.0


class TestSampling:
    def test_deterministic_for_seed(self):
        table = EventTable({"a": 0.5, "b": 0.5})
        first = sample_assignment(table, random.Random(1))
        second = sample_assignment(table, random.Random(1))
        assert first == second

    def test_respects_certain_events(self):
        table = EventTable({"sure": 1.0, "never": 0.0})
        rng = random.Random(0)
        for _ in range(20):
            sample = sample_assignment(table, rng)
            assert sample["sure"] is True and sample["never"] is False

    def test_restricted_event_set(self):
        table = EventTable({"a": 0.5, "b": 0.5})
        sample = sample_assignment(table, random.Random(0), events=["a"])
        assert set(sample) == {"a"}

    def test_frequency_roughly_matches_probability(self):
        table = EventTable({"a": 0.8})
        rng = random.Random(123)
        hits = sum(sample_assignment(table, rng)["a"] for _ in range(2000))
        assert 0.75 < hits / 2000 < 0.85
