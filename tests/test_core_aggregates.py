"""Tests for aggregate queries (repro.core.aggregates)."""

import random

import pytest

from repro import (
    Condition,
    EventTable,
    FuzzyNode,
    FuzzyTree,
)
from repro.tpwj.parser import parse_pattern
from repro.core import (
    expected_answers,
    expected_matches,
    match_count_distribution,
    probability_at_least,
)
from repro.tpwj import find_matches


@pytest.fixture
def two_bs():
    """A with two independent uncertain B children (0.5 each)."""
    events = EventTable({"w1": 0.5, "w2": 0.5})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", value="x", condition=Condition.of("w1")),
            FuzzyNode("B", value="y", condition=Condition.of("w2")),
        ],
    )
    return FuzzyTree(root, events)


class TestExpectedMatches:
    def test_sum_of_match_probabilities(self, two_bs):
        assert expected_matches(two_bs, parse_pattern("B")) == pytest.approx(1.0)

    def test_certain_matches(self, slide12_doc):
        assert expected_matches(slide12_doc, parse_pattern("/A { C }")) == pytest.approx(1.0)

    def test_no_match(self, slide12_doc):
        assert expected_matches(slide12_doc, parse_pattern("Z")) == 0.0

    def test_matches_worlds_expectation(self, slide12_doc):
        from repro import to_possible_worlds

        pattern = parse_pattern("*")
        expectation = expected_matches(slide12_doc, pattern)
        brute = sum(
            w.probability * len(find_matches(pattern, w.tree))
            for w in to_possible_worlds(slide12_doc)
        )
        assert expectation == pytest.approx(brute)


class TestExpectedAnswers:
    def test_distinct_answer_expectation(self, two_bs):
        # Answers A(B=x) and A(B=y), each probability 0.5.
        assert expected_answers(two_bs, parse_pattern("B")) == pytest.approx(1.0)

    def test_identical_values_merge_answers(self):
        events = EventTable({"w1": 0.5, "w2": 0.5})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("w1")),
                FuzzyNode("B", condition=Condition.of("w2")),
            ],
        )
        doc = FuzzyTree(root, events)
        # One distinct answer A(B), probability 1 - 0.25 = 0.75; but two
        # matches with expected count 1.0.
        assert expected_answers(doc, parse_pattern("B")) == pytest.approx(0.75)
        assert expected_matches(doc, parse_pattern("B")) == pytest.approx(1.0)


class TestCountDistribution:
    def test_binomial_shape(self, two_bs):
        distribution = match_count_distribution(two_bs, parse_pattern("B"))
        assert distribution == pytest.approx({0: 0.25, 1: 0.5, 2: 0.25})

    def test_sums_to_one(self, slide12_doc):
        distribution = match_count_distribution(slide12_doc, parse_pattern("*"))
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_commutes_with_worlds(self, slide12_doc):
        from repro import to_possible_worlds

        pattern = parse_pattern("/A { B }")
        distribution = match_count_distribution(slide12_doc, pattern)
        brute: dict[int, float] = {}
        for world in to_possible_worlds(slide12_doc):
            count = len(find_matches(pattern, world.tree))
            brute[count] = brute.get(count, 0.0) + world.probability
        assert distribution == pytest.approx(brute)

    def test_random_instances_commute(self):
        from repro import to_possible_worlds
        from repro.workloads import (
            FuzzyWorkloadConfig,
            random_fuzzy_tree,
            random_query_for,
        )

        rng = random.Random(60)
        for _ in range(10):
            doc = random_fuzzy_tree(rng, FuzzyWorkloadConfig(n_events=3))
            pattern = random_query_for(rng, doc.root, max_nodes=3)
            distribution = match_count_distribution(doc, pattern)
            brute: dict[int, float] = {}
            for world in to_possible_worlds(doc):
                count = len(find_matches(pattern, world.tree))
                brute[count] = brute.get(count, 0.0) + world.probability
            assert distribution == pytest.approx(brute)

    def test_expectation_consistent_with_distribution(self, two_bs):
        pattern = parse_pattern("B")
        distribution = match_count_distribution(two_bs, pattern)
        mean = sum(count * weight for count, weight in distribution.items())
        assert mean == pytest.approx(expected_matches(two_bs, pattern))


class TestTailProbability:
    def test_at_least_zero_is_one(self, two_bs):
        assert probability_at_least(two_bs, parse_pattern("B"), 0) == 1.0

    def test_at_least_one(self, two_bs):
        assert probability_at_least(two_bs, parse_pattern("B"), 1) == pytest.approx(0.75)

    def test_at_least_two(self, two_bs):
        assert probability_at_least(two_bs, parse_pattern("B"), 2) == pytest.approx(0.25)

    def test_beyond_possible_count_is_zero(self, two_bs):
        assert probability_at_least(two_bs, parse_pattern("B"), 3) == 0.0

    def test_with_negation(self, slide12_doc):
        # "A C child with no D": holds iff ¬w2 -> 0.3.
        probability = probability_at_least(
            slide12_doc, parse_pattern("C { !D }"), 1
        )
        assert probability == pytest.approx(0.3)
