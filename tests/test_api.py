"""Tests for the public session API (repro.api).

This file is the deprecation firewall: CI runs it under
``-W error::DeprecationWarning``, so nothing here (nor any internal
code it exercises) may touch the library's own deprecated shims.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import errors
from repro.analysis import counters
from repro.api import (
    PatternBuilder,
    Session,
    connect,
    pattern,
    update,
)
from repro.core.query import query_fuzzy_tree
from repro.tpwj.match import MatchConfig, find_matches
from repro.tpwj.parser import format_pattern, parse_pattern
from repro.trees import RandomTreeConfig, random_tree, tree
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import UpdateTransaction
from repro.xmlio.xupdate import transaction_from_string, transaction_to_string

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture
def session(tmp_path):
    with connect(tmp_path / "wh", create=True, root="directory") as session:
        yield session


def _person_tx(name: str, confidence: float = 1.0):
    return (
        update(pattern("directory", variable="d", anchored=True))
        .insert("d", tree("person", tree("name", name)))
        .confidence(confidence)
    )


def _populate(session: Session, names=("Alice", "Bob", "Carol"), confidence=0.9):
    for name in names:
        session.update(_person_tx(name, confidence))


# ----------------------------------------------------------------------
# connect() and session lifecycle
# ----------------------------------------------------------------------


class TestConnect:
    def test_create_then_reopen(self, tmp_path):
        path = tmp_path / "wh"
        with connect(path, create=True, root="directory") as session:
            _populate(session, ["Alice"])
            sequence = session.sequence
        with connect(path) as session:
            assert session.sequence == sequence
            assert session.query("//name").count() == 1

    def test_create_from_document(self, tmp_path, slide12_doc):
        with connect(tmp_path / "wh", create=True, document=slide12_doc) as session:
            assert session.stats()["nodes"] == slide12_doc.size()

    def test_create_needs_a_source(self, tmp_path):
        with pytest.raises(errors.WarehouseError):
            connect(tmp_path / "wh", create=True)

    def test_open_rejects_create_arguments(self, tmp_path):
        with pytest.raises(errors.WarehouseError):
            connect(tmp_path / "wh", root="directory")

    def test_policy_kwargs_reach_the_warehouse(self, tmp_path):
        with connect(
            tmp_path / "wh",
            create=True,
            root="r",
            snapshot_every=7,
            wal_bytes_limit=1234,
            compact_on_close=False,
        ) as session:
            policy = session.warehouse.policy
            assert policy.snapshot_every == 7
            assert policy.wal_bytes_limit == 1234
            assert policy.compact_on_close is False

    def test_closed_session_raises(self, tmp_path):
        session = connect(tmp_path / "wh", create=True, root="r")
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(errors.SessionClosedError):
            session.query("//x")
        with pytest.raises(errors.SessionClosedError):
            session.update(_person_tx("Zoe"))
        with pytest.raises(errors.SessionClosedError):
            session.stats()

    def test_close_releases_open_snapshots(self, tmp_path):
        session = connect(tmp_path / "wh", create=True, root="r")
        snapshot = session.snapshot()
        assert session.stats()["read_sessions"] == 1
        session.close()
        assert snapshot.closed
        with pytest.raises(errors.SessionClosedError):
            snapshot.query("//x")


# ----------------------------------------------------------------------
# PatternBuilder
# ----------------------------------------------------------------------


class TestPatternBuilder:
    def test_slide6_query(self):
        built = (
            pattern("A", anchored=True)
            .child("B", variable="v")
            .child(pattern("C").descendant("D", variable="v"))
            .build()
        )
        assert format_pattern(built) == "/A { B[$v], C { //D[$v] } }"
        parsed = parse_pattern("/A { B[$v], C { //D[$v] } }")
        assert format_pattern(parsed) == format_pattern(built)

    def test_wildcard_value_and_negation(self):
        built = (
            pattern("*")
            .child("b", value="x y")
            .without("c", descendant=True)
            .build()
        )
        assert format_pattern(built) == '* { b[="x y"], !//c }'

    def test_nested_builder_with_keyword_overrides(self):
        built = pattern("A").child(pattern("B"), variable="v").build()
        assert built.root.children[0].variable == "v"

    def test_value_escaping_round_trips(self):
        built = pattern("A").child("b", value='say "hi" \\ there').build()
        reparsed = parse_pattern(format_pattern(built))
        assert reparsed.root.children[0].value == 'say "hi" \\ there'

    def test_build_is_repeatable_and_fresh(self):
        builder = pattern("A").child("B")
        first, second = builder.build(), builder.build()
        assert first.root is not second.root
        assert format_pattern(first) == format_pattern(second)

    def test_attach_snapshots_the_sub_builder(self):
        # Attaching must not mutate the caller's builder: the same
        # sub-builder under two parents keeps each pattern's own axis
        # and negation.
        sub = pattern("X")
        first = pattern("A").child(sub)
        second = pattern("B").descendant(sub)
        third = pattern("C").without(sub)
        assert format_pattern(first.build()) == "A { X }"
        assert format_pattern(second.build()) == "B { //X }"
        assert format_pattern(third.build()) == "C { !X }"
        # Keyword overrides land on the snapshot, not the original.
        pattern("D").child(sub, variable="v")
        assert format_pattern(pattern("E").child(sub).build()) == "E { X }"

    def test_fluent_equals_and_var(self):
        built = pattern("A").child(PatternBuilder("b").var("x").equals("1")).build()
        assert format_pattern(built) == 'A { b[$x="1"] }'

    def test_anchored_child_rejected(self):
        with pytest.raises(errors.QueryError):
            pattern("A").child(pattern("B", anchored=True))

    def test_negated_root_rejected(self):
        builder = pattern("A")
        builder._negated = True
        with pytest.raises(errors.QueryError):
            builder.build()

    def test_bad_label_rejected(self):
        with pytest.raises(errors.QueryError):
            PatternBuilder("")

    def test_validation_delegates_to_pattern(self):
        # A join variable on a non-leaf is the model's rule, not the
        # builder's: build() surfaces Pattern's own validation.
        builder = (
            pattern("A")
            .child(pattern("B", variable="v").child("C"))
            .descendant("D", variable="v")
        )
        with pytest.raises(errors.QueryError):
            builder.build()


# ----------------------------------------------------------------------
# UpdateBuilder
# ----------------------------------------------------------------------


class TestUpdateBuilder:
    def test_compiles_to_plain_transaction(self):
        built = (
            update(pattern("person", variable="p"))
            .insert("p", tree("email", "a@b"))
            .delete("p")
            .confidence(0.5)
            .build()
        )
        assert isinstance(built, UpdateTransaction)
        assert built.confidence == 0.5
        assert isinstance(built.insertions[0], InsertOperation)
        assert isinstance(built.deletions[0], DeleteOperation)

    def test_label_shorthand_insert(self):
        built = (
            update(pattern("person", variable="p"))
            .insert("p", "email", "a@b")
            .build()
        )
        subtree = built.insertions[0].subtree
        assert subtree.label == "email" and subtree.value == "a@b"

    def test_value_with_node_subtree_rejected(self):
        with pytest.raises(errors.UpdateError):
            update(pattern("p", variable="p")).insert("p", tree("email"), "a@b")

    def test_same_wire_format_as_parser(self):
        built = (
            update("person[$p]").insert("p", tree("email", "a@b")).confidence(0.25)
        ).build()
        reparsed = transaction_from_string(transaction_to_string(built))
        assert transaction_to_string(reparsed) == transaction_to_string(built)

    def test_query_spellings_are_equivalent(self):
        for query in ("person[$p]", parse_pattern("person[$p]"), pattern("person", variable="p")):
            built = update(query).delete("p").build()
            assert format_pattern(built.query) == "person[$p]"

    def test_bad_anchor_variable_rejected_at_build(self):
        with pytest.raises(errors.QueryError):
            update(pattern("person", variable="p")).delete("q").build()


# ----------------------------------------------------------------------
# ResultSet streaming
# ----------------------------------------------------------------------


class TestResultSet:
    def test_rows_match_classic_aggregation(self, session):
        _populate(session)
        rows = session.query("//person { name }").all()
        assert len(rows) == 3
        for row in rows:
            assert 0.0 < row.probability <= 1.0
            assert row.tree.label == "directory"
        answers = session.query("//person { name }").answers()
        classic = query_fuzzy_tree(
            session.document, parse_pattern("//person { name }")
        )
        assert [(a.probability, a.tree.canonical()) for a in answers] == [
            (a.probability, a.tree.canonical()) for a in classic
        ]

    def test_is_lazy(self, session):
        _populate(session)
        counters.reset()
        results = session.query("//person { name }")
        assert counters.prefixed("engine.").get("engine.plans_executed", 0) == 0
        results.first()
        assert counters.prefixed("engine.")["engine.plans_executed"] == 1

    def test_limit_is_a_prefix_of_the_unlimited_order(self, session):
        # Regression for the PR-1 wart: limit(n) runs on the cost-based
        # planner and returns exactly the first n of the deterministic
        # unlimited match order.
        _populate(session)
        full = [row.tree.canonical() for row in session.query("//person { name }")]
        for n in range(len(full) + 2):
            limited = [
                row.tree.canonical()
                for row in session.query("//person { name }").limit(n)
            ]
            assert limited == full[:n]

    def test_limit_hits_the_plan_cache_on_repeat(self, session):
        _populate(session)
        cache = session.warehouse.engine.cache
        session.query("//person { name }").limit(1).all()
        misses = cache.misses
        session.query("//person { name }").limit(2).all()
        assert cache.misses == misses
        assert cache.hits >= 1

    def test_limit_stops_the_enumeration_early(self, session):
        _populate(session, [f"p{i}" for i in range(12)])
        query = "//person { name }"
        counters.reset()
        session.query(query).all()
        full_assignments = counters.prefixed("match.")["match.assignments"]
        counters.reset()
        session.query(query).limit(1).all()
        limited_assignments = counters.prefixed("match.")["match.assignments"]
        assert limited_assignments < full_assignments

    def test_limit_validation_and_composition(self, session):
        _populate(session)
        results = session.query("//person")
        with pytest.raises(errors.QueryError):
            results.limit(-1)
        with pytest.raises(errors.QueryError):
            results.limit(True)
        assert results.limit(5).limit(2).count() == 2
        assert results.limit(0).all() == []

    def test_live_iteration_survives_a_commit(self, session):
        # A live-session iterator pins its document generation: a
        # commit landing between two rows copies-on-write instead of
        # mutating the tree mid-walk (it becomes visible to the *next*
        # iteration, not this one).
        _populate(session, ["Alice", "Bob", "Carol"])
        expected = [r.tree.canonical() for r in session.query("//person { name }")]
        assert session.stats()["read_sessions"] == 0
        stream = iter(session.query("//person { name }"))
        seen = [next(stream).tree.canonical()]
        assert session.stats()["read_sessions"] == 1  # pinned while open
        session.update(
            update(pattern("person", variable="p").child("name", value="Bob"))
            .delete("p")
        )
        seen.extend(r.tree.canonical() for r in stream)
        assert seen == expected  # Bob's deletion is invisible mid-iteration
        assert session.stats()["read_sessions"] == 0  # pin released
        fresh = [r.tree.canonical() for r in session.query("//person { name }")]
        assert fresh != expected  # ...but visible to the next iteration

    def test_first_and_count(self, session):
        _populate(session)
        results = session.query("//person { name }")
        assert results.count() == 3
        first = results.first()
        assert first is not None
        assert first.tree.canonical() == next(iter(results)).tree.canonical()
        assert session.query("//zzz").first() is None
        # first() closes its iterator: the pin is released immediately,
        # not whenever the abandoned generator happens to be collected.
        assert session.stats()["read_sessions"] == 0

    def test_bindings(self, session):
        _populate(session, ["Alice"])
        row = session.query(pattern("person").child("name", variable="n")).first()
        assert row.bindings() == {"n": "Alice"}

    def test_planner_false_agrees(self, session):
        _populate(session)
        via_planner = session.query("//person { name }").answers()
        via_fixed = session.query("//person { name }", planner=False).answers()
        assert [(a.probability, a.tree.canonical()) for a in via_planner] == [
            (a.probability, a.tree.canonical()) for a in via_fixed
        ]

    def test_row_explain_provenance(self, session):
        _populate(session, ["Alice"], confidence=0.8)
        row = session.query("//person { name }").first()
        records = row.explain()
        assert len(records) == 1
        record = records[0]
        assert record["probability"] == 0.8
        assert record["origin"]["kind"] == "update"

    def test_max_matches_handle_truncates_via_engine(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with connect(path, create=True, document=slide12_doc):
            pass
        with connect(path, match_config=MatchConfig(max_matches=1)) as session:
            # The handle's cap rides the engine's streaming protocol —
            # no fixed-matcher fallback, and the plan cache is used.
            rows = session.query("//*").all()
            assert len(rows) == 1
            assert session.warehouse.engine.cache.misses >= 1


# ----------------------------------------------------------------------
# Snapshot isolation
# ----------------------------------------------------------------------


class TestSnapshots:
    def test_snapshot_pins_state_across_commits(self, session):
        _populate(session, ["Alice"])
        with session.snapshot() as snapshot:
            before = [r.tree.canonical() for r in snapshot.query("//person")]
            _populate(session, ["Bob"])
            after = [r.tree.canonical() for r in snapshot.query("//person")]
            live = [r.tree.canonical() for r in session.query("//person")]
        assert before == after
        assert len(before) == 1 and len(live) == 2

    def test_writer_committing_mid_iteration_does_not_change_reader(self, session):
        _populate(session, ["Alice", "Bob", "Carol"])
        with session.snapshot() as snapshot:
            expected = [r.tree.canonical() for r in snapshot.query("//person { name }")]
            stream = iter(snapshot.query("//person { name }"))
            seen = [next(stream).tree.canonical()]
            # A writer commits (insert + a deletion-heavy simplify)
            # while the reader is mid-iteration.
            _populate(session, ["Dave", "Erin"])
            session.simplify()
            seen.extend(r.tree.canonical() for r in stream)
        assert seen == expected

    def test_snapshot_sequence_and_document(self, session):
        _populate(session, ["Alice"])
        with session.snapshot() as snapshot:
            assert snapshot.sequence == session.sequence
            _populate(session, ["Bob"])
            assert snapshot.sequence < session.sequence
            assert snapshot.document.size() < session.document.size()

    def test_read_sessions_counter(self, session):
        assert session.stats()["read_sessions"] == 0
        first = session.snapshot()
        second = session.snapshot()
        assert session.stats()["read_sessions"] == 2
        assert session.warehouse.read_sessions == 2
        first.close()
        first.close()  # idempotent
        assert session.stats()["read_sessions"] == 1
        second.close()
        assert session.stats()["read_sessions"] == 0

    def test_snapshot_is_cheap_until_a_write(self, session):
        _populate(session, ["Alice"])
        with session.snapshot() as snapshot:
            # No write yet: the snapshot shares the live object.
            assert snapshot.document is session.document
            _populate(session, ["Bob"])
            # Copy-on-write detached the live document, not the pin's.
            assert snapshot.document is not session.document

    def test_two_snapshots_same_generation_share_one_copy(self, session):
        _populate(session, ["Alice"])
        with session.snapshot() as first, session.snapshot() as second:
            assert first.document is second.document
            _populate(session, ["Bob"])
            assert first.document is second.document  # both stayed pinned

    def test_closed_snapshot_raises(self, session):
        snapshot = session.snapshot()
        snapshot.close()
        with pytest.raises(errors.SessionClosedError):
            snapshot.query("//x")
        with pytest.raises(errors.SessionClosedError):
            snapshot.document

    def test_snapshot_explain_provenance(self, session):
        _populate(session, ["Alice"], confidence=0.8)
        with session.snapshot() as snapshot:
            _populate(session, ["Bob"], confidence=0.5)
            row = snapshot.query("//person { name }").first()
            records = row.explain()
            assert records[0]["probability"] == 0.8


# ----------------------------------------------------------------------
# Batched updates through the session
# ----------------------------------------------------------------------


class TestSessionUpdates:
    def test_update_spellings(self, session):
        report = session.update(_person_tx("Alice"))  # builder
        assert report.applied
        built = _person_tx("Bob").build()
        assert session.update(built).applied  # transaction
        wire = transaction_to_string(_person_tx("Carol").build())
        assert session.update(wire).applied  # XUpdate string

    def test_confidence_override(self, session):
        report = session.update(_person_tx("Alice"), confidence=0.25)
        assert report.confidence_event is not None
        assert session.document.events.probability(report.confidence_event) == 0.25

    def test_update_many_is_one_commit(self, session):
        before = session.sequence
        reports = session.update_many([_person_tx("A"), _person_tx("B")])
        assert [r.applied for r in reports] == [True, True]
        assert session.sequence == before + 1

    def test_batch_context_manager(self, session):
        before = session.sequence
        with session.batch() as batch:
            batch.update(_person_tx("A"))
            batch.update(_person_tx("B"), confidence=0.5)
            assert len(batch) == 2
        assert session.sequence == before + 1
        assert batch.reports is not None and len(batch.reports) == 2
        assert batch.reports[1].confidence_event is not None

    def test_batch_aborts_on_exception(self, session):
        before = session.sequence
        with pytest.raises(RuntimeError):
            with session.batch() as batch:
                batch.update(_person_tx("A"))
                raise RuntimeError("abort")
        assert session.sequence == before
        assert batch.reports is None

    def test_simplify_and_compact(self, tmp_path):
        with connect(
            tmp_path / "wh",
            create=True,
            root="directory",
            snapshot_every=100,
            compact_on_close=False,
        ) as session:
            _populate(session, ["Alice"], confidence=0.7)
            assert session.stats()["wal_depth"] > 0
            summary = session.compact()
            assert summary["folded_records"] > 0
            report = session.simplify()
            assert report.nodes_after <= report.nodes_before


# ----------------------------------------------------------------------
# Errors and the 2.0 surface (no deprecated 1.x shims)
# ----------------------------------------------------------------------


class TestErrorsAndShims:
    def test_error_hierarchy(self):
        assert issubclass(errors.PatternSyntaxError, errors.QueryError)
        assert issubclass(errors.SessionClosedError, errors.WarehouseError)
        assert issubclass(errors.WarehouseCorruptError, errors.WarehouseError)
        assert errors.QueryParseError is errors.PatternSyntaxError
        assert issubclass(errors.PatternSyntaxError, errors.ReproError)

    def test_cli_exit_codes_distinct(self):
        from repro.cli import exit_code_for

        assert exit_code_for(errors.PatternSyntaxError("bad")) == 3
        assert exit_code_for(errors.WarehouseCorruptError("bad")) == 4
        assert exit_code_for(errors.WarehouseLockedError("bad")) == 5
        assert exit_code_for(errors.SessionClosedError("bad")) == 6
        assert exit_code_for(errors.WarehouseError("bad")) == 2
        assert exit_code_for(errors.ReproError("bad")) == 2

    def test_bad_query_spelling(self, session):
        with pytest.raises(errors.QueryError):
            session.query(42)

    def test_bad_update_spelling(self, session):
        with pytest.raises(errors.UpdateError):
            session.update(42)

    def test_pattern_syntax_error_from_session(self, session):
        with pytest.raises(errors.PatternSyntaxError):
            session.query("A {")

    def test_module_level_shims_are_gone(self):
        # 2.0 removed the 1.x lazy shims: the attributes no longer
        # resolve at all, and the model-level functions stay available
        # (warning-free) at their defining modules.
        for name in ("parse_pattern", "query_fuzzy_tree", "apply_update"):
            with pytest.raises(AttributeError):
                getattr(repro, name)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist  # noqa: B018

    def test_star_import_is_warning_free(self):
        import warnings

        namespace: dict = {}
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exec("from repro import *", namespace)  # noqa: S102
        assert "connect" in namespace
        assert "QueryOptions" in namespace
        assert "parse_pattern" not in namespace

    def test_warehouse_shims_are_gone(self, tmp_path, slide12_doc):
        # The Warehouse surface is sessions-only in 2.0: the deprecated
        # pass-throughs were deleted outright.
        from repro.warehouse import Warehouse

        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            with pytest.raises(AttributeError):
                warehouse.query  # noqa: B018
            with pytest.raises(AttributeError):
                warehouse.update  # noqa: B018

    def test_version_is_2(self):
        assert repro.__version__.startswith("2.")


# ----------------------------------------------------------------------
# Property: builder round-trips through the text syntax
# ----------------------------------------------------------------------

_LABELS = ["A", "B", "C", "item", "x1", "a.b-c"]
_VALUES = ["", "foo", 'say "hi"', "back\\slash", "x y"]
_VARIABLES = ["v", "w", "x"]


def _random_builder(rng: random.Random, depth: int = 0, negated: bool = False) -> PatternBuilder:
    label = rng.choice(_LABELS + ["*"])
    builder = PatternBuilder(label)
    is_leaf = depth >= 3 or rng.random() < 0.45
    if is_leaf:
        if rng.random() < 0.4:
            builder.equals(rng.choice(_VALUES))
        elif not negated and rng.random() < 0.5:
            # Variables only on leaves: repeats become value joins, and
            # the model requires joined nodes to be leaves.
            builder.var(rng.choice(_VARIABLES))
        return builder
    for _ in range(rng.randint(1, 3)):
        child_negated = not negated and rng.random() < 0.25
        child = _random_builder(rng, depth + 1, negated or child_negated)
        descendant = rng.random() < 0.4
        if child_negated:
            builder.without(child, descendant=descendant)
        elif descendant:
            builder.descendant(child)
        else:
            builder.child(child)
    return builder


def _match_signature(pattern_obj, matches):
    ordered = pattern_obj.positive_nodes()
    return sorted(
        tuple(id(match[node]) for node in ordered) for match in matches
    )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=seeds)
def test_builder_round_trips_through_text_syntax(seed):
    rng = random.Random(seed)
    builder = _random_builder(rng)
    if rng.random() < 0.5:
        builder.anchored()
    built = builder.build()
    text = format_pattern(built)
    reparsed = parse_pattern(text)
    # Structural identity: same fingerprint...
    assert format_pattern(reparsed) == text
    assert reparsed.anchored == built.anchored
    assert len(reparsed.nodes()) == len(built.nodes())
    # ...and the same match set on a random document.
    doc = random_tree(
        rng,
        RandomTreeConfig(max_nodes=30, max_children=4, max_depth=5, labels=_LABELS),
    )
    built_matches = find_matches(built, doc)
    reparsed_matches = find_matches(reparsed, doc)
    assert _match_signature(built, built_matches) == _match_signature(
        reparsed, reparsed_matches
    )
