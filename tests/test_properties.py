"""Property-based tests (hypothesis) for the model's core invariants.

These are the load-bearing tests of the reproduction: the paper's two
commuting diagrams (slides 13 and 14), the expressiveness theorem
(slide 12), semantics preservation of simplification (slide 19), and
the algebraic invariants of the substrates (canonical forms, DNF
probability, disjoint complements).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Condition,
    EventTable,
    from_possible_worlds,
    query_possible_worlds,
    simplify,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.core.query import query_fuzzy_tree
from repro.events import (
    assignment_weight,
    complement_as_disjoint_conditions,
    dnf_probability,
    enumerate_assignments,
)
from repro.trees import Node, RandomTreeConfig, random_tree
from repro.workloads import (
    FuzzyWorkloadConfig,
    random_fuzzy_tree,
    random_query_for,
    random_update_for,
)

# All instance generation is routed through the library's seeded
# generators; hypothesis supplies the seeds.  This keeps shrinking
# meaningful (a seed shrinks towards 0) while reusing generators that
# respect every model invariant.
seeds = st.integers(min_value=0, max_value=2**32 - 1)

SMALL_DOCS = FuzzyWorkloadConfig(
    tree=RandomTreeConfig(max_nodes=14, max_children=3, max_depth=4),
    n_events=3,
)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Trees
# ----------------------------------------------------------------------


def shuffled_copy(node: Node, rng: random.Random) -> Node:
    """A copy of *node* with every child list randomly permuted."""
    fresh = Node(node.label, node.value)
    children = list(node.children)
    rng.shuffle(children)
    for child in children:
        fresh.add_child(shuffled_copy(child, rng))
    return fresh


@relaxed
@given(seeds, seeds)
def test_canonical_invariant_under_sibling_permutation(seed, shuffle_seed):
    doc = random_tree(random.Random(seed), RandomTreeConfig(max_nodes=25))
    permuted = shuffled_copy(doc, random.Random(shuffle_seed))
    assert doc.canonical() == permuted.canonical()


@relaxed
@given(seeds)
def test_clone_preserves_canonical_and_size(seed):
    doc = random_tree(random.Random(seed), RandomTreeConfig(max_nodes=25))
    copy = doc.clone()
    assert copy.canonical() == doc.canonical()
    assert copy.size() == doc.size()


# ----------------------------------------------------------------------
# Event algebra
# ----------------------------------------------------------------------


def random_terms(rng: random.Random, n_events: int = 4):
    names = [f"e{i}" for i in range(n_events)]
    table = EventTable({n: rng.uniform(0.05, 0.95) for n in names})
    terms = []
    for _ in range(rng.randint(1, 4)):
        chosen = rng.sample(names, rng.randint(1, 3))
        terms.append(
            Condition.of(*(n if rng.random() < 0.5 else f"!{n}" for n in chosen))
        )
    return table, names, terms


@relaxed
@given(seeds)
def test_dnf_probability_matches_enumeration(seed):
    table, names, terms = random_terms(random.Random(seed))
    brute = sum(
        assignment_weight(a, table)
        for a in enumerate_assignments(names)
        if any(t.satisfied_by(a) for t in terms)
    )
    assert abs(dnf_probability(terms, table) - brute) < 1e-9


@relaxed
@given(seeds)
def test_complement_pieces_partition_the_complement(seed):
    _table, names, terms = random_terms(random.Random(seed))
    pieces = complement_as_disjoint_conditions(terms)
    for assignment in enumerate_assignments(names):
        in_disjunction = any(t.satisfied_by(assignment) for t in terms)
        holding = sum(1 for p in pieces if p.satisfied_by(assignment))
        assert holding == (0 if in_disjunction else 1)


# ----------------------------------------------------------------------
# Slide 12: expressiveness (fuzzy <-> possible worlds round-trip)
# ----------------------------------------------------------------------


@relaxed
@given(seeds)
def test_fuzzy_to_worlds_is_a_distribution(seed):
    doc = random_fuzzy_tree(random.Random(seed), SMALL_DOCS)
    to_possible_worlds(doc).check_distribution(1e-9)


@relaxed
@given(seeds)
def test_expressiveness_roundtrip(seed):
    doc = random_fuzzy_tree(random.Random(seed), SMALL_DOCS)
    worlds = to_possible_worlds(doc)
    rebuilt = from_possible_worlds(worlds)
    assert to_possible_worlds(rebuilt).same_distribution(worlds, 1e-9)


# ----------------------------------------------------------------------
# Slide 13: query commutation
# ----------------------------------------------------------------------


@relaxed
@given(seeds)
def test_query_commutes_with_semantics(seed):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    pattern = random_query_for(rng, doc.root)
    via_fuzzy = {
        a.tree.canonical(): a.probability for a in query_fuzzy_tree(doc, pattern)
    }
    via_worlds = {
        w.tree.canonical(): w.probability
        for w in query_possible_worlds(to_possible_worlds(doc), pattern)
    }
    assert set(via_fuzzy) == set(via_worlds)
    for key, probability in via_worlds.items():
        assert abs(via_fuzzy[key] - probability) < 1e-9


# ----------------------------------------------------------------------
# Slide 14: update commutation
# ----------------------------------------------------------------------


@relaxed
@given(seeds)
def test_update_commutes_with_semantics(seed):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    tx = random_update_for(rng, doc)
    truth = update_possible_worlds(to_possible_worlds(doc), tx)
    apply_update(doc, tx)
    assert to_possible_worlds(doc).same_distribution(truth, 1e-9)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_update_chains_commute(seed):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(max_nodes=10, max_children=3, max_depth=3),
            n_events=2,
        ),
    )
    worlds = to_possible_worlds(doc)
    for _step in range(3):
        tx = random_update_for(rng, doc)
        worlds = update_possible_worlds(worlds, tx)
        apply_update(doc, tx)
    assert to_possible_worlds(doc).same_distribution(worlds, 1e-9)


# ----------------------------------------------------------------------
# Slide 19: simplification preserves semantics
# ----------------------------------------------------------------------


@relaxed
@given(seeds)
def test_simplify_preserves_semantics(seed):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    for _step in range(2):
        apply_update(doc, random_update_for(rng, doc))
    before = to_possible_worlds(doc)
    report = simplify(doc)
    assert to_possible_worlds(doc).same_distribution(before, 1e-9)
    assert report.nodes_after <= report.nodes_before
    doc.validate()


@relaxed
@given(seeds)
def test_simplify_is_idempotent_on_sizes(seed):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    apply_update(doc, random_update_for(rng, doc))
    simplify(doc)
    size_after_first = doc.size()
    literals_after_first = doc.condition_literal_count()
    simplify(doc)
    assert doc.size() == size_after_first
    assert doc.condition_literal_count() == literals_after_first


# ----------------------------------------------------------------------
# XML round-trips
# ----------------------------------------------------------------------


@relaxed
@given(seeds)
def test_xml_roundtrip_preserves_document(seed):
    from repro.xmlio import fuzzy_from_string, fuzzy_to_string

    doc = random_fuzzy_tree(random.Random(seed), SMALL_DOCS)
    parsed = fuzzy_from_string(fuzzy_to_string(doc))
    assert parsed.root.canonical() == doc.root.canonical()
    assert parsed.events == doc.events


# ----------------------------------------------------------------------
# Negation extension (slide 19)
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_negated_query_commutes_with_semantics(seed):
    from repro.tpwj.pattern import PatternNode

    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    pattern = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
    if pattern.root.value is None:
        pattern.root.add_child(
            PatternNode(
                rng.choice(["A", "B", "C", "D", "E", "F"]),
                descendant=rng.random() < 0.5,
                negated=True,
            )
        )
    via_fuzzy = {
        a.tree.canonical(): a.probability for a in query_fuzzy_tree(doc, pattern)
    }
    via_worlds = {
        w.tree.canonical(): w.probability
        for w in query_possible_worlds(to_possible_worlds(doc), pattern)
    }
    assert set(via_fuzzy) == set(via_worlds)
    for key, probability in via_worlds.items():
        assert abs(via_fuzzy[key] - probability) < 1e-9


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_aggregate_distribution_commutes(seed):
    from repro.core import match_count_distribution
    from repro.tpwj import find_matches

    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    pattern = random_query_for(rng, doc.root, max_nodes=3)
    distribution = match_count_distribution(doc, pattern)
    brute: dict[int, float] = {}
    for world in to_possible_worlds(doc):
        count = len(find_matches(pattern, world.tree))
        brute[count] = brute.get(count, 0.0) + world.probability
    keys = set(distribution) | set(brute)
    for key in keys:
        assert abs(distribution.get(key, 0.0) - brute.get(key, 0.0)) < 1e-9


@relaxed
@given(seeds)
def test_xupdate_roundtrip_preserves_transaction(seed):
    from repro.xmlio import transaction_from_string, transaction_to_string

    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    tx = random_update_for(rng, doc)
    parsed = transaction_from_string(transaction_to_string(tx))
    assert str(parsed.query) == str(tx.query)
    assert parsed.confidence == tx.confidence
    assert len(parsed.operations) == len(tx.operations)
