"""Unit tests for the unordered data-tree substrate (repro.trees.node)."""

import pytest

from repro.errors import TreeError
from repro.trees import Node, tree


class TestConstruction:
    def test_label_only(self):
        node = Node("A")
        assert node.label == "A"
        assert node.value is None
        assert node.children == ()
        assert node.is_leaf and node.is_root

    def test_with_value(self):
        node = Node("B", value="foo")
        assert node.value == "foo"

    def test_with_children(self):
        child = Node("B")
        parent = Node("A", children=[child])
        assert parent.children == (child,)
        assert child.parent is parent

    def test_empty_label_rejected(self):
        with pytest.raises(TreeError):
            Node("")

    def test_non_string_label_rejected(self):
        with pytest.raises(TreeError):
            Node(42)  # type: ignore[arg-type]

    @pytest.mark.parametrize("bad", ["a b", "a(b)", "a{b}", 'a"b', "a,b", "a/b", "a[b]"])
    def test_reserved_characters_rejected(self, bad):
        with pytest.raises(TreeError):
            Node(bad)

    def test_non_string_value_rejected(self):
        with pytest.raises(TreeError):
            Node("A", value=3)  # type: ignore[arg-type]

    def test_value_and_children_rejected(self):
        with pytest.raises(TreeError):
            Node("A", value="x", children=[Node("B")])


class TestMixedContentInvariant:
    def test_add_child_to_valued_node_rejected(self):
        node = Node("A", value="x")
        with pytest.raises(TreeError, match="no mixed content"):
            node.add_child(Node("B"))

    def test_set_value_on_internal_node_rejected(self):
        node = Node("A", children=[Node("B")])
        with pytest.raises(TreeError, match="no mixed content"):
            node.value = "x"

    def test_value_can_be_cleared_and_reset(self):
        node = Node("A", value="x")
        node.value = None
        node.add_child(Node("B"))
        assert node.value is None


class TestMutation:
    def test_add_child_returns_child(self):
        parent = Node("A")
        child = Node("B")
        assert parent.add_child(child) is child

    def test_add_attached_child_rejected(self):
        parent = Node("A")
        child = parent.add_child(Node("B"))
        with pytest.raises(TreeError, match="already has a parent"):
            Node("C").add_child(child)

    def test_cycle_rejected(self):
        a = Node("A")
        b = a.add_child(Node("B"))
        with pytest.raises(TreeError, match="cycle"):
            b.add_child(a)

    def test_self_cycle_rejected(self):
        a = Node("A")
        with pytest.raises(TreeError, match="cycle"):
            a.add_child(a)

    def test_remove_child(self):
        parent = Node("A")
        child = parent.add_child(Node("B"))
        parent.remove_child(child)
        assert parent.children == ()
        assert child.parent is None

    def test_remove_non_child_rejected(self):
        with pytest.raises(TreeError, match="not a child"):
            Node("A").remove_child(Node("B"))

    def test_remove_matches_identity_not_value(self):
        parent = Node("A")
        first = parent.add_child(Node("B"))
        second = parent.add_child(Node("B"))
        parent.remove_child(second)
        assert parent.children == (first,)

    def test_detach(self):
        parent = Node("A")
        child = parent.add_child(Node("B"))
        assert child.detach() is child
        assert child.parent is None and parent.children == ()

    def test_detach_root_is_noop(self):
        node = Node("A")
        assert node.detach() is node

    def test_reattach_after_detach(self):
        a, b = Node("A"), Node("B")
        child = a.add_child(Node("C"))
        child.detach()
        b.add_child(child)
        assert child.parent is b


class TestTraversal:
    @pytest.fixture
    def doc(self):
        # Slide 5 example document.
        return tree(
            "A",
            tree("B", "foo"),
            tree("B", "foo"),
            tree("E", tree("C", "bar")),
            tree("D", tree("F", "nee")),
        )

    def test_preorder(self, doc):
        labels = [node.label for node in doc.iter()]
        assert labels == ["A", "B", "B", "E", "C", "D", "F"]

    def test_iter_dunder(self, doc):
        assert [n.label for n in doc] == [n.label for n in doc.iter()]

    def test_leaves(self, doc):
        assert [leaf.value for leaf in doc.leaves()] == ["foo", "foo", "bar", "nee"]

    def test_ancestors(self, doc):
        c = next(n for n in doc.iter() if n.label == "C")
        assert [a.label for a in c.ancestors()] == ["E", "A"]
        assert [a.label for a in c.ancestors(include_self=True)] == ["C", "E", "A"]

    def test_root(self, doc):
        c = next(n for n in doc.iter() if n.label == "C")
        assert c.root() is doc

    def test_depth(self, doc):
        assert doc.depth() == 0
        c = next(n for n in doc.iter() if n.label == "C")
        assert c.depth() == 2

    def test_size_and_height(self, doc):
        assert doc.size() == 7
        assert doc.height() == 2
        assert Node("X").height() == 0


class TestCanonical:
    def test_sibling_order_irrelevant(self):
        first = tree("A", tree("B"), tree("C"))
        second = tree("A", tree("C"), tree("B"))
        assert first.canonical() == second.canonical()
        assert first.equals(second)

    def test_values_distinguish(self):
        assert not tree("A", "x").equals(tree("A", "y"))
        assert not tree("A", "x").equals(tree("A"))

    def test_multiset_of_children_matters(self):
        two = tree("A", tree("B"), tree("B"))
        one = tree("A", tree("B"))
        assert not two.equals(one)

    def test_deep_unordered_equality(self):
        first = tree("A", tree("B", tree("D"), tree("E")), tree("C"))
        second = tree("A", tree("C"), tree("B", tree("E"), tree("D")))
        assert first.equals(second)

    def test_canonical_is_injective_on_labels(self):
        # Labels cannot contain structural characters, so these differ.
        assert tree("AB").canonical() != tree("A", tree("B")).canonical()

    def test_equality_stays_identity_based(self):
        first, second = tree("A"), tree("A")
        assert first != second and first == first
        assert first.equals(second)


class TestClone:
    def test_clone_is_deep_and_detached(self):
        doc = tree("A", tree("B", "foo"), tree("C", tree("D")))
        copy = doc.clone()
        assert copy is not doc
        assert copy.equals(doc)
        assert copy.parent is None
        # Mutating the copy leaves the original untouched.
        copy.children[0].detach()
        assert doc.size() == 4 and copy.size() == 3

    def test_clone_of_subtree_detaches(self):
        doc = tree("A", tree("B"))
        copy = doc.children[0].clone()
        assert copy.parent is None


class TestDisplay:
    def test_repr_mentions_label(self):
        assert "A" in repr(Node("A"))
        assert "foo" in repr(Node("A", value="foo"))

    def test_pretty_shows_structure(self):
        doc = tree("A", tree("B", "foo"))
        text = doc.pretty()
        assert text.splitlines()[0] == "A"
        assert "B = 'foo'" in text
