"""Unit tests for DNFs, exact probability, and disjoint complements
(repro.events.dnf) — the machinery behind answer combination and
probabilistic deletions."""

import pytest

from repro.events import (
    TRUE,
    Condition,
    Dnf,
    EventTable,
    assignment_weight,
    complement_as_disjoint_conditions,
    dnf_probability,
    enumerate_assignments,
)


def brute_force_probability(terms, table):
    """Reference: enumerate all assignments of the table's events."""
    total = 0.0
    for assignment in enumerate_assignments(table.names()):
        if any(term.satisfied_by(assignment) for term in terms):
            total += assignment_weight(assignment, table)
    return total


class TestDnfStructure:
    def test_empty_is_false(self):
        assert Dnf().is_false and not Dnf().is_true

    def test_true_term_makes_true(self):
        assert Dnf([TRUE]).is_true

    def test_absorption(self):
        # w1 absorbs w1 ∧ w2.
        dnf = Dnf([Condition.of("w1", "w2"), Condition.of("w1")])
        assert dnf.terms == (Condition.of("w1"),)

    def test_absorption_either_order(self):
        dnf = Dnf([Condition.of("w1"), Condition.of("w1", "w2")])
        assert dnf.terms == (Condition.of("w1"),)

    def test_inconsistent_terms_dropped(self):
        from repro.events import Literal

        bad = Condition([Literal("w1"), Literal("w1", False)], allow_inconsistent=True)
        assert Dnf([bad]).is_false

    def test_or_(self):
        dnf = Dnf([Condition.of("w1")]).or_(Condition.of("w2"))
        assert len(dnf.terms) == 2

    def test_equality_ignores_term_order(self):
        a, b = Condition.of("w1"), Condition.of("w2")
        assert Dnf([a, b]) == Dnf([b, a])
        assert hash(Dnf([a, b])) == hash(Dnf([b, a]))

    def test_events_union(self):
        dnf = Dnf([Condition.of("w1"), Condition.of("!w2", "w3")])
        assert dnf.events() == {"w1", "w2", "w3"}

    def test_satisfied_by(self):
        dnf = Dnf([Condition.of("w1"), Condition.of("w2")])
        assert dnf.satisfied_by({"w1": False, "w2": True})
        assert not dnf.satisfied_by({"w1": False, "w2": False})

    def test_non_condition_rejected(self):
        with pytest.raises(TypeError):
            Dnf(["w1"])  # type: ignore[list-item]


class TestDnfProbability:
    def test_false_is_zero(self):
        assert dnf_probability(Dnf(), EventTable()) == 0.0

    def test_true_is_one(self):
        assert dnf_probability(Dnf([TRUE]), EventTable()) == 1.0

    def test_single_conjunction_is_product(self):
        table = EventTable({"w1": 0.8, "w2": 0.7})
        p = dnf_probability([Condition.of("w1", "!w2")], table)
        assert p == pytest.approx(0.8 * 0.3)

    def test_disjunction_inclusion_exclusion(self):
        table = EventTable({"w1": 0.5, "w2": 0.5})
        p = dnf_probability([Condition.of("w1"), Condition.of("w2")], table)
        assert p == pytest.approx(0.75)

    def test_overlapping_terms(self):
        table = EventTable({"a": 0.3, "b": 0.6, "c": 0.9})
        terms = [Condition.of("a", "b"), Condition.of("b", "c"), Condition.of("!a", "!c")]
        assert dnf_probability(terms, table) == pytest.approx(
            brute_force_probability(terms, table)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_dnfs(self, seed):
        import random

        rng = random.Random(seed)
        names = [f"e{i}" for i in range(5)]
        table = EventTable({n: rng.uniform(0.05, 0.95) for n in names})
        terms = []
        for _ in range(rng.randint(1, 5)):
            chosen = rng.sample(names, rng.randint(1, 3))
            terms.append(
                Condition.of(*(n if rng.random() < 0.5 else f"!{n}" for n in chosen))
            )
        assert dnf_probability(terms, table) == pytest.approx(
            brute_force_probability(terms, table)
        )

    def test_accepts_sequence_or_dnf(self):
        table = EventTable({"w1": 0.4})
        terms = [Condition.of("w1")]
        assert dnf_probability(terms, table) == dnf_probability(Dnf(terms), table)


class TestComplementDecomposition:
    def assert_partition_of_complement(self, conditions, pieces, events):
        """Pieces must be pairwise disjoint and cover exactly ¬(∨ conditions)."""
        for assignment in enumerate_assignments(events):
            in_disjunction = any(c.satisfied_by(assignment) for c in conditions)
            holding = [p for p in pieces if p.satisfied_by(assignment)]
            if in_disjunction:
                assert holding == [], f"piece overlaps disjunction at {assignment}"
            else:
                assert len(holding) == 1, f"cover not exact at {assignment}: {holding}"

    def test_single_condition_first_failing_literal_shape(self):
        # ¬(w1 ∧ w3) = ¬w1 ∪ (w1 ∧ ¬w3) — the slide-15 decomposition.
        pieces = complement_as_disjoint_conditions([Condition.of("w1", "w3")])
        assert set(pieces) == {Condition.of("!w1"), Condition.of("w1", "!w3")}

    def test_single_literal(self):
        pieces = complement_as_disjoint_conditions([Condition.of("w1")])
        assert pieces == [Condition.of("!w1")]

    def test_tautology_has_empty_complement(self):
        assert complement_as_disjoint_conditions([TRUE]) == []

    def test_empty_disjunction_complement_is_true(self):
        assert complement_as_disjoint_conditions([]) == [TRUE]

    def test_multi_condition_partition(self):
        conditions = [Condition.of("a", "b"), Condition.of("!b", "c")]
        pieces = complement_as_disjoint_conditions(conditions)
        self.assert_partition_of_complement(conditions, pieces, ["a", "b", "c"])

    @pytest.mark.parametrize("seed", range(10))
    def test_random_partitions(self, seed):
        import random

        rng = random.Random(seed)
        names = [f"e{i}" for i in range(4)]
        conditions = []
        for _ in range(rng.randint(1, 4)):
            chosen = rng.sample(names, rng.randint(1, 3))
            conditions.append(
                Condition.of(*(n if rng.random() < 0.5 else f"!{n}" for n in chosen))
            )
        pieces = complement_as_disjoint_conditions(conditions)
        self.assert_partition_of_complement(conditions, pieces, names)

    def test_probabilities_sum_to_complement(self):
        table = EventTable({"a": 0.2, "b": 0.9})
        conditions = [Condition.of("a"), Condition.of("b")]
        pieces = complement_as_disjoint_conditions(conditions)
        total = sum(table.condition_probability(p) for p in pieces)
        assert total == pytest.approx(1.0 - dnf_probability(conditions, table))

    def test_fixed_order_is_respected(self):
        pieces = complement_as_disjoint_conditions(
            [Condition.of("a", "b")], order=["b", "a"]
        )
        assert set(pieces) == {Condition.of("!b"), Condition.of("b", "!a")}
