"""Tests for process-per-shard serving: wire, ring, supervisor, workers.

The process tests spawn real worker processes (``spawn`` start method)
and exercise the cluster guarantees end to end: thread/process row
parity, acknowledged-commit durability across ``kill -9``, supervisor
respawn with WAL recovery, pinned-snapshot ring migration, and the
single-core degradation to the thread engine.  Everything carries a
``timeout`` mark so a wedged pipe fails fast on CI instead of hanging
the runner.
"""

from __future__ import annotations

import struct
import time
import zlib
from pathlib import Path

import pytest

import repro
from repro.errors import ShardUnavailableError, WarehouseError
from repro.serve import Collection, ProcessCollection, connect_collection
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.wire import (
    FRAME_FORMAT_VERSION,
    Verb,
    WireError,
    decode_frame,
    encode_frame,
)

KEYS = ("alice", "bob", "carol", "dave", "erin")


def _insert_email(value: str, confidence: float = 0.9):
    return (
        repro.update(repro.pattern("person", variable="p", anchored=True))
        .insert("p", repro.tree("email", value))
        .confidence(confidence)
    )


_PATTERN = "/person { email [$e] }"


def _seed_collection(path) -> None:
    with connect_collection(path, create=True, workers=2) as seed:
        for key in KEYS:
            seed.create_document(key, root="person")
            for i in range(3):
                seed.update(key, _insert_email(f"{key}{i}@x", 0.5 + 0.1 * i))


def _wait_shard_alive(collection, key: str, deadline: float = 60.0) -> None:
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if collection.health()["shards"].get(key, {}).get("alive"):
            return
        time.sleep(0.05)
    raise AssertionError(f"shard {key!r} never came back alive")


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestWire:
    def test_frame_round_trip(self):
        payload = {"rows": [1, 2.5, "x"], "nested": {"a": None}}
        frame = encode_frame(Verb.QUERY, 42, payload)
        verb, request_id, decoded = decode_frame(frame)
        assert verb is Verb.QUERY
        assert request_id == 42
        assert decoded == payload

    def test_all_verbs_encode(self):
        for verb in Verb:
            decoded_verb, _, _ = decode_frame(encode_frame(verb, 1, {}))
            assert decoded_verb is verb

    def test_truncated_frame_rejected(self):
        frame = encode_frame(Verb.OK, 7, {"k": "v"})
        for cut in (3, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireError):
                decode_frame(frame[:cut])

    def test_corrupt_payload_rejected(self):
        frame = bytearray(encode_frame(Verb.OK, 7, {"k": "v"}))
        frame[-1] ^= 0xFF
        with pytest.raises(WireError, match="checksum"):
            decode_frame(bytes(frame))

    def test_unknown_verb_rejected(self):
        # The checksum covers the verb byte, so an in-flight flip fails
        # the CRC first; an *honestly signed* unknown verb (a future
        # peer speaking this frame version) must still be rejected.
        body = struct.pack("<I", 2) + b"{}" + struct.pack("<I", 0)
        header = struct.pack("<BBQ", FRAME_FORMAT_VERSION, 0xEE, 7)
        crc = zlib.crc32(body, zlib.crc32(header))
        frame = (
            struct.pack("<I", len(header) + 4 + len(body))
            + header
            + struct.pack("<I", crc)
            + body
        )
        with pytest.raises(WireError, match="verb"):
            decode_frame(frame)

    def test_version_mismatch_rejected(self):
        frame = bytearray(encode_frame(Verb.OK, 7, {}))
        frame[4] = FRAME_FORMAT_VERSION + 1  # past the u32 length prefix
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(frame))

    def test_binary_blobs_round_trip(self):
        payload = {
            "files": {"document.bin": b"\x00\xff\x01snap", "meta.json": b"{}"},
            "note": {"__blob__": 3, "k": b"escaped"},
        }
        _, _, decoded = decode_frame(encode_frame(Verb.SYNC_PUSH, 9, payload))
        assert decoded == payload

    def test_no_pickle_in_cluster_package(self):
        import repro.serve.cluster as cluster_pkg

        package_dir = Path(cluster_pkg.__file__).parent
        for module in package_dir.glob("*.py"):
            source = module.read_text(encoding="utf-8")
            assert "import pickle" not in source, module.name


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


class TestHashRing:
    def test_routing_is_stable_and_total(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"doc{i}" for i in range(200)]
        first = ring.assignment(keys)
        assert set(first.values()) <= {"w0", "w1", "w2"}
        # Same inputs, fresh ring: SHA-1 placement never depends on
        # process state (unlike hash()).
        assert HashRing(["w0", "w1", "w2"]).assignment(keys) == first

    def test_every_worker_owns_something(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        owners = set(ring.assignment(f"doc{i}" for i in range(400)).values())
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_adding_a_node_moves_few_keys(self):
        keys = [f"doc{i}" for i in range(1000)]
        ring = HashRing(["w0", "w1", "w2"])
        before = ring.assignment(keys)
        ring.add("w3")
        after = ring.assignment(keys)
        moved = sum(1 for k in keys if before[k] != after[k])
        # Ideal is K/N = 250; allow generous slack but far below a full
        # reshuffle (a mod-N scheme moves ~750).
        assert 0 < moved < 500
        # Every moved key moved TO the new node, never between old ones.
        assert all(after[k] == "w3" for k in keys if before[k] != after[k])

    def test_remove_restores_prior_routing(self):
        keys = [f"doc{i}" for i in range(300)]
        ring = HashRing(["w0", "w1"])
        before = ring.assignment(keys)
        ring.add("w2")
        ring.remove("w2")
        assert ring.assignment(keys) == before

    def test_errors(self):
        ring = HashRing(["w0"])
        with pytest.raises(WarehouseError):
            ring.add("w0")
        with pytest.raises(WarehouseError):
            ring.remove("w9")
        with pytest.raises(WarehouseError):
            HashRing().route("doc")


# ----------------------------------------------------------------------
# Mode selection
# ----------------------------------------------------------------------


class TestModeSelection:
    def test_single_core_degrades_to_threads(self, tmp_path, monkeypatch):
        _seed_collection(tmp_path / "coll")
        import repro.serve.collection as collection_module

        monkeypatch.setattr(collection_module.os, "cpu_count", lambda: 1)
        with connect_collection(tmp_path / "coll", mode="process") as col:
            assert isinstance(col, Collection)
        with connect_collection(tmp_path / "coll", mode="auto") as col:
            assert isinstance(col, Collection)

    @pytest.mark.timeout(180)
    def test_force_processes_overrides_single_core(self, tmp_path, monkeypatch):
        _seed_collection(tmp_path / "coll")
        import repro.serve.collection as collection_module

        monkeypatch.setattr(collection_module.os, "cpu_count", lambda: 1)
        with connect_collection(
            tmp_path / "coll",
            mode="process",
            shard_processes=2,
            force_processes=True,
            observability=None,
        ) as col:
            assert isinstance(col, ProcessCollection)
            assert col.query(_PATTERN).count() == len(KEYS) * 3

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(WarehouseError, match="mode"):
            connect_collection(tmp_path / "c", create=True, mode="fibers")


# ----------------------------------------------------------------------
# Process collection end to end
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "coll"
    _seed_collection(path)
    return path


class TestProcessCollection:
    @pytest.mark.timeout(180)
    def test_parity_with_thread_engine(self, seeded):
        with connect_collection(seeded) as threads:
            expected = [
                (row.document, row.probability, row.bindings())
                for row in threads.query(_PATTERN)
            ]
        with ProcessCollection(
            seeded, shard_processes=2, observability=None
        ) as cluster:
            got = [
                (row.document, row.probability, row.bindings())
                for row in cluster.query(_PATTERN)
            ]
        assert got == expected

    @pytest.mark.timeout(180)
    def test_topk_and_threshold_parity_with_thread_engine(self, seeded):
        """Probability-ordered and thresholded fan-out matches the
        thread engine row for row (same merge discipline, same ties)."""
        with connect_collection(seeded) as threads:
            expected_topk = [
                (row.document, row.probability, row.bindings())
                for row in threads.query(_PATTERN).order_by_probability().limit(4)
            ]
            expected_floor = [
                (row.document, row.probability, row.bindings())
                for row in threads.query(_PATTERN).min_probability(0.6)
            ]
        with ProcessCollection(
            seeded, shard_processes=2, observability=None
        ) as cluster:
            got_topk = [
                (row.document, row.probability, row.bindings())
                for row in cluster.query(_PATTERN).order_by_probability().limit(4)
            ]
            got_floor = [
                (row.document, row.probability, row.bindings())
                for row in cluster.query(_PATTERN).min_probability(0.6)
            ]
            assert cluster.query(_PATTERN).order_by_probability().limit(0).all() == []
        assert got_topk == expected_topk
        assert got_floor == expected_floor

    @pytest.mark.timeout(180)
    def test_estimate_parity_with_thread_engine(self, seeded):
        """Fixed-seed Monte-Carlo estimates are identical across the
        thread and process engines: same samples, same merge order."""
        with connect_collection(seeded) as threads:
            expected = [
                (key, e.probability, e.stderr, e.samples, e.tree.canonical())
                for key, e in threads.query(_PATTERN).estimate(epsilon=0.05)
            ]
        with ProcessCollection(
            seeded, shard_processes=2, observability=None
        ) as cluster:
            got = [
                (key, e.probability, e.stderr, e.samples, e.tree.canonical())
                for key, e in cluster.query(_PATTERN).estimate(epsilon=0.05)
            ]
        assert got == expected

    @pytest.mark.timeout(180)
    def test_limit_first_count_and_key_scoping(self, seeded):
        with ProcessCollection(
            seeded, shard_processes=2, observability=None
        ) as cluster:
            assert cluster.query(_PATTERN).count() == len(KEYS) * 3
            assert len(cluster.query(_PATTERN).limit(4).all()) == 4
            first = cluster.query(_PATTERN).first()
            assert first.document == sorted(KEYS)[0]
            assert first.tree.label == "person"
            scoped = cluster.query(_PATTERN, keys=["bob"]).all()
            assert {row.document for row in scoped} == {"bob"}
            with pytest.raises(WarehouseError, match="mallory"):
                cluster.query(_PATTERN, keys=["mallory"])
            assert cluster.query(_PATTERN).limit(0).all() == []

    @pytest.mark.timeout(180)
    def test_update_durable_across_engines(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None
        ) as cluster:
            report = cluster.update("carol", _insert_email("durable@x", 0.8))
            assert report.applied
            reports = cluster.update_many(
                "carol", [_insert_email("batch1@x"), _insert_email("batch2@x")]
            )
            assert len(reports) == 2
        # Reopen with the thread engine: commits crossed the process
        # boundary into that shard's WAL/snapshot, not a cache.
        with connect_collection(path) as threads:
            values = {
                row.bindings()["e"]
                for row in threads.query(_PATTERN, keys=["carol"])
            }
        assert {"durable@x", "batch1@x", "batch2@x"} <= values

    @pytest.mark.timeout(180)
    def test_create_document_routes_to_a_worker(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None
        ) as cluster:
            cluster.create_document("frank", root="person")
            assert "frank" in cluster
            cluster.update("frank", _insert_email("frank@x"))
            rows = cluster.query(_PATTERN, keys=["frank"]).all()
            assert [row.bindings()["e"] for row in rows] == ["frank@x"]
            with pytest.raises(WarehouseError, match="already exists"):
                cluster.create_document("frank", root="person")

    @pytest.mark.timeout(180)
    def test_stats_and_health_shapes(self, seeded):
        with ProcessCollection(
            seeded, shard_processes=2, observability=None
        ) as cluster:
            stats = cluster.stats()
            assert stats["document_count"] == len(KEYS)
            assert stats["cluster"]["mode"] == "process"
            assert stats["cluster"]["processes"] == 2
            assert stats["totals"]["nodes"] > 0
            health = cluster.health()
            assert set(health["shards"]) == set(KEYS)
            for shard in health["shards"].values():
                assert shard["alive"] is True
                assert shard["respawns"] == 0
                assert isinstance(shard["wal_depth"], int)


class TestCrashRecovery:
    @pytest.mark.timeout(300)
    def test_kill9_after_commit_loses_nothing(self, tmp_path):
        """The acceptance scenario: a worker SIGKILLed *after* the WAL
        fsync but *before* the acknowledgement.  The caller sees a
        retryable ShardUnavailableError, the supervisor respawns the
        worker, WAL replay restores the commit."""
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None, fault_injection=True
        ) as cluster:
            with pytest.raises(ShardUnavailableError) as err:
                cluster.update(
                    "alice", _insert_email("committed@x"), fault="after_commit"
                )
            assert err.value.retryable is True
            _wait_shard_alive(cluster, "alice")
            values = {
                row.bindings()["e"]
                for row in cluster.query(_PATTERN, keys=["alice"])
            }
            assert "committed@x" in values
            workers = cluster.workers()
            assert sum(info["respawns"] for info in workers.values()) == 1

    @pytest.mark.timeout(300)
    def test_kill9_before_commit_applies_nothing(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None, fault_injection=True
        ) as cluster:
            with pytest.raises(ShardUnavailableError):
                cluster.update(
                    "alice", _insert_email("phantom@x"), fault="before_commit"
                )
            _wait_shard_alive(cluster, "alice")
            values = {
                row.bindings()["e"]
                for row in cluster.query(_PATTERN, keys=["alice"])
            }
            assert "phantom@x" not in values
            # The retry contract: the same update re-submitted lands.
            report = cluster.update("alice", _insert_email("retried@x"))
            assert report.applied

    @pytest.mark.timeout(300)
    def test_faults_ignored_without_opt_in(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None
        ) as cluster:
            report = cluster.update(
                "bob", _insert_email("safe@x"), fault="after_commit"
            )
            assert report.applied  # no kill: faults need fault_injection=True


class TestRingChanges:
    @pytest.mark.timeout(300)
    def test_add_and_remove_worker_migrates_without_loss(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=2, observability=None
        ) as cluster:
            before = {
                (row.document, row.bindings()["e"])
                for row in cluster.query(_PATTERN)
            }
            name = cluster.add_worker()
            assert len(cluster.workers()) == 3
            after_add = {
                (row.document, row.bindings()["e"])
                for row in cluster.query(_PATTERN)
            }
            assert after_add == before
            # Writes against migrated shards land on their new owners.
            cluster.update("dave", _insert_email("moved@x"))
            cluster.remove_worker(name)
            assert len(cluster.workers()) == 2
            final = {
                (row.document, row.bindings()["e"])
                for row in cluster.query(_PATTERN)
            }
            assert before | {("dave", "moved@x")} == final

    @pytest.mark.timeout(180)
    def test_cannot_remove_last_worker(self, tmp_path):
        path = tmp_path / "coll"
        _seed_collection(path)
        with ProcessCollection(
            path, shard_processes=1, observability=None
        ) as cluster:
            with pytest.raises(WarehouseError, match="last worker"):
                cluster.remove_worker("w0")