"""Unit tests for query evaluation on fuzzy trees (repro.core.query) —
the slide-13 definition and commutation theorem."""

import pytest

from repro import (
    Condition,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    query_possible_worlds,
    to_possible_worlds,
)
from repro.tpwj.parser import parse_pattern
from repro.core.query import query_fuzzy_tree
from repro.tpwj import find_matches
from repro.core import match_condition
from repro.trees import tree


class TestMatchCondition:
    def test_includes_ancestors(self, slide12_doc):
        pattern = parse_pattern("D")
        match = find_matches(pattern, slide12_doc.root)[0]
        # D's own condition is w2; C and A add nothing.
        assert match_condition(match) == Condition.of("w2")

    def test_conjunction_over_all_mapped_nodes(self, slide12_doc):
        pattern = parse_pattern("/A { B, C }")
        match = find_matches(pattern, slide12_doc.root)[0]
        # B contributes w1 ∧ ¬w2; C and A are unconditioned.
        assert match_condition(match) == Condition.of("w1", "!w2")

    def test_inconsistent_match_returns_none(self, slide12_doc):
        pattern = parse_pattern("/A { B, //D }")
        match = find_matches(pattern, slide12_doc.root)[0]
        assert match_condition(match) is None


class TestQueryEvaluation:
    def test_simple_answer_probability(self, slide12_doc):
        answers = query_fuzzy_tree(slide12_doc, parse_pattern("//D"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(0.7)
        assert answers[0].tree.canonical() == "A(C(D))"

    def test_impossible_query_gives_no_answers(self, slide12_doc):
        # B requires ¬w2, D requires w2: never both.
        answers = query_fuzzy_tree(slide12_doc, parse_pattern("/A { B, //D }"))
        assert answers == []

    def test_unconditioned_answer_has_probability_one(self, slide12_doc):
        answers = query_fuzzy_tree(slide12_doc, parse_pattern("/A { C }"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(1.0)

    def test_answers_sorted_by_probability(self, slide12_doc):
        answers = query_fuzzy_tree(slide12_doc, parse_pattern("*"))
        probabilities = [a.probability for a in answers]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_multiple_matches_same_answer_combine_via_dnf(self):
        # Two B copies under different events both yield answer A(B):
        # P = P(w1 ∨ w2) = 1 - 0.5*0.5 = 0.75, not 0.5 + 0.5.
        events = EventTable({"w1": 0.5, "w2": 0.5})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("w1")),
                FuzzyNode("B", condition=Condition.of("w2")),
            ],
        )
        doc = FuzzyTree(root, events)
        answers = query_fuzzy_tree(doc, parse_pattern("B"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(0.75)
        assert len(answers[0].dnf.terms) == 2

    def test_join_probability(self):
        events = EventTable({"w1": 0.6})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", value="v", condition=Condition.of("w1")),
                FuzzyNode("C", value="v"),
            ],
        )
        doc = FuzzyTree(root, events)
        answers = query_fuzzy_tree(doc, parse_pattern("A { B[$x], C[$x] }"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(0.6)


class TestCommutation:
    """The slide-13 commuting diagram on the worked examples."""

    def commutes(self, doc, pattern_text):
        pattern = parse_pattern(pattern_text)
        via_fuzzy = query_fuzzy_tree(doc, pattern)
        via_worlds = query_possible_worlds(to_possible_worlds(doc), pattern)
        got = {a.tree.canonical(): a.probability for a in via_fuzzy}
        want = {w.tree.canonical(): w.probability for w in via_worlds}
        assert set(got) == set(want)
        for key in want:
            assert got[key] == pytest.approx(want[key], abs=1e-12)

    @pytest.mark.parametrize(
        "pattern",
        ["//D", "B", "/A { C }", "/A { B, C }", "*", "/A { //D }", "C { D }"],
    )
    def test_slide12_patterns(self, slide12_doc, pattern):
        self.commutes(slide12_doc, pattern)

    @pytest.mark.parametrize("pattern", ["B", "C", "/A { B, C }"])
    def test_slide15_patterns(self, slide15_doc, pattern):
        self.commutes(slide15_doc, pattern)
