"""Tests for empirical complexity fitting (repro.analysis.complexity)."""

import pytest

from repro.analysis import classify_growth, fit_exponential, fit_power_law, measure


class TestPowerLaw:
    def test_recovers_quadratic(self):
        sizes = [10, 20, 40, 80, 160]
        times = [3e-6 * n**2 for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(2.0, abs=0.01)
        assert fit.r_squared > 0.999

    def test_recovers_linear(self):
        sizes = [10, 100, 1000]
        times = [5e-7 * n for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_constant_factor(self):
        sizes = [1, 2, 4, 8]
        times = [7.0 for _ in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)
        assert fit.constant == pytest.approx(7.0)

    def test_str_mentions_model(self):
        fit = fit_power_law([1, 2, 4], [1.0, 2.0, 4.0])
        assert "n^" in str(fit)


class TestExponential:
    def test_recovers_doubling(self):
        sizes = [2, 4, 6, 8, 10]
        times = [1e-6 * 2**n for n in sizes]
        fit = fit_exponential(sizes, times)
        assert fit.exponent == pytest.approx(1.0, abs=0.01)
        assert fit.r_squared > 0.999

    def test_str_mentions_model(self):
        fit = fit_exponential([1, 2, 3], [2.0, 4.0, 8.0])
        assert "2^(" in str(fit)


class TestClassify:
    def test_prefers_power_for_polynomial_data(self):
        sizes = [10, 20, 40, 80]
        times = [1e-6 * n**1.5 for n in sizes]
        assert classify_growth(sizes, times).model == "power"

    def test_prefers_exponential_for_exponential_data(self):
        sizes = [2, 4, 6, 8, 10, 12]
        times = [1e-7 * 2**n for n in sizes]
        assert classify_growth(sizes, times).model == "exponential"


class TestGuards:
    def test_need_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([5], [1.0])

    def test_degenerate_sweep_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([3, 3, 3], [1.0, 2.0, 3.0])

    def test_zero_times_clamped(self):
        fit = fit_power_law([1, 2, 4], [0.0, 0.0, 0.0])
        assert fit.exponent == pytest.approx(0.0, abs=1e-6)


class TestMeasure:
    def test_returns_one_time_per_size(self):
        times = measure(lambda n: sum(range(n)), [10, 100], repeats=3)
        assert len(times) == 2
        assert all(t >= 0.0 for t in times)

    def test_work_actually_scales(self):
        times = measure(lambda n: sum(range(n)), [1000, 1_000_000], repeats=3)
        assert times[1] > times[0]
