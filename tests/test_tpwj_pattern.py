"""Unit tests for the TPWJ pattern AST (repro.tpwj.pattern)."""

import pytest

from repro.errors import QueryError
from repro.tpwj import Pattern, PatternNode


class TestPatternNode:
    def test_basic(self):
        node = PatternNode("A")
        assert node.label == "A" and node.value is None and node.variable is None
        assert not node.descendant

    def test_wildcard(self):
        assert PatternNode(None).label is None

    def test_empty_label_rejected(self):
        with pytest.raises(QueryError):
            PatternNode("")

    def test_value_test(self):
        node = PatternNode("A", value="foo")
        assert node.value == "foo"

    def test_valued_node_cannot_have_children(self):
        with pytest.raises(QueryError):
            PatternNode("A", value="foo", children=[PatternNode("B")])
        node = PatternNode("A", value="foo")
        with pytest.raises(QueryError):
            node.add_child(PatternNode("B"))

    def test_add_child_sets_parent(self):
        parent = PatternNode("A")
        child = parent.add_child(PatternNode("B"))
        assert child.parent is parent and parent.children == (child,)

    def test_reattach_rejected(self):
        parent = PatternNode("A")
        child = parent.add_child(PatternNode("B"))
        with pytest.raises(QueryError):
            PatternNode("C").add_child(child)

    def test_iter_preorder(self):
        root = PatternNode("A", children=[PatternNode("B"), PatternNode("C")])
        assert [n.label for n in root.iter()] == ["A", "B", "C"]

    def test_invalid_variable_rejected(self):
        with pytest.raises(QueryError):
            PatternNode("A", variable="")


class TestPattern:
    def test_root_must_be_detached(self):
        parent = PatternNode("A")
        child = parent.add_child(PatternNode("B"))
        with pytest.raises(QueryError):
            Pattern(child)

    def test_size_and_nodes(self):
        root = PatternNode("A", children=[PatternNode("B")])
        pattern = Pattern(root)
        assert pattern.size() == 2 and len(pattern.nodes()) == 2

    def test_variables(self):
        root = PatternNode(
            "A",
            children=[PatternNode("B", variable="x"), PatternNode("C", variable="y")],
        )
        pattern = Pattern(root)
        assert set(pattern.variables()) == {"x", "y"}
        assert pattern.join_variables() == {}

    def test_join_variables(self):
        root = PatternNode(
            "A",
            children=[PatternNode("B", variable="x"), PatternNode("C", variable="x")],
        )
        pattern = Pattern(root)
        assert set(pattern.join_variables()) == {"x"}

    def test_join_on_internal_node_rejected(self):
        inner = PatternNode("B", variable="x", children=[PatternNode("D")])
        root = PatternNode("A", children=[inner, PatternNode("C", variable="x")])
        with pytest.raises(QueryError, match="non-leaf"):
            Pattern(root)

    def test_node_for_variable(self):
        child = PatternNode("B", variable="x")
        pattern = Pattern(PatternNode("A", children=[child]))
        assert pattern.node_for_variable("x") is child

    def test_node_for_unknown_variable_rejected(self):
        pattern = Pattern(PatternNode("A"))
        with pytest.raises(QueryError, match="no pattern node"):
            pattern.node_for_variable("zz")

    def test_node_for_join_variable_rejected(self):
        root = PatternNode(
            "A",
            children=[PatternNode("B", variable="x"), PatternNode("C", variable="x")],
        )
        pattern = Pattern(root)
        with pytest.raises(QueryError, match="join variable"):
            pattern.node_for_variable("x")

    def test_anchored_flag(self):
        assert Pattern(PatternNode("A"), anchored=True).anchored
        assert not Pattern(PatternNode("A")).anchored

    def test_repr_and_str_round(self):
        pattern = Pattern(PatternNode("A", children=[PatternNode("B", value="x")]))
        assert "A" in str(pattern) and "B" in str(pattern)
