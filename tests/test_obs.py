"""Tests for the observability layer (repro.obs) and its wiring.

Covers the pieces in isolation — histogram bucket math, span
nesting/merging and ring eviction, the slow-log threshold boundary,
the Prometheus/JSON renderers — and the integration surface: a session
with a private panel populates the query metrics and traces, a
``observability=None`` session runs with nothing attached, and a
disabled panel records nothing (the noise guard behind benchmark E14's
disabled-overhead contract).
"""

import json
import threading

import pytest

import repro
from repro.analysis.instrumentation import Counters
from repro.cli import main
from repro.obs import (
    METRIC_CATALOG,
    Histogram,
    MetricsRegistry,
    Observability,
    SlowQueryLog,
    Tracer,
    prometheus_name,
    render_json,
    render_prometheus,
    render_trace,
)
from repro.obs.trace import MAX_CHILDREN


# ----------------------------------------------------------------------
# Histogram bucket math
# ----------------------------------------------------------------------


class TestHistogram:
    def test_observation_lands_in_inclusive_upper_bound_bucket(self):
        h = Histogram("t", boundaries=(0.001, 0.01, 0.1))
        h.observe(0.0005)  # below the first bound
        h.observe(0.001)  # exactly on a bound: inclusive
        h.observe(0.05)
        assert h._counts == [2, 0, 1, 0]

    def test_overflow_bucket_catches_beyond_last_bound(self):
        h = Histogram("t", boundaries=(0.001, 0.01))
        h.observe(5.0)
        assert h._counts == [0, 0, 1]
        assert h.count == 1
        assert h.sum == 5.0

    def test_quantile_empty_histogram_is_zero(self):
        h = Histogram("t", boundaries=(0.001, 0.01))
        assert h.quantile(0.5) == 0.0
        assert h.snapshot()["p99"] == 0.0

    def test_quantile_interpolates_inside_bucket(self):
        h = Histogram("t", boundaries=(0.0, 1.0))
        for _ in range(4):
            h.observe(0.5)  # all four in the (0, 1] bucket
        # target rank falls mid-bucket; linear interpolation from 0 to 1
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_overflow_reports_last_finite_bound(self):
        h = Histogram("t", boundaries=(0.001, 0.01))
        for _ in range(10):
            h.observe(99.0)
        assert h.quantile(0.5) == 0.01
        assert h.quantile(0.99) == 0.01

    def test_quantile_validates_range(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_needs_at_least_one_boundary(self):
        with pytest.raises(ValueError):
            Histogram("t", boundaries=())

    def test_snapshot_buckets_are_cumulative(self):
        h = Histogram("t", boundaries=(0.001, 0.01, 0.1))
        h.observe(0.0005)
        h.observe(0.005)
        h.observe(0.005)
        h.observe(50.0)  # overflow
        snap = h.snapshot()
        assert snap["buckets"] == [(0.001, 1), (0.01, 3), (0.1, 3)]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(50.0105)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        r = MetricsRegistry(preregister=False)
        r.incr("a", 2)
        r.incr("a")
        r.set_gauge("g", 7.5)
        r.observe("h", 0.002)
        assert r.counter("a") == 3
        assert r.gauge("g") == 7.5
        assert r.histogram("h").count == 1

    def test_preregistered_catalog_is_visible_at_zero(self):
        r = MetricsRegistry()
        snap = r.snapshot()
        for name, kind, _help in METRIC_CATALOG:
            if kind == "counter":
                assert snap["counters"][name] == 0.0
            elif kind == "gauge":
                assert snap["gauges"][name] == 0.0
            else:
                assert snap["histograms"][name]["count"] == 0
            assert r.help_text(name)

    def test_describe_rejects_unknown_kind(self):
        r = MetricsRegistry(preregister=False)
        with pytest.raises(ValueError):
            r.describe("x", "summary", "nope")

    def test_disabled_registry_records_nothing(self):
        # The noise guard behind E14's disabled contract: every
        # recording entry point returns before touching any state.
        r = MetricsRegistry(preregister=False)
        r.disable()
        r.incr("a")
        r.set_gauge("g", 1.0)
        r.observe("h", 0.5)
        snap = r.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        r.enable()
        r.incr("a")
        assert r.counter("a") == 1

    def test_bridge_counters_fold_into_reads(self):
        bridge = Counters()
        bridge.incr("engine.plan_cache_hits", 5)
        r = MetricsRegistry(bridge=bridge, preregister=False)
        r.incr("engine.plan_cache_hits", 2)
        assert r.counter("engine.plan_cache_hits") == 7
        assert r.snapshot()["counters"]["engine.plan_cache_hits"] == 7

    def test_reset_zeroes_but_leaves_bridge_alone(self):
        bridge = Counters()
        bridge.incr("b", 3)
        r = MetricsRegistry(bridge=bridge, preregister=False)
        r.incr("a", 9)
        r.observe("h", 0.1)
        r.reset()
        assert r.counter("a") == 0
        assert r.histogram("h").count == 0
        assert r.counter("b") == 3  # bridge untouched


# ----------------------------------------------------------------------
# Tracer: nesting, merge, ring eviction
# ----------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_under_the_open_parent(self):
        tracer = Tracer()
        root = tracer.start("query")
        child = tracer.start("view_build")
        tracer.emit("index_patch", 0.001)
        tracer.finish(child)
        tracer.finish(root)
        assert [c.name for c in root.children] == ["view_build"]
        assert [c.name for c in child.children] == ["index_patch"]
        # Only the root carries a timestamp and enters the ring.
        assert root.timestamp is not None
        assert child.timestamp is None
        assert tracer.recent() == [root]

    def test_emit_without_open_span_is_a_noop(self):
        tracer = Tracer()
        tracer.emit("orphan", 0.5)
        assert tracer.recent() == []

    def test_consecutive_attributeless_emits_merge(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            for _ in range(5):
                tracer.emit("probability_evaluation", 0.01)
        assert len(root.children) == 1
        merged = root.children[0]
        assert merged.count == 5
        assert merged.duration == pytest.approx(0.05)

    def test_attributes_and_interleaving_prevent_merging(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            tracer.emit("shard", 0.01, document="a")
            tracer.emit("shard", 0.01, document="b")
            tracer.emit("pull", 0.01)
            tracer.emit("shard", 0.01, document="c")
        assert len(root.children) == 4

    def test_child_bound_drops_and_counts(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            for index in range(MAX_CHILDREN + 10):
                # Distinct attributes defeat merging, forcing appends.
                tracer.emit("phase", 0.001, index=index)
        assert len(root.children) == MAX_CHILDREN
        assert root.dropped == 10
        assert root.as_dict()["dropped_children"] == 10

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span("query", index=index):
                pass
        recent = tracer.recent()
        assert len(recent) == 3
        assert [span.attributes["index"] for span in recent] == [2, 3, 4]
        assert [span.attributes["index"] for span in tracer.recent(2)] == [3, 4]

    def test_out_of_order_finish_does_not_orphan_the_stack(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(outer)  # closed before its child
        assert tracer.current() is inner
        tracer.finish(inner)
        assert tracer.current() is None
        assert [span.name for span in tracer.recent()] == ["outer"]

    def test_phase_seconds_folds_by_name(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            tracer.emit("a", 0.1)
            tracer.emit("b", 0.2, tag=1)
            tracer.emit("b", 0.3, tag=2)
        phases = root.phase_seconds()
        assert phases["a"] == pytest.approx(0.1)
        assert phases["b"] == pytest.approx(0.5)

    def test_as_dict_stringifies_non_scalar_attributes(self):
        # Hot paths attach live objects (e.g. the Pattern); rendering
        # stringifies them only when a human reads the trace.
        tracer = Tracer()
        with tracer.span("query", pattern=object(), rows=3) as root:
            pass
        rendered = root.as_dict()["attributes"]
        assert isinstance(rendered["pattern"], str)
        assert rendered["rows"] == 3
        assert "query" in render_trace(root)

    def test_clear_empties_the_ring(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        tracer.clear()
        assert tracer.recent() == []


# ----------------------------------------------------------------------
# Slow-query log threshold boundary
# ----------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_is_inclusive(self):
        log = SlowQueryLog(threshold=0.25)
        assert log.should_record(0.25) is True
        assert not log.should_record(0.2499999)
        assert log.record("//a", 0.25, rows=1) is not None
        assert log.record("//b", 0.24, rows=1) is None
        assert [entry.pattern for entry in log.entries()] == ["//a"]

    def test_zero_threshold_logs_everything(self):
        log = SlowQueryLog(threshold=0.0)
        log.record("//a", 0.0, rows=0)
        assert len(log) == 1

    def test_capacity_bounds_the_log(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for index in range(4):
            log.record(f"//p{index}", 1.0, rows=0)
        assert [entry.pattern for entry in log.entries()] == ["//p2", "//p3"]

    def test_entry_as_dict_units(self):
        log = SlowQueryLog(threshold=0.0)
        entry = log.record(
            "//a", 0.5, rows=3,
            phases={"match_enumeration": 0.2}, plan="scan",
        )
        payload = entry.as_dict()
        assert payload["duration_ms"] == 500.0
        assert payload["phases_ms"]["match_enumeration"] == 200.0
        assert payload["plan"] == "scan"
        assert payload["rows"] == 3

    def test_clear(self):
        log = SlowQueryLog(threshold=0.0)
        log.record("//a", 1.0, rows=0)
        log.clear()
        assert log.entries() == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExport:
    def test_prometheus_name_mangling(self):
        assert prometheus_name("engine.plan-cache.hits") == (
            "repro_engine_plan_cache_hits"
        )
        assert prometheus_name("api.queries", counter=True) == (
            "repro_api_queries_total"
        )

    def test_prometheus_exposition_is_well_formed(self):
        r = MetricsRegistry()
        r.incr("api.queries", 3)
        r.set_gauge("warehouse.nodes", 42)
        r.observe("api.query_seconds", 0.004)
        text = render_prometheus(r)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                series, value = line.rsplit(" ", 1)
                float(value)  # every sample value parses
                assert series.startswith("repro_")
        assert "repro_api_queries_total 3" in text
        assert "repro_warehouse_nodes 42" in text

    def test_prometheus_histogram_series_are_consistent(self):
        r = MetricsRegistry(preregister=False)
        r.describe("api.query_seconds", "histogram", "Query latency")
        r.observe("api.query_seconds", 0.004)
        r.observe("api.query_seconds", 99.0)  # overflow
        text = render_prometheus(r)
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_api_query_seconds_bucket{le="')
            and '+Inf' not in line
        ]
        assert cumulative == sorted(cumulative)  # monotone buckets
        assert 'repro_api_query_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_api_query_seconds_count 2" in text

    def test_render_json_includes_slowlog_and_traces(self):
        panel = Observability()
        panel.metrics.incr("api.queries")
        panel.slowlog.threshold = 0.0
        panel.slowlog.record("//a", 0.2, rows=1)
        with panel.tracer.span("query"):
            pass
        payload = json.loads(render_json(panel.metrics, panel))
        assert payload["counters"]["api.queries"] == 1
        assert payload["slow_queries"][0]["pattern"] == "//a"
        assert payload["traces"][0]["name"] == "query"
        # Without the panel the snapshot stands alone.
        bare = json.loads(render_json(panel.metrics))
        assert "slow_queries" not in bare


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------


def _populated_session(path, panel):
    session = repro.connect(
        path, create=True, root="directory", observability=panel
    )
    session.update(
        repro.update(repro.pattern("directory", variable="d", anchored=True))
        .insert("d", repro.tree("person", repro.tree("name", "Alice")))
        .confidence(0.9)
    )
    return session


class TestSessionWiring:
    def test_private_panel_collects_query_metrics_and_traces(self, tmp_path):
        panel = Observability()
        with _populated_session(tmp_path / "wh", panel) as session:
            assert session.metrics() is panel.metrics
            assert session.observability is panel
            rows = list(session.query("//person"))
            assert rows and rows[0].probability > 0
        registry = panel.metrics
        assert registry.counter("api.queries") == 1
        assert registry.counter("api.rows_streamed") == len(rows)
        assert registry.histogram("api.query_seconds").count == 1
        assert registry.histogram("api.first_row_seconds").count == 1
        assert registry.histogram("query.probability_seconds").count >= 1
        assert registry.counter("warehouse.commits") >= 1
        assert registry.histogram("warehouse.commit_seconds").count >= 1
        trace = panel.tracer.recent()[-1]
        assert trace.name == "query"
        assert trace.attributes["rows"] == len(rows)
        assert "match_enumeration" in trace.phase_seconds()

    def test_slowlog_captures_query_with_phases(self, tmp_path):
        panel = Observability()
        panel.slowlog.threshold = 0.0  # log every query
        with _populated_session(tmp_path / "wh", panel) as session:
            list(session.query("//person"))
        assert panel.metrics.counter("api.slow_queries") == 1
        entry = panel.slowlog.entries()[0]
        assert "person" in entry.pattern
        assert entry.rows == 1
        assert entry.phases  # per-phase seconds from the trace layer

    def test_observability_none_attaches_nothing(self, tmp_path):
        with _populated_session(tmp_path / "wh", None) as session:
            assert session.observability is None
            assert session.metrics() is None
            assert len(list(session.query("//person"))) == 1

    def test_disabled_panel_records_nothing(self, tmp_path):
        panel = Observability()
        panel.disable()
        with _populated_session(tmp_path / "wh", panel) as session:
            rows = list(session.query("//person"))
            assert len(rows) == 1 and rows[0].probability > 0
        snap = panel.metrics.snapshot()
        assert all(value == 0 for value in snap["counters"].values())
        assert all(
            summary["count"] == 0 for summary in snap["histograms"].values()
        )
        assert panel.tracer.recent() == []
        assert len(panel.slowlog) == 0

    def test_stats_refreshes_document_gauges(self, tmp_path):
        panel = Observability()
        with _populated_session(tmp_path / "wh", panel) as session:
            info = session.stats()
        assert panel.metrics.gauge("warehouse.nodes") == info["nodes"]
        assert panel.metrics.gauge("warehouse.sequence") == info["sequence"]


# ----------------------------------------------------------------------
# Counters.prefixed under concurrent writers (regression)
# ----------------------------------------------------------------------


class TestCountersThreaded:
    def test_prefixed_while_writers_insert_new_keys(self):
        # prefixed() used to iterate the live dict; a writer inserting a
        # new key mid-iteration raised "dictionary changed size during
        # iteration".  It must snapshot under the lock instead.
        counters = Counters()
        stop = threading.Event()
        errors = []

        def writer(worker):
            index = 0
            while not stop.is_set():
                counters.incr(f"engine.w{worker}.k{index}")
                index += 1

        def reader():
            try:
                while not stop.is_set():
                    counters.prefixed("engine.")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(4)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join()
        stop_timer.cancel()
        assert errors == []
        view = counters.prefixed("engine.w0")
        assert view and all(name.startswith("engine.w0") for name in view)
        assert list(view) == sorted(view)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


@pytest.fixture
def obs_store(tmp_path):
    path = tmp_path / "wh"
    with _populated_session(path, repro.obs.default_observability()):
        pass
    return path


class TestCli:
    def test_metrics_prometheus(self, obs_store, capsys):
        assert main(["metrics", str(obs_store)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_api_queries_total counter" in out
        assert "# TYPE repro_warehouse_commit_seconds histogram" in out
        # Opening the store refreshed the document gauges.
        assert "repro_warehouse_nodes 3" in out

    def test_metrics_json(self, obs_store, capsys):
        assert main(["metrics", str(obs_store), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "api.query_seconds" in payload["histograms"]
        assert payload["gauges"]["warehouse.nodes"] == 3
        assert "traces" in payload and "slow_queries" in payload

    def test_trace_runs_a_query_and_prints_spans(self, obs_store, capsys):
        assert main(["trace", str(obs_store), "//person"]) == 0
        out = capsys.readouterr().out
        assert "query" in out and "us" in out

    def test_trace_without_traces(self, obs_store, capsys):
        repro.obs.default_observability().tracer.clear()
        assert main(["trace", str(obs_store)]) == 0
        assert "(no traces)" in capsys.readouterr().out

    def test_stats_json(self, obs_store, capsys):
        assert main(["stats", str(obs_store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 3

    def test_serve_stats_json_single_warehouse(self, obs_store, capsys):
        assert main(["serve-stats", str(obs_store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 3
        assert "wal_depth" in payload
