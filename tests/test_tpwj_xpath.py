"""Tests for TPWJ -> XPath compilation (repro.tpwj.xpath), including the
cross-validation of the native matcher against ElementTree."""

import random

import pytest

from repro.errors import QueryError
from repro.tpwj import find_matches, parse_pattern
from repro.tpwj.xpath import (
    root_images_via_elementtree,
    to_elementtree_xpath,
    to_xpath,
)
from repro.trees import tree


class TestFullXPath:
    @pytest.mark.parametrize(
        "pattern_text,expected",
        [
            ("A", "//A"),
            ("/A", "/A"),
            ("A { B }", "//A[B]"),
            ("A { //B }", "//A[.//B]"),
            ('A[="v"]', "//A[. = 'v']"),
            ('A { B[="x"], C }', "//A[B[. = 'x']][C]"),
            ("A { B { C } }", "//A[B[C]]"),
            ("* { B }", "//*[B]"),
            ("A { !C }", "//A[not(C)]"),
            ("A { !//C { D } }", "//A[not(.//C[D])]"),
        ],
    )
    def test_compilation(self, pattern_text, expected):
        assert to_xpath(parse_pattern(pattern_text)) == expected

    def test_join_rejected(self):
        with pytest.raises(QueryError, match="join"):
            to_xpath(parse_pattern("A { B[$x], C[$x] }"))

    def test_single_quote_literal(self):
        pattern = parse_pattern('A[="it\'s"]')
        assert '"' in to_xpath(pattern)

    def test_both_quotes_literal_uses_concat(self):
        pattern = parse_pattern('A[="mix \'x\' \\"y\\""]')
        assert to_xpath(pattern).count("concat(") == 1


class TestElementTreeSubset:
    @pytest.mark.parametrize(
        "pattern_text,expected",
        [
            ("A", ".//A"),
            ("/A", "./A"),
            ("A { B, C }", ".//A[B][C]"),
            ('A { B[="x"] }', ".//A[B='x']"),
            ('A[="v"]', ".//A[.='v']"),
        ],
    )
    def test_compilation(self, pattern_text, expected):
        assert to_elementtree_xpath(parse_pattern(pattern_text)) == expected

    @pytest.mark.parametrize(
        "pattern_text,reason",
        [
            ("A { B { C } }", "nest"),
            ("A { //B }", "descendant"),
            ("A { !B }", "negation"),
            ("A { * }", "wildcard"),
            ("A { B[$x], C[$x] }", "join"),
        ],
    )
    def test_out_of_subset_rejected(self, pattern_text, reason):
        with pytest.raises(QueryError, match=reason):
            to_elementtree_xpath(parse_pattern(pattern_text))


class TestCrossValidation:
    """The native matcher against ElementTree — two independent engines."""

    def root_image_count(self, pattern, doc):
        matches = find_matches(pattern, doc)
        return len({id(m[pattern.root]) for m in matches})

    @pytest.mark.parametrize(
        "pattern_text",
        ["B", "/A", 'B[="foo"]', "A { B, E }", 'A { B[="bar"] }', "E"],
    )
    def test_fixed_documents(self, pattern_text):
        doc = tree(
            "A",
            tree("B", "foo"),
            tree("B", "bar"),
            tree("E", tree("C", "foo")),
            tree("E"),
        )
        pattern = parse_pattern(pattern_text)
        assert self.root_image_count(pattern, doc) == root_images_via_elementtree(
            pattern, doc
        )

    def test_random_documents(self):
        from repro.trees import RandomTreeConfig, random_tree

        rng = random.Random(123)
        checked = 0
        while checked < 25:
            doc = random_tree(rng, RandomTreeConfig(max_nodes=40, min_nodes=10))
            # Draw a subset-compatible pattern: a label, optionally with
            # one or two child-label predicates from the document.
            node = rng.choice([n for n in doc.iter()])
            pattern_text = node.label
            children = [c for c in node.children]
            if children and rng.random() < 0.7:
                picks = rng.sample(children, min(len(children), rng.randint(1, 2)))
                parts = []
                for pick in picks:
                    if pick.value is not None and rng.random() < 0.5:
                        parts.append(f'{pick.label}[="{pick.value}"]')
                    else:
                        parts.append(pick.label)
                pattern_text += " { " + ", ".join(parts) + " }"
            pattern = parse_pattern(pattern_text)
            assert self.root_image_count(
                pattern, doc
            ) == root_images_via_elementtree(pattern, doc), pattern_text
            checked += 1
