"""Unit tests for the TPWJ text syntax (repro.tpwj.parser)."""

import pytest

from repro.errors import QueryParseError
from repro.tpwj import format_pattern, parse_pattern


class TestParsing:
    def test_single_label(self):
        pattern = parse_pattern("A")
        assert pattern.root.label == "A" and not pattern.anchored

    def test_anchored(self):
        assert parse_pattern("/A").anchored

    def test_leading_descendant_means_unanchored(self):
        assert not parse_pattern("//A").anchored

    def test_children(self):
        pattern = parse_pattern("A { B, C }")
        assert [c.label for c in pattern.root.children] == ["B", "C"]
        assert not any(c.descendant for c in pattern.root.children)

    def test_descendant_edge(self):
        pattern = parse_pattern("A { //B }")
        assert pattern.root.children[0].descendant

    def test_nested(self):
        pattern = parse_pattern("A { B { C { D } } }")
        node = pattern.root
        for label in ("B", "C", "D"):
            node = node.children[0]
            assert node.label == label

    def test_wildcard(self):
        pattern = parse_pattern("* { B }")
        assert pattern.root.label is None

    def test_value_test(self):
        pattern = parse_pattern('A[="foo"]')
        assert pattern.root.value == "foo"

    def test_variable(self):
        pattern = parse_pattern("A[$x]")
        assert pattern.root.variable == "x"

    def test_variable_with_value(self):
        pattern = parse_pattern('A[$x="foo"]')
        assert pattern.root.variable == "x" and pattern.root.value == "foo"

    def test_string_escapes(self):
        pattern = parse_pattern(r'A[="say \"hi\" \\ there"]')
        assert pattern.root.value == 'say "hi" \\ there'

    def test_slide6_query(self):
        pattern = parse_pattern('/A { B[$v], C { //D[$v] } }')
        assert pattern.anchored
        assert set(pattern.join_variables()) == {"v"}
        d = pattern.root.children[1].children[0]
        assert d.label == "D" and d.descendant

    def test_whitespace_insensitive(self):
        tight = parse_pattern("A{B[$x],//C}")
        loose = parse_pattern("  A  {  B [ $x ] ,  // C  }  ")
        assert format_pattern(tight) == format_pattern(loose)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "A {",
            "A { B",
            "A { B,, C }",
            "A[",
            "A[=foo]",
            'A[="unterminated]',
            "A[$]",
            "A trailing",
            "{ B }",
            "A[=\"x\\q\"]",
            "A[x]",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryParseError):
            parse_pattern(bad)

    def test_error_carries_position(self):
        with pytest.raises(QueryParseError) as info:
            parse_pattern("A { B,, C }")
        assert info.value.position is not None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "A",
            "/A",
            "A { B, C }",
            "A { //B }",
            'A[="foo"]',
            "A { B[$x], C[$x] }",
            '/A { B[$v], C { //D[$v] } }',
            '* { B[$x="q"], //*[="z"] }',
        ],
    )
    def test_format_then_parse_is_identity(self, text):
        once = format_pattern(parse_pattern(text))
        twice = format_pattern(parse_pattern(once))
        assert once == twice

    def test_escape_roundtrip(self):
        pattern = parse_pattern(r'A[="a\"b\\c"]')
        again = parse_pattern(format_pattern(pattern))
        assert again.root.value == pattern.root.value == 'a"b\\c'
