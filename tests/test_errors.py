"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.TreeError,
            errors.EventError,
            errors.QueryError,
            errors.UpdateError,
            errors.XMLFormatError,
            errors.WarehouseError,
        ],
    )
    def test_everything_derives_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_event_error_family(self):
        assert issubclass(errors.UnknownEventError, errors.EventError)
        assert issubclass(errors.InvalidProbabilityError, errors.EventError)
        assert issubclass(errors.InconsistentConditionError, errors.EventError)

    def test_query_parse_error_is_query_error(self):
        assert issubclass(errors.QueryParseError, errors.QueryError)

    def test_warehouse_error_family(self):
        assert issubclass(errors.WarehouseLockedError, errors.WarehouseError)
        assert issubclass(errors.WarehouseCorruptError, errors.WarehouseError)


class TestMessages:
    def test_unknown_event_carries_name(self):
        error = errors.UnknownEventError("w9")
        assert error.name == "w9" and "w9" in str(error)

    def test_invalid_probability_carries_value(self):
        error = errors.InvalidProbabilityError(1.5)
        assert error.value == 1.5 and "1.5" in str(error)

    def test_parse_error_position_in_message(self):
        error = errors.QueryParseError("bad token", position=7)
        assert "position 7" in str(error) and error.position == 7

    def test_parse_error_without_position(self):
        error = errors.QueryParseError("bad token")
        assert error.position is None


class TestCatchability:
    def test_single_except_clause_catches_all(self):
        from repro import EventTable

        with pytest.raises(errors.ReproError):
            EventTable({"w": 2.0})
