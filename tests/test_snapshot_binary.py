"""Tests for the binary snapshot codec and its recovery semantics.

Two contracts:

* **Round trip** — ``save_binary → load_binary`` reproduces the fuzzy
  document node-for-node: labels, values, conditions, child order,
  parent wiring, the event table (names, probabilities, declaration
  order) and the fresh-name counter.  Property-tested over random
  fuzzy workloads.
* **Recovery matrix** — the binary image is a peer snapshot next to
  ``document.xml``: a damaged binary falls back to the XML parse (plus
  WAL replay), a damaged XML is healed by the binary, and
  :class:`~repro.errors.WarehouseCorruptError` surfaces only when both
  images are damaged.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.fuzzy_tree import FuzzyTree
from repro.errors import WarehouseCorruptError
from repro.warehouse import storage as storage_module
from repro.warehouse.snapshot_binary import (
    FORMAT_VERSION,
    MAGIC,
    load_binary,
    save_binary,
)
from repro.warehouse import CommitPolicy, Storage, Warehouse
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree
from repro.xmlio import fuzzy_to_string


def assert_same_document(left: FuzzyTree, right: FuzzyTree) -> None:
    """Node-for-node equality: labels, values, conditions, wiring, events."""
    assert left.events.names() == right.events.names()
    for name in left.events.names():
        assert left.events.probability(name) == right.events.probability(name)
    assert left.events.fresh_counter == right.events.fresh_counter

    stack = [(left.root, right.root, None)]
    while stack:
        a, b, parent = stack.pop()
        assert a.label == b.label
        assert a.value == b.value
        # Conditions are interned: decoding must land on the same objects.
        assert a.condition is b.condition
        assert b.parent is parent
        assert len(a.children) == len(b.children)
        stack.extend(
            (ca, cb, b) for ca, cb in zip(a.children, b.children)
        )


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_documents_round_trip(self, seed):
        rng = random.Random(seed)
        document = random_fuzzy_tree(
            rng,
            FuzzyWorkloadConfig(n_events=rng.randint(0, 6)),
        )
        decoded, sequence = load_binary(save_binary(document, sequence=seed))
        assert sequence == seed
        decoded.validate()
        assert_same_document(document, decoded)

    def test_fresh_counter_survives(self, slide12_doc):
        slide12_doc.events.fresh(0.5)
        slide12_doc.events.fresh(0.25)
        counter = slide12_doc.events.fresh_counter
        assert counter > 0
        decoded, _ = load_binary(save_binary(slide12_doc, sequence=1))
        assert decoded.events.fresh_counter == counter
        # A fresh name declared after decode must not collide.
        assert decoded.events.fresh(0.5) not in slide12_doc.events.names()

    def test_values_round_trip(self):
        document = FuzzyTree(
            repro.FuzzyNode(
                "r",
                children=[
                    repro.FuzzyNode("a", value="hello world"),
                    repro.FuzzyNode("b", value="über ∂ünïcode"),
                    repro.FuzzyNode("c"),
                ],
            )
        )
        decoded, _ = load_binary(save_binary(document, sequence=0))
        values = [child.value for child in decoded.root.children]
        assert values == ["hello world", "über ∂ünïcode", None]

    def test_smaller_than_xml_at_scale(self, rng):
        from repro.trees import RandomTreeConfig

        document = random_fuzzy_tree(
            rng,
            FuzzyWorkloadConfig(
                tree=RandomTreeConfig(max_nodes=800, max_depth=10), n_events=12
            ),
        )
        binary = save_binary(document, sequence=7)
        xml = fuzzy_to_string(document).encode("utf-8")
        assert len(binary) < len(xml)


class TestCodecCorruption:
    def _image(self, slide12_doc) -> bytes:
        return save_binary(slide12_doc, sequence=3)

    def test_truncation_detected(self, slide12_doc):
        image = self._image(slide12_doc)
        for cut in (0, 4, len(image) // 2, len(image) - 1):
            with pytest.raises(WarehouseCorruptError):
                load_binary(image[:cut])

    def test_bit_flip_detected(self, slide12_doc):
        image = bytearray(self._image(slide12_doc))
        image[len(image) // 2] ^= 0xFF
        with pytest.raises(WarehouseCorruptError):
            load_binary(bytes(image))

    def test_bad_magic_and_version(self, slide12_doc):
        image = self._image(slide12_doc)
        assert image.startswith(MAGIC)
        with pytest.raises(WarehouseCorruptError, match="magic"):
            load_binary(b"XXXX" + image[4:])
        # A future format version with a valid digest must be refused,
        # not misparsed: re-seal the checksum over the bumped header.
        import hashlib

        bumped = bytearray(image[:-32])
        bumped[len(MAGIC)] = FORMAT_VERSION + 1
        bumped += hashlib.sha256(bytes(bumped)).digest()
        with pytest.raises(WarehouseCorruptError, match="version"):
            load_binary(bytes(bumped))

    def test_trailing_garbage_detected(self, slide12_doc):
        with pytest.raises(WarehouseCorruptError):
            load_binary(self._image(slide12_doc) + b"\x00")


class _Crash(Exception):
    """The injected fault: the process dies here."""


def _insert_tx(label: str):
    return (
        repro.update(repro.pattern("A", variable="a", anchored=True))
        .insert("a", repro.tree(label))
        .confidence(0.9)
    )


class TestWarehouseRecovery:
    """The fallback matrix against a real store with WAL records."""

    @pytest.fixture
    def store(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        # snapshot_every=2: the first two updates fold into the snapshot
        # images, the third stays WAL-only — every recovery path below
        # must replay it no matter which image it starts from.
        with repro.connect(
            path, create=True, document=slide12_doc, snapshot_every=2,
            compact_on_close=False, observability=None,
        ) as session:
            for label in ("N1", "N2", "N3"):
                session.update(_insert_tx(label))
        return path

    def _labels(self, path) -> set[str]:
        with Warehouse.open(path, observability=None) as warehouse:
            return {node.label for node in warehouse.document.iter_nodes()}

    def test_binary_fast_path_equals_xml_parse(self, store):
        expected = self._labels(store)
        assert {"N1", "N2", "N3"} <= expected
        (store / "document.bin").unlink()
        # Meta still advertises the image: read_binary raises, open falls
        # back to the XML snapshot and replays the WAL on top.
        assert self._labels(store) == expected

    def test_corrupt_binary_falls_back_to_xml(self, store):
        expected = self._labels(store)
        payload = bytearray((store / "document.bin").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (store / "document.bin").write_bytes(bytes(payload))
        assert self._labels(store) == expected

    def test_corrupt_xml_healed_by_binary(self, store):
        expected = self._labels(store)
        xml = (store / "document.xml").read_bytes()
        (store / "document.xml").write_bytes(xml[: len(xml) // 2])
        assert self._labels(store) == expected

    def test_both_images_damaged_is_corruption(self, store):
        for name in ("document.bin", "document.xml"):
            payload = (store / name).read_bytes()
            (store / name).write_bytes(payload[: len(payload) // 2])
        with pytest.raises(WarehouseCorruptError):
            Warehouse.open(store)

    def test_crash_between_xml_and_binary_writes_heals(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """Crash after document.xml, before document.bin: the stale
        binary + stale meta are a consistent pair, so open() recovers
        from the *old* snapshot and replays the WAL."""
        from repro.api.builders import compile_transaction

        path = tmp_path / "wh"
        policy = CommitPolicy(snapshot_every=1000, compact_on_close=False)
        wh = Warehouse.create(path, slide12_doc, policy=policy)
        wh._commit_update(compile_transaction(_insert_tx("N1")))
        real_atomic_write = storage_module._atomic_write
        calls = {"n": 0}

        def dying_atomic_write(target, payload):
            calls["n"] += 1
            if calls["n"] == 2:  # 1=document.xml, 2=document.bin, 3=meta.json
                raise _Crash()
            real_atomic_write(target, payload)

        monkeypatch.setattr(storage_module, "_atomic_write", dying_atomic_write)
        with pytest.raises(_Crash):
            wh.compact()
        monkeypatch.undo()
        # Simulate process death: the lock evaporates, nothing flushes.
        wh._storage.release_lock()
        wh._closed = True

        labels = self._labels(path)
        assert "N1" in labels

    def test_stale_binary_never_outlives_its_xml(self, store):
        """write_document(binary=None) must drop the old image so a
        later open can never pair a new XML with a stale binary."""
        storage = Storage(store)
        meta = storage.read_meta()
        xml_text, _ = storage.read_document()
        storage.write_document(xml_text, sequence=int(meta["sequence"]))
        assert not (store / "document.bin").exists()
        assert "binary" not in storage.read_meta()