"""Unit tests for conjunctive conditions (repro.events.condition)."""

import pytest

from repro.errors import EventError, InconsistentConditionError
from repro.events import TRUE, Condition, Literal


class TestConstruction:
    def test_empty_is_true(self):
        assert TRUE.is_true
        assert Condition() == TRUE

    def test_of(self):
        cond = Condition.of("w1", "!w2")
        assert cond.literals == {Literal("w1"), Literal("w2", False)}

    @pytest.mark.parametrize("text", ["w1 !w2", "w1, !w2", " w1 , !w2 ", "w1,!w2"])
    def test_parse_separators(self, text):
        assert Condition.parse(text) == Condition.of("w1", "!w2")

    def test_parse_empty_is_true(self):
        assert Condition.parse("   ") is TRUE or Condition.parse("   ").is_true

    def test_parse_unicode_negation(self):
        assert Condition.parse("¬w1") == Condition.of("!w1")

    def test_inconsistent_rejected_by_default(self):
        with pytest.raises(InconsistentConditionError):
            Condition.of("w1", "!w1")

    def test_inconsistent_allowed_when_asked(self):
        cond = Condition([Literal("w1"), Literal("w1", False)], allow_inconsistent=True)
        assert not cond.is_consistent

    def test_non_literal_rejected(self):
        with pytest.raises(EventError):
            Condition(["w1"])  # type: ignore[list-item]

    def test_duplicates_collapse(self):
        assert len(Condition([Literal("w1"), Literal("w1")])) == 1


class TestAlgebra:
    def test_conjoin(self):
        combined = Condition.of("w1").conjoin(Condition.of("!w2"))
        assert combined == Condition.of("w1", "!w2")

    def test_conjoin_detects_conflict(self):
        with pytest.raises(InconsistentConditionError):
            Condition.of("w1").conjoin(Condition.of("!w1"))

    def test_conjoin_with_true_is_identity(self):
        cond = Condition.of("w1")
        assert cond.conjoin(TRUE) == cond

    def test_with_literal(self):
        assert Condition.of("w1").with_literal(Literal("w2")) == Condition.of("w1", "w2")

    def test_without_events(self):
        cond = Condition.of("w1", "!w2", "w3")
        assert cond.without_events(["w2", "w3"]) == Condition.of("w1")

    def test_without_literals(self):
        cond = Condition.of("w1", "!w2")
        assert cond.without_literals([Literal("w2", False)]) == Condition.of("w1")

    def test_restrict_positive(self):
        cond = Condition.of("w1", "!w2")
        assert cond.restrict("w1", True) == Condition.of("!w2")
        assert cond.restrict("w1", False) is None

    def test_restrict_absent_event_is_identity(self):
        cond = Condition.of("w1")
        assert cond.restrict("w9", True) is cond

    def test_polarity(self):
        cond = Condition.of("w1", "!w2")
        assert cond.polarity("w1") is True
        assert cond.polarity("w2") is False
        assert cond.polarity("w3") is None

    def test_events(self):
        assert Condition.of("w1", "!w2").events() == {"w1", "w2"}


class TestImplication:
    def test_stronger_implies_weaker(self):
        strong = Condition.of("w1", "w2")
        weak = Condition.of("w1")
        assert strong.implies(weak)
        assert not weak.implies(strong)

    def test_everything_implies_true(self):
        assert Condition.of("w1").implies(TRUE)

    def test_true_implies_only_true(self):
        assert TRUE.implies(TRUE)
        assert not TRUE.implies(Condition.of("w1"))

    def test_polarity_matters(self):
        assert not Condition.of("w1").implies(Condition.of("!w1"))


class TestSatisfaction:
    def test_true_satisfied_by_anything(self):
        assert TRUE.satisfied_by({})

    def test_positive_and_negative(self):
        cond = Condition.of("w1", "!w2")
        assert cond.satisfied_by({"w1": True, "w2": False})
        assert not cond.satisfied_by({"w1": True, "w2": True})
        assert not cond.satisfied_by({"w1": False, "w2": False})

    def test_missing_event_raises(self):
        with pytest.raises(EventError, match="does not cover"):
            Condition.of("w1").satisfied_by({})


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Condition.of("w1", "!w2") == Condition.of("!w2", "w1")
        assert hash(Condition.of("w1")) == hash(Condition.of("w1"))
        assert Condition.of("w1") != Condition.of("w2")

    def test_iteration_is_sorted(self):
        cond = Condition.of("w2", "!w1", "w10")
        assert [str(lit) for lit in cond] == ["!w1", "w10", "w2"]

    def test_str_roundtrips_through_parse(self):
        cond = Condition.of("w1", "!w2", "w3")
        assert Condition.parse(str(cond)) == cond

    def test_str_of_true(self):
        assert str(TRUE) == "true"
        assert TRUE.pretty() == "⊤"

    def test_pretty(self):
        assert Condition.of("w1", "!w2").pretty() == "w1, ¬w2"

    def test_len(self):
        assert len(Condition.of("w1", "!w2")) == 2
