"""Concurrency stress tests: single-writer / multi-reader serving.

The CI ``stress`` tier runs this file under ``pytest-timeout`` so a
deadlock fails fast instead of hanging the runner; every test that
spins threads carries an explicit ``@pytest.mark.timeout`` (registered
as a no-op marker when the plugin is absent locally — see
``conftest.pytest_configure``).

What is being defended:

* **snapshot isolation under threads** — a pinned reader sees one
  frozen, internally consistent document generation whose row
  probabilities match a serial re-run of the pinned snapshot, while a
  writer commits random updates (the copy-on-write contract);
* **no torn reads** — a live-session iteration pins its generation on
  entry and never observes a half-applied mutation;
* **pin accounting** — pins are released exactly once from any thread,
  including abandoned iterators (weakref finalizer) and racing
  double-releases, and ``stats()["read_sessions"]`` always returns
  to 0;
* **writer serialization** — concurrent committers queue; the commit
  sequence has no gaps and recovery replays cleanly.
"""

from __future__ import annotations

import gc
import random
import threading

import pytest

import repro
from repro.core.query import query_fuzzy_tree
from repro.tpwj.parser import parse_pattern


def _insert(label: str, value: str, confidence: float = 0.9):
    """An update inserting ``<label>value</label>`` under the root."""
    return (
        repro.update(repro.pattern("directory", variable="d", anchored=True))
        .insert("d", repro.tree("person", repro.tree(label, value)))
        .confidence(confidence)
    )


@pytest.fixture
def session(tmp_path):
    with repro.connect(tmp_path / "wh", create=True, root="directory") as session:
        for i in range(12):
            session.update(_insert("name", f"seed{i}", 0.5 + 0.04 * i))
        yield session


def _run_threads(threads, errors):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors


class TestSnapshotIsolationUnderThreads:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_readers_see_frozen_consistent_generations(self, session, seed):
        """K concurrent pinned readers vs. a writer committing M random
        updates: every reader's rows are stable across re-reads and
        their probabilities match a serial re-run of the pinned
        snapshot through the engine-free slow path."""
        readers, commits = 4, 25
        rng = random.Random(seed)
        updates = [
            _insert("name", f"w{seed}-{i}", rng.uniform(0.05, 0.95))
            for i in range(commits)
        ]
        errors: list = []
        started = threading.Barrier(readers + 1)

        def reader(k: int) -> None:
            try:
                started.wait()
                for _ in range(6):
                    with session.snapshot() as snap:
                        first = snap.query("//person { name }").all()
                        second = snap.query("//person { name }").all()
                        assert [r.probability for r in first] == [
                            r.probability for r in second
                        ], "snapshot re-read diverged"
                        # Serial re-run of the pinned generation: the
                        # engine-free path walks ancestor chains and
                        # expands with a private memo — bit-identical
                        # probabilities prove the pinned tree, its
                        # event table and the shared engine caches are
                        # all consistent mid-churn.
                        serial = query_fuzzy_tree(
                            snap.document, parse_pattern("//person { name }")
                        )
                        engine_side = snap.query("//person { name }").answers()
                        assert [a.probability for a in engine_side] == [
                            a.probability for a in serial
                        ], "engine path diverged from serial re-run"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        def writer() -> None:
            try:
                started.wait()
                for update in updates:
                    session.update(update)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("writer", repr(exc)))

        threads = [
            threading.Thread(target=reader, args=(k,)) for k in range(readers)
        ]
        threads.append(threading.Thread(target=writer))
        _run_threads(threads, errors)
        assert session.stats()["read_sessions"] == 0

    @pytest.mark.timeout(120)
    def test_live_iteration_counts_never_regress(self, session):
        """The writer only inserts, so the row count a reader's
        iteration observes must be non-decreasing over its successive
        (freshly pinned) iterations — a torn or half-applied read would
        break monotonicity or crash mid-walk."""
        errors: list = []
        stop = threading.Event()

        def reader(k: int) -> None:
            try:
                last = 0
                while not stop.is_set():
                    count = session.query("//name").count()
                    assert count >= last, f"count regressed: {last} -> {count}"
                    last = count
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        def writer() -> None:
            try:
                for i in range(40):
                    session.update(_insert("name", f"live{i}"))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(k,)) for k in range(3)]
        threads.append(threading.Thread(target=writer))
        _run_threads(threads, errors)
        assert session.stats()["read_sessions"] == 0


class TestPinAccounting:
    def test_abandoned_iterator_releases_pin(self, session):
        """Regression: a live-session stream dropped without exhaustion
        used to keep its generation pinned forever."""
        stream = iter(session.query("//person"))
        next(stream)
        assert session.stats()["read_sessions"] == 1
        del stream
        gc.collect()
        assert session.stats()["read_sessions"] == 0

    def test_stream_context_manager_releases_pin(self, session):
        with iter(session.query("//person")) as stream:
            next(stream)
            assert session.stats()["read_sessions"] == 1
        assert stream.closed
        assert session.stats()["read_sessions"] == 0

    def test_exhaustion_and_close_are_idempotent(self, session):
        stream = iter(session.query("//person").limit(2))
        assert len(list(stream)) == 2
        assert session.stats()["read_sessions"] == 0
        stream.close()
        stream.close()
        assert session.stats()["read_sessions"] == 0

    def test_first_releases_pin(self, session):
        assert session.query("//person").first() is not None
        assert session.stats()["read_sessions"] == 0

    def test_racing_pin_releases_decrement_once(self, session):
        pin = session.warehouse.pin()
        errors: list = []
        barrier = threading.Barrier(4)

        def release(k: int) -> None:
            try:
                barrier.wait()
                pin.release()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        _run_threads(
            [threading.Thread(target=release, args=(k,)) for k in range(4)], errors
        )
        assert session.stats()["read_sessions"] == 0

    @pytest.mark.timeout(120)
    def test_snapshot_churn_across_threads(self, session):
        errors: list = []

        def churn(k: int) -> None:
            try:
                for _ in range(30):
                    with session.snapshot() as snap:
                        assert snap.query("//name").count() >= 12
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        _run_threads(
            [threading.Thread(target=churn, args=(k,)) for k in range(6)], errors
        )
        assert session.stats()["read_sessions"] == 0


class TestWriterSerialization:
    @pytest.mark.timeout(120)
    def test_concurrent_writers_queue_without_gaps(self, tmp_path):
        path = tmp_path / "wh"
        writers, each = 4, 10
        with repro.connect(path, create=True, root="directory") as session:
            base = session.sequence
            errors: list = []

            def writer(k: int) -> None:
                try:
                    for i in range(each):
                        session.update(_insert("name", f"t{k}-{i}"))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append((k, repr(exc)))

            _run_threads(
                [threading.Thread(target=writer, args=(k,)) for k in range(writers)],
                errors,
            )
            assert session.sequence == base + writers * each
            names = {
                row.tree.canonical()
                for row in session.query("//person { name }")
            }
            assert len(names) == writers * each
        # Clean reopen: the interleaved commit history replays/loads.
        with repro.connect(path) as session:
            assert session.query("//name").count() == writers * each

    @pytest.mark.timeout(120)
    def test_batches_and_simplify_interleave_safely(self, session):
        errors: list = []

        def batcher(k: int) -> None:
            try:
                for i in range(5):
                    session.update_many(
                        [_insert("name", f"b{k}-{i}-{j}") for j in range(4)]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        def maintainer() -> None:
            try:
                for _ in range(3):
                    session.simplify()
                    session.compact()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("maintainer", repr(exc)))

        threads = [threading.Thread(target=batcher, args=(k,)) for k in range(3)]
        threads.append(threading.Thread(target=maintainer))
        _run_threads(threads, errors)
        assert session.query("//name").count() >= 3 * 5 * 4


class TestStressTier:
    """The heavyweight mixed workload the CI stress job exists for."""

    @pytest.mark.timeout(240)
    def test_eight_readers_one_writer_mixed_workload(self, tmp_path):
        with repro.connect(tmp_path / "wh", create=True, root="directory") as session:
            for i in range(20):
                session.update(_insert("name", f"seed{i}", 0.4 + 0.02 * i))
            errors: list = []
            stop = threading.Event()
            iterations = [0] * 8

            def reader(k: int) -> None:
                try:
                    while not stop.is_set():
                        mode = k % 4
                        if mode == 0:
                            rows = session.query("//person { name }").limit(5).all()
                            assert len(rows) == 5
                        elif mode == 1:
                            with session.snapshot() as snap:
                                a = snap.query("//name").answers()
                                b = snap.query("//name").answers()
                                assert [x.probability for x in a] == [
                                    x.probability for x in b
                                ]
                        elif mode == 2:
                            stream = iter(session.query("//person"))
                            next(stream)
                            stream.close()
                        else:
                            for row in session.query("//name").limit(3):
                                assert 0.0 < row.probability <= 1.0
                        iterations[k] += 1
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append((k, repr(exc)))

            def writer() -> None:
                try:
                    for i in range(30):
                        if i % 10 == 9:
                            session.update_many(
                                [_insert("name", f"wb{i}-{j}") for j in range(3)]
                            )
                        else:
                            session.update(_insert("name", f"w{i}"))
                finally:
                    stop.set()

            threads = [
                threading.Thread(target=reader, args=(k,)) for k in range(8)
            ]
            threads.append(threading.Thread(target=writer))
            _run_threads(threads, errors)
            assert all(count > 0 for count in iterations), iterations
            assert session.stats()["read_sessions"] == 0
            # The shared engine's caches stayed coherent: one more full
            # read agrees with the engine-free slow path.
            serial = query_fuzzy_tree(
                session.document, parse_pattern("//person { name }")
            )
            fast = session.query("//person { name }").answers()
            assert [a.probability for a in fast] == [a.probability for a in serial]
