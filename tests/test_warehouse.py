"""Unit tests for the probabilistic XML warehouse (repro.warehouse)."""

import json

import pytest

from repro.errors import (
    WarehouseCorruptError,
    WarehouseError,
    WarehouseLockedError,
)
from repro import (
    DeleteOperation,
    InsertOperation,
    UpdateTransaction,
    parse_pattern,
)
from repro.trees import tree
from repro.warehouse import Storage, TransactionLog, Warehouse


@pytest.fixture
def warehouse(tmp_path, slide12_doc):
    with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
        yield wh


class TestStorage:
    def test_atomic_write_and_read(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=3)
        text, sequence = storage.read_document()
        assert text == "<hello/>" and sequence == 3

    def test_missing_document(self, tmp_path):
        with pytest.raises(WarehouseError, match="no document"):
            Storage(tmp_path / "s").read_document()

    def test_checksum_detects_tampering(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=1)
        storage.document_path.write_text("<tampered/>")
        with pytest.raises(WarehouseCorruptError, match="checksum"):
            storage.read_document()

    def test_missing_meta_is_corrupt(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=1)
        storage.meta_path.unlink()
        with pytest.raises(WarehouseCorruptError, match="metadata"):
            storage.read_document()

    def test_lock_exclusive(self, tmp_path):
        first = Storage(tmp_path / "s")
        second = Storage(tmp_path / "s")
        first.acquire_lock()
        with pytest.raises(WarehouseLockedError):
            second.acquire_lock()
        first.release_lock()
        second.acquire_lock()
        second.release_lock()

    def test_stale_lock_broken(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.initialize()
        storage.lock_path.write_text("999999999")  # no such pid
        storage.acquire_lock()
        storage.release_lock()

    def test_acquire_is_idempotent_within_holder(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.acquire_lock()
        storage.acquire_lock()
        storage.release_lock()


class TestTransactionLog:
    def test_append_and_read(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 1, {"matches": 2})
        log.append("simplify", 2, {})
        entries = log.entries()
        assert [e["kind"] for e in entries] == ["update", "simplify"]
        assert entries[0]["matches"] == 2

    def test_empty_log(self, tmp_path):
        assert TransactionLog(tmp_path).entries() == []
        assert TransactionLog(tmp_path).last_sequence() == 0

    def test_corrupt_line_detected(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 1, {})
        with open(log.path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(WarehouseCorruptError, match="line 2"):
            log.entries()

    def test_last_sequence(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 5, {})
        log.append("update", 7, {})
        assert log.last_sequence() == 7


class TestWarehouseLifecycle:
    def test_create_then_open(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            sequence = wh.sequence
        with Warehouse.open(tmp_path / "wh") as wh:
            assert wh.sequence == sequence
            assert wh.document.root.canonical() == slide12_doc.root.canonical()

    def test_create_twice_rejected(self, tmp_path, slide12_doc):
        Warehouse.create(tmp_path / "wh", slide12_doc).close()
        with pytest.raises(WarehouseError, match="already exists"):
            Warehouse.create(tmp_path / "wh", slide12_doc)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(WarehouseError, match="no warehouse"):
            Warehouse.open(tmp_path / "nope")

    def test_open_while_locked_rejected(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc):
            with pytest.raises(WarehouseLockedError):
                Warehouse.open(tmp_path / "wh")

    def test_closed_handle_unusable(self, tmp_path, slide12_doc):
        wh = Warehouse.create(tmp_path / "wh", slide12_doc)
        wh.close()
        with pytest.raises(WarehouseError, match="closed"):
            wh.query("B")

    def test_create_stores_a_clone(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            slide12_doc.root.children[0].detach()
            assert wh.document.size() == 4


class TestWarehouseOperations:
    def test_query_text_or_pattern(self, warehouse):
        via_text = warehouse.query("//D")
        via_pattern = warehouse.query(parse_pattern("//D"))
        assert len(via_text) == len(via_pattern) == 1
        assert via_text[0].probability == pytest.approx(0.7)

    def test_update_with_transaction(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        report = warehouse.update(tx)
        assert report.applied
        assert warehouse.sequence == 2

    def test_update_with_xupdate_string(self, warehouse):
        text = (
            '<xu:modifications xmlns:xu="urn:repro:xupdate" '
            'query="C[$c]" confidence="0.5">'
            "<xu:insert anchor='c'><N/></xu:insert>"
            "</xu:modifications>"
        )
        report = warehouse.update(text)
        assert report.applied

    def test_update_confidence_override(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
        )
        report = warehouse.update(tx, confidence=0.25)
        assert warehouse.document.events.probability(
            report.confidence_event
        ) == pytest.approx(0.25)

    def test_updates_survive_reopen(self, tmp_path, slide12_doc):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            wh.update(tx)
            expected = wh.document.root.canonical()
        with Warehouse.open(tmp_path / "wh") as wh:
            assert wh.document.root.canonical() == expected

    def test_history_records_updates(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [DeleteOperation("b")], 0.9
        )
        warehouse.update(tx)
        kinds = [entry["kind"] for entry in warehouse.history()]
        assert kinds == ["create", "update"]
        last = warehouse.history()[-1]
        assert last["confidence"] == 0.9
        assert "xu:modifications" in last["transaction"]

    def test_stats(self, warehouse):
        stats = warehouse.stats()
        assert stats["nodes"] == 4
        assert stats["sequence"] == 1
        assert stats["log_entries"] == 1

    def test_explicit_simplify_commits(self, warehouse):
        warehouse.document.events.declare("orphan", 0.5)
        report = warehouse.simplify()
        assert report.collected_events == 1
        assert warehouse.sequence == 2

    def test_auto_simplify_triggers(self, tmp_path, slide12_doc):
        wh = Warehouse.create(
            tmp_path / "wh", slide12_doc, auto_simplify_factor=1.5
        )
        with wh:
            tx = UpdateTransaction(
                parse_pattern("C[$c]"),
                [InsertOperation("c", tree("N", tree("M"), tree("O")))],
                1.0,
            )
            wh.update(tx)  # 4 -> 7 nodes > 1.5 * 4: simplify committed too
            kinds = [entry["kind"] for entry in wh.history()]
            assert "simplify" in kinds

    def test_log_is_valid_json(self, warehouse, tmp_path):
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [DeleteOperation("b")], 0.9
        )
        warehouse.update(tx)
        log_path = warehouse.history()
        for entry in log_path:
            json.dumps(entry)  # re-serializable
