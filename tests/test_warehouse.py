"""Unit tests for the probabilistic XML warehouse (repro.warehouse)."""

import json

import pytest

from repro.errors import (
    WarehouseCorruptError,
    WarehouseError,
    WarehouseLockedError,
)
from repro import (
    DeleteOperation,
    InsertOperation,
    UpdateTransaction,
)
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.warehouse import Storage, TransactionLog, Warehouse


@pytest.fixture
def warehouse(tmp_path, slide12_doc):
    with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
        yield wh


class TestStorage:
    def test_atomic_write_and_read(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=3)
        text, sequence = storage.read_document()
        assert text == "<hello/>" and sequence == 3

    def test_missing_document(self, tmp_path):
        with pytest.raises(WarehouseError, match="no document"):
            Storage(tmp_path / "s").read_document()

    def test_checksum_detects_tampering(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=1)
        storage.document_path.write_text("<tampered/>")
        with pytest.raises(WarehouseCorruptError, match="checksum"):
            storage.read_document()

    def test_missing_meta_is_corrupt(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.write_document("<hello/>", sequence=1)
        storage.meta_path.unlink()
        with pytest.raises(WarehouseCorruptError, match="metadata"):
            storage.read_document()

    def test_lock_exclusive(self, tmp_path):
        first = Storage(tmp_path / "s")
        second = Storage(tmp_path / "s")
        first.acquire_lock()
        with pytest.raises(WarehouseLockedError):
            second.acquire_lock()
        first.release_lock()
        second.acquire_lock()
        second.release_lock()

    def test_stale_lock_broken(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.initialize()
        storage.lock_path.write_text("999999999")  # no such pid
        storage.acquire_lock()
        storage.release_lock()

    def test_acquire_is_idempotent_within_holder(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.acquire_lock()
        storage.acquire_lock()
        storage.release_lock()


class TestTransactionLog:
    def test_append_and_read(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 1, {"matches": 2})
        log.append("simplify", 2, {})
        entries = log.entries()
        assert [e["kind"] for e in entries] == ["update", "simplify"]
        assert entries[0]["matches"] == 2

    def test_empty_log(self, tmp_path):
        assert TransactionLog(tmp_path).entries() == []
        assert TransactionLog(tmp_path).last_sequence() == 0

    def test_corrupt_line_detected(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 1, {})
        with open(log.path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(WarehouseCorruptError, match="line 2"):
            log.entries()

    def test_last_sequence(self, tmp_path):
        log = TransactionLog(tmp_path)
        log.append("update", 5, {})
        log.append("update", 7, {})
        assert log.last_sequence() == 7


class TestWarehouseLifecycle:
    def test_create_then_open(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            sequence = wh.sequence
        with Warehouse.open(tmp_path / "wh") as wh:
            assert wh.sequence == sequence
            assert wh.document.root.canonical() == slide12_doc.root.canonical()

    def test_create_twice_rejected(self, tmp_path, slide12_doc):
        Warehouse.create(tmp_path / "wh", slide12_doc).close()
        with pytest.raises(WarehouseError, match="already exists"):
            Warehouse.create(tmp_path / "wh", slide12_doc)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(WarehouseError, match="no warehouse"):
            Warehouse.open(tmp_path / "nope")

    def test_open_while_locked_rejected(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc):
            with pytest.raises(WarehouseLockedError):
                Warehouse.open(tmp_path / "wh")

    def test_closed_handle_unusable(self, tmp_path, slide12_doc):
        wh = Warehouse.create(tmp_path / "wh", slide12_doc)
        wh.close()
        with pytest.raises(WarehouseError, match="closed"):
            wh._query_answers("B")

    def test_create_stores_a_clone(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            slide12_doc.root.children[0].detach()
            assert wh.document.size() == 4


class TestWarehouseOperations:
    def test_query_text_or_pattern(self, warehouse):
        via_text = warehouse._query_answers("//D")
        via_pattern = warehouse._query_answers(parse_pattern("//D"))
        assert len(via_text) == len(via_pattern) == 1
        assert via_text[0].probability == pytest.approx(0.7)

    def test_update_with_transaction(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        report = warehouse._commit_update(tx)
        assert report.applied
        assert warehouse.sequence == 2

    def test_update_with_xupdate_string(self, warehouse):
        text = (
            '<xu:modifications xmlns:xu="urn:repro:xupdate" '
            'query="C[$c]" confidence="0.5">'
            "<xu:insert anchor='c'><N/></xu:insert>"
            "</xu:modifications>"
        )
        report = warehouse._commit_update(text)
        assert report.applied

    def test_update_confidence_override(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
        )
        report = warehouse._commit_update(tx, confidence=0.25)
        assert warehouse.document.events.probability(
            report.confidence_event
        ) == pytest.approx(0.25)

    def test_updates_survive_reopen(self, tmp_path, slide12_doc):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 0.5
        )
        with Warehouse.create(tmp_path / "wh", slide12_doc) as wh:
            wh._commit_update(tx)
            expected = wh.document.root.canonical()
        with Warehouse.open(tmp_path / "wh") as wh:
            assert wh.document.root.canonical() == expected

    def test_history_records_updates(self, warehouse):
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [DeleteOperation("b")], 0.9
        )
        warehouse._commit_update(tx)
        kinds = [entry["kind"] for entry in warehouse.history()]
        assert kinds == ["create", "update"]
        last = warehouse.history()[-1]
        assert last["confidence"] == 0.9
        assert "xu:modifications" in last["transaction"]

    def test_stats(self, warehouse):
        stats = warehouse.stats()
        assert stats["nodes"] == 4
        assert stats["sequence"] == 1
        assert stats["log_entries"] == 1

    def test_explicit_simplify_commits(self, warehouse):
        warehouse.document.events.declare("orphan", 0.5)
        report = warehouse.simplify()
        assert report.collected_events == 1
        assert warehouse.sequence == 2

    def test_auto_simplify_triggers(self, tmp_path, slide12_doc):
        wh = Warehouse.create(
            tmp_path / "wh", slide12_doc, auto_simplify_factor=1.5
        )
        with wh:
            tx = UpdateTransaction(
                parse_pattern("C[$c]"),
                [InsertOperation("c", tree("N", tree("M"), tree("O")))],
                1.0,
            )
            wh._commit_update(tx)  # 4 -> 7 nodes > 1.5 * 4: simplify committed too
            kinds = [entry["kind"] for entry in wh.history()]
            assert "simplify" in kinds

    def test_log_is_valid_json(self, warehouse, tmp_path):
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [DeleteOperation("b")], 0.9
        )
        warehouse._commit_update(tx)
        log_path = warehouse.history()
        for entry in log_path:
            json.dumps(entry)  # re-serializable


class TestWriteAheadLog:
    def _wal(self, tmp_path):
        from repro.warehouse import WriteAheadLog

        return WriteAheadLog(tmp_path)

    def test_append_and_replayable(self, tmp_path):
        wal = self._wal(tmp_path)
        wal.append("update", 2, {"transaction": "<xu/>"})
        wal.append("update", 3, {"transaction": "<xu/>"})
        records, torn = wal.replayable(1)
        assert torn is None
        assert [r["sequence"] for r in records] == [2, 3]

    def test_records_before_snapshot_skipped(self, tmp_path):
        wal = self._wal(tmp_path)
        for sequence in (2, 3, 4):
            wal.append("update", sequence, {})
        records, _ = wal.replayable(3)
        assert [r["sequence"] for r in records] == [4]

    def test_torn_tail_discarded_with_note(self, tmp_path):
        wal = self._wal(tmp_path)
        wal.append("update", 2, {})
        with open(wal.path, "ab") as handle:
            handle.write(b'{"kind": "upd')  # crash mid-append
        records, torn = wal.replayable(1)
        assert [r["sequence"] for r in records] == [2]
        assert torn is not None and "torn" in torn

    def test_checksum_mismatch_mid_file_raises(self, tmp_path):
        wal = self._wal(tmp_path)
        wal.append("update", 2, {"transaction": "aaaa"})
        wal.append("update", 3, {})
        lines = wal.path.read_bytes().splitlines(keepends=True)
        lines[0] = lines[0].replace(b"aaaa", b"bbbb")
        wal.path.write_bytes(b"".join(lines))
        with pytest.raises(WarehouseCorruptError, match="checksum"):
            wal.records()

    def test_sequence_gap_raises(self, tmp_path):
        wal = self._wal(tmp_path)
        wal.append("update", 2, {})
        wal.append("update", 4, {})
        with pytest.raises(WarehouseCorruptError, match="gap"):
            wal.replayable(1)

    def test_reset_empties_atomically(self, tmp_path):
        wal = self._wal(tmp_path)
        wal.append("update", 2, {})
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.size_bytes() == 0
        assert wal.replayable(0) == ([], None)

    def test_depth(self, tmp_path):
        wal = self._wal(tmp_path)
        assert wal.depth(0) == 0
        wal.append("update", 2, {})
        wal.append("update", 3, {})
        assert wal.depth(1) == 2
        assert wal.depth(2) == 1


class TestLockPidReuse:
    """The explicit stale-lock breaking rule (see storage docstring)."""

    def _storage(self, tmp_path):
        storage = Storage(tmp_path / "s")
        storage.initialize()
        return storage

    def test_dead_pid_lock_broken(self, tmp_path):
        storage = self._storage(tmp_path)
        storage.lock_path.write_text('{"pid": 999999999, "token": "123"}')
        storage.acquire_lock()
        storage.release_lock()

    def test_live_pid_with_matching_token_respected(self, tmp_path):
        import os

        from repro.warehouse.storage import _process_token

        token = _process_token(os.getpid())
        if token is None:
            pytest.skip("no /proc process-start tokens on this platform")
        storage = self._storage(tmp_path)
        storage.lock_path.write_text(
            json.dumps({"pid": os.getpid(), "token": token})
        )
        with pytest.raises(WarehouseLockedError):
            storage.acquire_lock()

    def test_pid_reuse_lock_broken(self, tmp_path):
        """The recorded pid is alive but belongs to a different process
        (start-time token differs): the lock is provably stale."""
        import os

        from repro.warehouse.storage import _process_token

        if _process_token(os.getpid()) is None:
            pytest.skip("no /proc process-start tokens on this platform")
        storage = self._storage(tmp_path)
        storage.lock_path.write_text(
            json.dumps({"pid": os.getpid(), "token": "0"})
        )
        storage.acquire_lock()
        storage.release_lock()

    def test_legacy_integer_lock_with_live_pid_respected(self, tmp_path):
        """A legacy lock has no token: a live owner can never be broken
        (when in doubt, refuse to steal)."""
        import os

        storage = self._storage(tmp_path)
        storage.lock_path.write_text(str(os.getpid()))
        with pytest.raises(WarehouseLockedError):
            storage.acquire_lock()

    def test_unreadable_lock_broken(self, tmp_path):
        storage = self._storage(tmp_path)
        storage.lock_path.write_text("not a pid at all")
        storage.acquire_lock()
        storage.release_lock()


class TestCommitPipeline:
    def _insert_tx(self, label="N", confidence=1.0):
        return UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree(label))], confidence
        )

    def test_policy_validation(self):
        from repro.warehouse import CommitPolicy

        with pytest.raises(WarehouseError):
            CommitPolicy(snapshot_every=0)
        with pytest.raises(WarehouseError):
            CommitPolicy(wal_bytes_limit=0)
        assert CommitPolicy(snapshot_every=1).full_rewrite

    def test_updates_go_to_wal_not_snapshot(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        path = tmp_path / "wh"
        with Warehouse.create(
            path, slide12_doc, policy=CommitPolicy(snapshot_every=100)
        ) as wh:
            snapshot_bytes = (path / "document.xml").read_bytes()
            wh._commit_update(self._insert_tx())
            assert (path / "document.xml").read_bytes() == snapshot_bytes
            stats = wh.stats()
            assert stats["wal_depth"] == 1
            assert stats["wal_bytes"] > 0
            assert stats["snapshot_sequence"] == 1
            assert wh.sequence == 2

    def test_snapshot_every_triggers_compaction(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        with Warehouse.create(
            tmp_path / "wh", slide12_doc, policy=CommitPolicy(snapshot_every=3)
        ) as wh:
            wh._commit_update(self._insert_tx())
            wh._commit_update(self._insert_tx())
            assert wh.stats()["wal_depth"] == 2
            wh._commit_update(self._insert_tx())  # third commit folds the WAL
            stats = wh.stats()
            assert stats["wal_depth"] == 0
            assert stats["snapshot_sequence"] == wh.sequence

    def test_wal_bytes_limit_triggers_compaction(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        with Warehouse.create(
            tmp_path / "wh",
            slide12_doc,
            policy=CommitPolicy(snapshot_every=1000, wal_bytes_limit=64),
        ) as wh:
            wh._commit_update(self._insert_tx())  # record alone exceeds 64 bytes
            assert wh.stats()["wal_depth"] == 0

    def test_close_compacts_by_default(self, tmp_path, slide12_doc):
        from repro.warehouse import WriteAheadLog

        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc)
        wh._commit_update(self._insert_tx())
        assert wh.stats()["wal_depth"] == 1
        wh.close()
        assert WriteAheadLog(path).size_bytes() == 0
        with Warehouse.open(path) as reopened:
            assert reopened.sequence == 2
            assert reopened.document.size() == 5

    def test_reopen_replays_without_close_compaction(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        path = tmp_path / "wh"
        policy = CommitPolicy(snapshot_every=100, compact_on_close=False)
        with Warehouse.create(path, slide12_doc, policy=policy) as wh:
            wh._commit_update(self._insert_tx(confidence=0.5))
            expected = wh.document.root.canonical()
            events = wh.document.events.as_dict()
        with Warehouse.open(path) as reopened:
            assert reopened.stats()["wal_depth"] == 1
            assert reopened.document.root.canonical() == expected
            assert reopened.document.events.as_dict() == events

    def test_full_rewrite_policy_snapshots_every_commit(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        path = tmp_path / "wh"
        with Warehouse.create(
            path, slide12_doc, policy=CommitPolicy(snapshot_every=1)
        ) as wh:
            wh._commit_update(self._insert_tx())
            assert wh.stats()["wal_depth"] == 0
            assert wh.stats()["snapshot_sequence"] == wh.sequence
            assert (path / "wal.jsonl").read_bytes() == b""

    def test_simplify_compacts(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        with Warehouse.create(
            tmp_path / "wh", slide12_doc, policy=CommitPolicy(snapshot_every=100)
        ) as wh:
            wh._commit_update(self._insert_tx())
            wh.simplify()
            assert wh.stats()["wal_depth"] == 0
            assert wh.stats()["snapshot_sequence"] == wh.sequence

    def test_compact_command(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        with Warehouse.create(
            tmp_path / "wh", slide12_doc, policy=CommitPolicy(snapshot_every=100)
        ) as wh:
            wh._commit_update(self._insert_tx())
            wh._commit_update(self._insert_tx())
            summary = wh.compact()
            assert summary["folded_records"] == 2
            assert wh.stats()["wal_depth"] == 0

    def test_fresh_counter_persisted_in_meta(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with Warehouse.create(path, slide12_doc) as wh:
            wh._commit_update(self._insert_tx(confidence=0.5))  # mints an event
            counter = wh.document.events.fresh_counter
            assert counter >= 1
        meta = json.loads((path / "meta.json").read_text())
        assert meta["fresh_counter"] == counter
        with Warehouse.open(path) as reopened:
            assert reopened.document.events.fresh_counter == counter


class TestBatchedUpdates:
    def _insert_tx(self, label="N", confidence=1.0):
        return UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree(label))], confidence
        )

    def test_update_many_is_one_commit(self, warehouse):
        reports = warehouse.update_many(
            [self._insert_tx(), self._insert_tx("M"), self._insert_tx("O")]
        )
        assert [r.applied for r in reports] == [True, True, True]
        assert warehouse.sequence == 2  # one commit for the whole batch
        assert warehouse.stats()["wal_depth"] == 1
        entry = warehouse.history()[-1]
        assert entry["kind"] == "batch"
        assert entry["transactions"] == 3
        assert len(entry["reports"]) == 3

    def test_update_many_empty_is_noop(self, warehouse):
        assert warehouse.update_many([]) == []
        assert warehouse.sequence == 1

    def test_update_many_accepts_strings_and_confidence(self, warehouse):
        text = (
            '<xu:modifications xmlns:xu="urn:repro:xupdate" '
            'query="C[$c]" confidence="1.0">'
            "<xu:insert anchor='c'><N/></xu:insert>"
            "</xu:modifications>"
        )
        reports = warehouse.update_many([text], confidence=0.25)
        assert reports[0].confidence_event is not None
        assert warehouse.document.events.probability(
            reports[0].confidence_event
        ) == pytest.approx(0.25)

    def test_later_member_sees_earlier_insertion(self, warehouse):
        first = self._insert_tx("Fresh")
        second = UpdateTransaction(
            parse_pattern("Fresh[$f]"), [InsertOperation("f", tree("Nested"))], 1.0
        )
        reports = warehouse.update_many([first, second])
        assert reports[1].applied  # Fresh existed by the time it ran
        assert len(warehouse._query_answers("//Nested")) == 1

    def test_begin_batch_context_manager(self, warehouse):
        with warehouse.begin_batch() as batch:
            batch.update(self._insert_tx())
            batch.update(self._insert_tx("M"), confidence=0.5)
            assert len(batch) == 2
            assert warehouse.sequence == 1  # nothing committed yet
        assert warehouse.sequence == 2
        assert len(batch.reports) == 2
        assert batch.reports[1].confidence_event is not None

    def test_begin_batch_aborts_on_exception(self, warehouse):
        with pytest.raises(RuntimeError):
            with warehouse.begin_batch() as batch:
                batch.update(self._insert_tx())
                raise RuntimeError("boom")
        assert warehouse.sequence == 1
        assert batch.reports is None

    def test_provenance_through_batch(self, warehouse):
        reports = warehouse.update_many([self._insert_tx(confidence=0.5)])
        event = reports[0].confidence_event
        origin = warehouse.provenance(event)
        assert origin is not None
        assert origin["kind"] == "batch"
        assert origin["confidence_event"] == event

    def test_batch_survives_reopen(self, tmp_path, slide12_doc):
        from repro.warehouse import CommitPolicy

        path = tmp_path / "wh"
        policy = CommitPolicy(snapshot_every=100, compact_on_close=False)
        with Warehouse.create(path, slide12_doc, policy=policy) as wh:
            wh.update_many(
                [self._insert_tx(confidence=0.5), self._insert_tx("M")]
            )
            expected = wh.document.root.canonical()
        with Warehouse.open(path) as reopened:
            assert reopened.document.root.canonical() == expected
