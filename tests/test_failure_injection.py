"""Failure-injection tests: crash debris, partial writes, lock leaks.

The warehouse claims atomic commits and safe recovery; these tests
simulate the failure modes those claims are about.
"""

import os

import pytest

from repro.errors import WarehouseCorruptError, WarehouseError, XMLFormatError
from repro import InsertOperation, UpdateTransaction
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.warehouse import Storage, Warehouse


class TestCrashDebris:
    def test_leftover_tmp_file_is_ignored(self, tmp_path, slide12_doc):
        """A crash between tmp-write and rename leaves a .tmp file; the
        committed document must still load."""
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        debris = path / "document.xml.tmp"
        debris.write_text("<p:document>half-writ")
        with Warehouse.open(path) as wh:
            assert wh.document.size() == 4

    def test_commit_overwrites_debris(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with Warehouse.create(path, slide12_doc) as wh:
            (path / "document.xml.tmp").write_text("junk")
            tx = UpdateTransaction(
                parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
            )
            wh._commit_update(tx)
        with Warehouse.open(path) as wh:
            assert wh.document.size() == 5

    def test_truncated_document_healed_by_binary_snapshot(self, tmp_path, slide12_doc):
        """The binary snapshot is a peer image: a damaged XML alone heals."""
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        full = (path / "document.xml").read_bytes()
        (path / "document.xml").write_bytes(full[: len(full) // 2])
        with Warehouse.open(path) as wh:
            assert wh.document.size() == slide12_doc.size()

    def test_truncated_document_detected(self, tmp_path, slide12_doc):
        """Both snapshot images damaged: corruption, not recovery."""
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        for name in ("document.xml", "document.bin"):
            full = (path / name).read_bytes()
            (path / name).write_bytes(full[: len(full) // 2])
        with pytest.raises(WarehouseCorruptError, match="checksum"):
            Warehouse.open(path)

    def test_garbage_document_with_fixed_meta_detected(self, tmp_path, slide12_doc):
        """Even if an attacker fixes the checksum, the parser validates."""
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        storage = Storage(path)
        storage.write_document("<p:document>not a document", sequence=99)
        with pytest.raises((XMLFormatError, WarehouseError)):
            Warehouse.open(path)


class TestLockHygiene:
    def test_lock_released_after_failed_open(self, tmp_path, slide12_doc):
        """A failed open (corrupt store) must not leak the lock."""
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        (path / "meta.json").unlink()
        with pytest.raises(WarehouseCorruptError):
            Warehouse.open(path)
        assert not (path / "lock").exists()

    def test_lock_released_after_failed_create(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        with pytest.raises(WarehouseError, match="already exists"):
            Warehouse.create(path, slide12_doc)
        # The failed create must not have stolen the lock.
        Warehouse.open(path).close()

    def test_double_close_is_safe(self, tmp_path, slide12_doc):
        wh = Warehouse.create(tmp_path / "wh", slide12_doc)
        wh.close()
        wh.close()  # no raise

    def test_context_manager_releases_on_exception(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with pytest.raises(RuntimeError):
            with Warehouse.create(path, slide12_doc):
                raise RuntimeError("boom")
        Warehouse.open(path).close()  # lock was released


class TestLogResilience:
    def test_blank_lines_tolerated(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with Warehouse.create(path, slide12_doc) as wh:
            with open(path / "log.jsonl", "a") as handle:
                handle.write("\n\n")
            assert len(wh.history()) == 1

    def test_unwritable_directory_fails_loudly(self, tmp_path, slide12_doc):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        path = tmp_path / "wh"
        Warehouse.create(path, slide12_doc).close()
        os.chmod(path, 0o500)
        try:
            with pytest.raises(OSError):
                with Warehouse.open(path) as wh:
                    tx = UpdateTransaction(
                        parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
                    )
                    wh._commit_update(tx)
        finally:
            os.chmod(path, 0o700)
