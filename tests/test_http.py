"""Tests for the HTTP front end (repro.serve.http): app + asyncio server."""

from __future__ import annotations

import http.client
import json
import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import QueryCancelledError, ReproError
from repro.serve.http import (
    Application,
    BadRequest,
    ServerThread,
    canonical_json,
    encode_estimate_row,
    encode_row,
    error_body,
    estimate_response_body,
    query_response_body,
    status_for,
)
from repro.serve.http import app as app_module

XU_TEMPLATE = (
    '<xu:modifications xmlns:xu="urn:repro:xupdate" '
    'query="/person[$p]" confidence="{confidence}">'
    '<xu:insert anchor="p"><email>{value}</email></xu:insert>'
    "</xu:modifications>"
)


def _insert_email_xml(value: str, confidence: float = 0.9) -> str:
    return XU_TEMPLATE.format(value=value, confidence=confidence)


def _request(port, method, path, payload=None, conn=None, headers=None):
    """One HTTP exchange; returns (status, headers dict, body bytes)."""
    own = conn is None
    if own:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    body = None
    send_headers = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        send_headers.setdefault("Content-Type", "application/json")
    conn.request(method, path, body, send_headers)
    response = conn.getresponse()
    data = response.read()
    result = (response.status, dict(response.getheaders()), data)
    if own:
        conn.close()
    return result


@pytest.fixture(scope="module")
def served_session(tmp_path_factory):
    """One warehouse session shared by the server and direct queries.

    Shared on purpose: the warehouse writer lock means a second
    ``connect`` would fail, and the byte-identity property needs both
    paths to read the same generation.
    """
    path = tmp_path_factory.mktemp("http") / "wh"
    with repro.connect(path, create=True, root="person") as session:
        for i in range(6):
            session.update(
                repro.update(
                    repro.pattern("person", variable="p", anchored=True)
                ).insert("p", repro.tree("email", f"user{i}@example.org")),
                confidence=0.35 + 0.1 * i,
            )
        with ServerThread(session) as handle:
            yield session, handle


@pytest.fixture(scope="module")
def served_collection(tmp_path_factory):
    path = tmp_path_factory.mktemp("http_coll") / "coll"
    with repro.connect_collection(path, create=True, workers=4) as collection:
        rng = random.Random(7)
        for key in ("alice", "bob", "carol"):
            collection.create_document(key, root="person")
            for i in range(rng.randint(2, 5)):
                collection.update(
                    key,
                    repro.update(
                        repro.pattern("person", variable="p", anchored=True)
                    ).insert("p", repro.tree("email", f"{key}{i}@x")),
                    confidence=round(rng.uniform(0.2, 0.95), 3),
                )
        with ServerThread(collection) as handle:
            yield collection, handle


PATTERNS = (
    "//email",
    "//person",
    "/person { email }",
    "/person { email[$e] }",
    "*",
    "//person { email[$e] }",
)


class TestQueryByteIdentity:
    """HTTP /query with limit=n is byte-identical to the in-process rows."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_session_rows_roundtrip(self, served_session, seed):
        session, handle = served_session
        rng = random.Random(seed)
        pattern = rng.choice(PATTERNS)
        limit = rng.randint(0, 8)
        status, _, body = _request(
            handle.port, "POST", "/query", {"pattern": pattern, "limit": limit}
        )
        assert status == 200
        with session.query(pattern).limit(limit).stream() as stream:
            expected = query_response_body([encode_row(row) for row in stream])
        assert body == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_collection_rows_roundtrip(self, served_collection, seed):
        collection, handle = served_collection
        rng = random.Random(seed)
        pattern = rng.choice(PATTERNS)
        limit = rng.randint(0, 8)
        document = rng.choice((None, "alice", "bob", "carol"))
        payload = {"pattern": pattern, "limit": limit}
        if document is not None:
            payload["document"] = document
        status, _, body = _request(handle.port, "POST", "/query", payload)
        assert status == 200
        keys = None if document is None else [document]
        results = collection.query(pattern, keys=keys).limit(limit)
        rows = [encode_row(row) for row in results]
        assert body == query_response_body(rows)

    def test_rows_carry_document_keys(self, served_collection):
        _, handle = served_collection
        status, _, body = _request(
            handle.port, "POST", "/query", {"pattern": "//email", "limit": 3}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 3
        assert all(r["document"] == "alice" for r in payload["rows"])

    def test_canonical_json_is_deterministic(self):
        a = canonical_json({"b": 1.5, "a": [{"y": 2, "x": 1}]})
        b = canonical_json({"a": [{"x": 1, "y": 2}], "b": 1.5})
        assert a == b == b'{"a":[{"x":1,"y":2}],"b":1.5}'

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_session_topk_roundtrip(self, served_session, seed):
        """Probability-ordered HTTP rows == in-process bounded rows."""
        session, handle = served_session
        rng = random.Random(seed)
        pattern = rng.choice(PATTERNS)
        k = rng.randint(1, 5)
        floor = rng.choice((None, 0.4, 0.6))
        payload = {"pattern": pattern, "limit": k, "order_by": "probability"}
        results = session.query(pattern).order_by_probability().limit(k)
        if floor is not None:
            payload["min_probability"] = floor
            results = results.min_probability(floor)
        status, _, body = _request(handle.port, "POST", "/query", payload)
        assert status == 200
        with results.stream() as stream:
            expected = query_response_body([encode_row(row) for row in stream])
        assert body == expected

    def test_session_estimate_roundtrip(self, served_session):
        """HTTP anytime estimates == in-process estimates, byte for byte."""
        session, handle = served_session
        status, _, body = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "epsilon": 0.05},
        )
        assert status == 200
        expected = estimate_response_body(
            [
                encode_estimate_row(e)
                for e in session.query("//email").estimate(epsilon=0.05)
            ]
        )
        assert body == expected
        payload = json.loads(body)
        assert payload["estimate"] is True
        assert all("stderr" in row for row in payload["rows"])

    def test_collection_estimate_roundtrip(self, served_collection):
        collection, handle = served_collection
        status, _, body = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "epsilon": 0.05},
        )
        assert status == 200
        expected = estimate_response_body(
            [
                encode_estimate_row(e, document=key)
                for key, e in collection.query("//email").estimate(
                    epsilon=0.05
                )
            ]
        )
        assert body == expected


class TestUpdateAndStats:
    def test_update_and_stats_roundtrip(self, tmp_path):
        path = tmp_path / "wh"
        repro.connect(path, create=True, root="person").close()
        with ServerThread(path) as handle:
            status, _, body = _request(
                handle.port,
                "POST",
                "/update",
                {"xupdate": _insert_email_xml("a@x"), "confidence": 0.8},
            )
            assert status == 200
            report = json.loads(body)
            assert report["batch"] is False
            assert report["report"]["applied"] is True
            status, _, body = _request(handle.port, "GET", "/stats")
            assert status == 200
            assert json.loads(body)["nodes"] == 2
        # The drain snapshot-closed the warehouse: the commit survives.
        with repro.connect(path) as session:
            assert session.query("//email").limit(1).all()

    def test_collection_update_routes_by_document(self, tmp_path):
        path = tmp_path / "coll"
        with repro.connect_collection(path, create=True) as collection:
            collection.create_document("d1", root="person")
            with ServerThread(collection) as handle:
                status, _, _ = _request(
                    handle.port,
                    "POST",
                    "/update",
                    {"xupdate": _insert_email_xml("d@x"), "document": "d1"},
                )
                assert status == 200
                # No document key on a collection: routing is ambiguous.
                status, _, body = _request(
                    handle.port,
                    "POST",
                    "/update",
                    {"xupdate": _insert_email_xml("d@x")},
                )
                assert status == 400
                assert json.loads(body)["error"]["family"] == "BadRequest"
            assert collection.query("//email", keys=["d1"]).limit(1).all()


class TestErrorMapping:
    def test_status_for_families(self):
        from repro.errors import (
            PatternSyntaxError,
            SessionClosedError,
            WarehouseCorruptError,
            WarehouseError,
            WarehouseLockedError,
        )

        assert status_for(QueryCancelledError("x")) == 504
        assert status_for(SessionClosedError("x")) == 503
        assert status_for(WarehouseLockedError("x")) == 423
        assert status_for(WarehouseCorruptError("x")) == 500
        assert status_for(PatternSyntaxError("x")) == 400
        assert status_for(WarehouseError("x")) == 500
        assert status_for(ReproError("x")) == 400
        assert status_for(ValueError("x")) == 500

    def test_error_body_carries_cli_exit_code(self):
        from repro.errors import PatternSyntaxError

        status, payload = error_body(PatternSyntaxError("bad"))
        assert status == 400
        assert payload["error"]["exit_code"] == 3
        assert payload["error"]["family"] == "PatternSyntaxError"
        status, payload = error_body(ValueError("boom"))
        assert status == 500
        assert payload["error"]["exit_code"] is None

    def test_wire_errors(self, served_session):
        _, handle = served_session
        # Pattern syntax error -> 400 with the CLI's exit code 3.
        status, _, body = _request(
            handle.port, "POST", "/query", {"pattern": "//person {{{"}
        )
        assert status == 400
        error = json.loads(body)["error"]
        assert error["family"] == "PatternSyntaxError"
        assert error["exit_code"] == 3
        # Malformed JSON -> 400.
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        conn.request(
            "POST", "/query", b"{not json", {"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        assert response.status == 400
        response.read()
        conn.close()
        # Missing required field -> 400.
        status, _, _ = _request(handle.port, "POST", "/query", {})
        assert status == 400
        # Wrong field type (bool is not an int) -> 400.
        status, _, _ = _request(
            handle.port, "POST", "/query", {"pattern": "//email", "limit": True}
        )
        assert status == 400
        # 'document' is collection-only -> 400.
        status, _, _ = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "document": "nope"},
        )
        assert status == 400
        # Unknown route -> 404; known route, wrong method -> 405 + Allow.
        status, _, _ = _request(handle.port, "GET", "/nope")
        assert status == 404
        status, headers, _ = _request(handle.port, "GET", "/query")
        assert status == 405
        assert headers.get("Allow") == "POST"

    def test_unknown_collection_document_is_400(self, served_collection):
        _, handle = served_collection
        status, _, body = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "document": "mallory"},
        )
        assert status == 400
        assert "mallory" in json.loads(body)["error"]["message"]


class TestObservabilityEndpoints:
    def test_healthz(self, served_session):
        _, handle = served_session
        status, _, body = _request(handle.port, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        (shard,) = payload["shards"].values()
        assert shard["alive"] is True
        assert shard["respawns"] == 0
        assert isinstance(shard["wal_depth"], int)

    def test_prometheus_exposition_is_valid(self, served_session):
        session, handle = served_session
        _request(handle.port, "POST", "/query", {"pattern": "//email"})
        status, headers, body = _request(handle.port, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
            r"[-+]?(\d+\.?\d*([eE][-+]?\d+)?|inf|nan)$"
        )
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), f"invalid exposition line: {line!r}"
        # The new server families are present and moving.
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket{le="+Inf"}' in text
        counters = {
            line.split(" ")[0]: float(line.split(" ")[1])
            for line in text.splitlines()
            if line and not line.startswith("#") and "{" not in line
        }
        assert counters["repro_http_requests_total"] >= 1
        assert counters["repro_http_connections_total"] >= 1

    def test_metrics_json_shape(self, served_session):
        _, handle = served_session
        status, headers, body = _request(handle.port, "GET", "/metrics.json")
        assert status == 200
        payload = json.loads(body)
        assert "counters" in payload and "histograms" in payload
        assert "http.request_seconds" in payload["histograms"]
        assert "slow_queries" in payload and "traces" in payload


class _StallingEncoder:
    """A monkeypatched encode_row that parks the worker thread.

    ``started`` fires when the worker reaches the first row (the request
    is provably mid-stream); the worker then waits for ``release``.
    """

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, row):
        self.started.set()
        assert self.release.wait(30), "stalled row was never released"
        return self.inner(row)


def _async_request(port, method, path, payload):
    """Fire a request from a helper thread; returns a result-slot dict."""
    slot = {}

    def run():
        try:
            slot["result"] = _request(port, method, path, payload)
        except Exception as exc:  # pragma: no cover - surfaced by asserts
            slot["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    slot["thread"] = thread
    return slot


def _wait_until(predicate, timeout=10.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(message)


@pytest.fixture
def tiny_server(tmp_path, monkeypatch):
    """workers=1, queue_depth=0 server with a stallable row encoder."""
    path = tmp_path / "wh"
    with repro.connect(path, create=True, root="person") as session:
        for i in range(4):
            session.update(
                repro.update(
                    repro.pattern("person", variable="p", anchored=True)
                ).insert("p", repro.tree("email", f"u{i}@x")),
                confidence=0.5,
            )
        stall = _StallingEncoder(app_module.encode_row)
        monkeypatch.setattr(app_module, "encode_row", stall)
        with ServerThread(
            session, workers=1, queue_depth=0, default_deadline=30.0
        ) as handle:
            yield session, handle, stall
            stall.release.set()


class TestLoadShedding:
    def test_queue_full_sheds_with_retry_after(self, tiny_server):
        session, handle, stall = tiny_server
        first = _async_request(
            handle.port, "POST", "/query", {"pattern": "//email"}
        )
        assert stall.started.wait(10), "first request never reached a worker"
        # Capacity (workers=1 + queue_depth=0) is taken: shed.
        status, headers, body = _request(
            handle.port, "POST", "/query", {"pattern": "//email", "limit": 1}
        )
        assert status == 429
        assert headers.get("Retry-After") == "1"
        assert json.loads(body)["error"]["status"] == 429
        # Health and metrics bypass admission control while saturated.
        status, _, _ = _request(handle.port, "GET", "/healthz")
        assert status == 200
        status, _, _ = _request(handle.port, "GET", "/metrics")
        assert status == 200
        obs = session.observability
        assert obs.metrics.counter("http.shed_requests") >= 1
        # Releasing the stall lets the admitted request finish normally.
        stall.release.set()
        first["thread"].join(30)
        assert first["result"][0] == 200


class TestDeadlines:
    def test_expired_deadline_is_504_before_execution(self, served_session):
        session, handle = served_session
        obs = session.observability
        before = obs.metrics.counter("http.deadline_timeouts")
        status, _, body = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "timeout_ms": 0},
        )
        assert status == 504
        error = json.loads(body)["error"]
        assert error["family"] == "QueryCancelledError"
        assert obs.metrics.counter("http.deadline_timeouts") == before + 1

    def test_mid_stream_deadline_cancels_and_releases_pins(self, tiny_server):
        session, handle, stall = tiny_server
        slot = _async_request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "timeout_ms": 150},
        )
        assert stall.started.wait(10)
        # Hold the worker past the deadline, then let it hit the next
        # row boundary, where the abort hook fires.
        time.sleep(0.3)
        stall.release.set()
        slot["thread"].join(30)
        status, _, body = slot["result"]
        assert status == 504
        assert json.loads(body)["error"]["family"] == "QueryCancelledError"
        # The abandoned stream released its iteration pin.
        _wait_until(
            lambda: session.stats()["read_sessions"] == 0,
            message="iteration pin was not released after the 504",
        )

    def test_bad_timeout_ms_is_400(self, served_session):
        _, handle = served_session
        for bad in (-1, "fast", True):
            status, _, _ = _request(
                handle.port,
                "POST",
                "/query",
                {"pattern": "//email", "timeout_ms": bad},
            )
            assert status == 400


class TestKeepAliveAndDrain:
    def test_keep_alive_reuses_one_connection(self, served_session):
        _, handle = served_session
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        try:
            for _ in range(3):
                status, _, _ = _request(
                    handle.port,
                    "POST",
                    "/query",
                    {"pattern": "//email", "limit": 1},
                    conn=conn,
                )
                assert status == 200
        finally:
            conn.close()

    def test_connection_close_is_honoured(self, served_session):
        _, handle = served_session
        status, headers, _ = _request(
            handle.port,
            "POST",
            "/query",
            {"pattern": "//email", "limit": 1},
            headers={"Connection": "close"},
        )
        assert status == 200
        assert headers.get("Connection") == "close"

    def test_graceful_drain(self, tmp_path, monkeypatch):
        path = tmp_path / "wh"
        repro.connect(path, create=True, root="person").close()
        stall = None
        with ServerThread(path, workers=2, drain_grace=30.0) as handle:
            # Commit an update, then park an in-flight query.
            status, _, _ = _request(
                handle.port,
                "POST",
                "/update",
                {"xupdate": _insert_email_xml("survivor@x"), "confidence": 0.9},
            )
            assert status == 200
            stall = _StallingEncoder(app_module.encode_row)
            monkeypatch.setattr(app_module, "encode_row", stall)
            inflight = _async_request(
                handle.port, "POST", "/query", {"pattern": "//email"}
            )
            assert stall.started.wait(10)
            # A pre-drain keep-alive connection observes the drain.
            probe = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=30
            )
            status, _, _ = _request(handle.port, "GET", "/healthz", conn=probe)
            assert status == 200
            handle._loop.call_soon_threadsafe(handle.server.begin_drain)
            _wait_until(lambda: handle.server.draining)
            # New requests on the surviving connection are refused...
            status, _, body = _request(handle.port, "GET", "/healthz", conn=probe)
            assert status == 503
            assert json.loads(body) == {"status": "draining"}
            probe.close()
            # ...new connections are refused outright...
            with pytest.raises(OSError):
                _request(handle.port, "GET", "/healthz")
            # ...but the in-flight request still completes.
            stall.release.set()
            inflight["thread"].join(30)
            assert inflight["result"][0] == 200
            handle.stop()
            assert not handle._thread.is_alive()
        # The drain snapshot-closed the warehouse: reopen and find the
        # committed update.
        with repro.connect(path) as session:
            rows = session.query("//email").all()
            assert len(rows) == 1

    def test_stop_is_idempotent(self, tmp_path):
        path = tmp_path / "wh"
        repro.connect(path, create=True, root="person").close()
        handle = ServerThread(path).start()
        handle.stop()
        handle.stop()
        assert not handle._thread.is_alive()


class TestServerThreadLifecycle:
    def test_start_surfaces_open_errors(self, tmp_path):
        with pytest.raises(ReproError):
            ServerThread(tmp_path / "missing").start()

    def test_bad_config_is_rejected(self, tmp_path):
        path = tmp_path / "wh"
        repro.connect(path, create=True, root="person").close()
        with pytest.raises(ReproError):
            ServerThread(path, queue_depth=-1).start()


class TestApplicationDirect:
    """Worker-layer checks that need no socket."""

    def test_bad_request_is_a_repro_error(self):
        assert isinstance(BadRequest("x"), ReproError)

    def test_query_payload_validation(self, tmp_path):
        from repro.api import QueryOptionsError

        path = tmp_path / "wh"
        with repro.connect(path, create=True, root="person") as session:
            app = Application(session)
            with pytest.raises(QueryOptionsError):
                app.query({}, None, None)
            with pytest.raises(QueryOptionsError):
                app.query({"pattern": 7}, None, None)
            with pytest.raises(QueryOptionsError):
                app.query({"pattern": "//x", "limit": "many"}, None, None)
            # One aggregated 400: every invalid field reported at once.
            with pytest.raises(QueryOptionsError) as excinfo:
                app.query(
                    {"limit": "many", "order_by": "size", "epsilon": 2},
                    None,
                    None,
                )
            fields = {e["field"] for e in excinfo.value.errors}
            assert {"pattern", "limit", "order_by", "epsilon"} <= fields
            status, payload = error_body(excinfo.value)
            assert status == 400
            assert payload["error"]["fields"] == excinfo.value.errors
            body = app.query({"pattern": "//email"}, None, None)
            assert json.loads(body) == {"count": 0, "rows": []}

    def test_own_target_close(self, tmp_path):
        path = tmp_path / "wh"
        session = repro.connect(path, create=True, root="person")
        app = Application(session, own_target=True)
        app.close()
        with pytest.raises(ReproError):
            session.query("//x").all()
