"""Unit tests for Monte-Carlo query estimation (repro.core.montecarlo)."""

import random

import pytest

from repro import estimate_query
from repro.core.query import query_fuzzy_tree
from repro.tpwj.parser import parse_pattern


class TestEstimation:
    def test_deterministic_for_seed(self, slide12_doc):
        pattern = parse_pattern("//D")
        first = estimate_query(slide12_doc, pattern, samples=200, rng=random.Random(5))
        second = estimate_query(slide12_doc, pattern, samples=200, rng=random.Random(5))
        assert [(e.tree.canonical(), e.occurrences) for e in first] == [
            (e.tree.canonical(), e.occurrences) for e in second
        ]

    def test_estimates_close_to_exact(self, slide12_doc):
        pattern = parse_pattern("//D")
        exact = query_fuzzy_tree(slide12_doc, pattern)[0].probability
        estimates = estimate_query(
            slide12_doc, pattern, samples=4000, rng=random.Random(7)
        )
        assert len(estimates) == 1
        assert estimates[0].probability == pytest.approx(exact, abs=0.03)

    def test_stderr_formula(self, slide12_doc):
        estimates = estimate_query(
            slide12_doc, parse_pattern("//D"), samples=100, rng=random.Random(1)
        )
        estimate = estimates[0]
        p = estimate.probability
        assert estimate.stderr == pytest.approx((p * (1 - p) / 100) ** 0.5)
        assert estimate.samples == 100
        assert estimate.occurrences == round(p * 100)

    def test_certain_answer_always_observed(self, slide12_doc):
        estimates = estimate_query(
            slide12_doc, parse_pattern("/A { C }"), samples=50, rng=random.Random(2)
        )
        assert len(estimates) == 1
        assert estimates[0].probability == 1.0
        assert estimates[0].stderr == 0.0

    def test_impossible_answer_never_observed(self, slide12_doc):
        estimates = estimate_query(
            slide12_doc,
            parse_pattern("/A { B, //D }"),
            samples=200,
            rng=random.Random(3),
        )
        assert estimates == []

    def test_multiple_answers_sorted(self, slide12_doc):
        estimates = estimate_query(
            slide12_doc, parse_pattern("*"), samples=500, rng=random.Random(4)
        )
        probabilities = [e.probability for e in estimates]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_invalid_sample_count_rejected(self, slide12_doc):
        with pytest.raises(ValueError):
            estimate_query(slide12_doc, parse_pattern("B"), samples=0)

    def test_default_rng_is_seeded(self, slide12_doc):
        pattern = parse_pattern("B")
        first = estimate_query(slide12_doc, pattern, samples=100)
        second = estimate_query(slide12_doc, pattern, samples=100)
        assert [e.occurrences for e in first] == [e.occurrences for e in second]
