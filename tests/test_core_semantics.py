"""Unit tests for fuzzy-tree semantics and expressiveness
(repro.core.semantics) — the slide-12 theorem."""

import pytest

from repro.errors import ReproError
from repro import (
    Condition,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    PossibleWorlds,
    from_possible_worlds,
    to_possible_worlds,
)
from repro.trees import tree


class TestToPossibleWorlds:
    def test_slide12_worlds_exact(self, slide12_doc):
        worlds = to_possible_worlds(slide12_doc)
        assert len(worlds) == 3
        assert worlds.probability_of(tree("A", tree("C"))) == pytest.approx(0.06)
        assert worlds.probability_of(
            tree("A", tree("C", tree("D")))
        ) == pytest.approx(0.70)
        assert worlds.probability_of(
            tree("A", tree("B"), tree("C"))
        ) == pytest.approx(0.24)
        worlds.check_distribution()

    def test_certain_document_has_one_world(self):
        doc = FuzzyTree(FuzzyNode("A", children=[FuzzyNode("B")]), EventTable())
        worlds = to_possible_worlds(doc)
        assert len(worlds) == 1
        assert worlds.worlds[0].probability == pytest.approx(1.0)

    def test_unused_events_do_not_multiply_worlds(self):
        events = EventTable({"w1": 0.5, "unused": 0.5})
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w1"))]),
            events,
        )
        assert len(to_possible_worlds(doc)) == 2

    def test_event_with_probability_one(self):
        events = EventTable({"sure": 1.0})
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("sure"))]),
            events,
        )
        worlds = to_possible_worlds(doc)
        assert len(worlds) == 1
        assert worlds.probability_of(tree("A", tree("B"))) == pytest.approx(1.0)

    def test_enumeration_guard(self):
        events = EventTable({f"e{i}": 0.5 for i in range(30)})
        root = FuzzyNode("A")
        for i in range(30):
            root.add_child(FuzzyNode("B", condition=Condition.of(f"e{i}")))
        doc = FuzzyTree(root, events)
        with pytest.raises(ReproError, match="refusing to enumerate"):
            to_possible_worlds(doc)


class TestFromPossibleWorlds:
    def test_roundtrip_two_worlds(self):
        worlds = PossibleWorlds(
            [(tree("A", tree("B")), 0.3), (tree("A", tree("C")), 0.7)]
        )
        fuzzy = from_possible_worlds(worlds)
        assert to_possible_worlds(fuzzy).same_distribution(worlds)

    def test_roundtrip_slide12(self, slide12_doc):
        worlds = to_possible_worlds(slide12_doc)
        rebuilt = from_possible_worlds(worlds)
        assert to_possible_worlds(rebuilt).same_distribution(worlds)

    def test_single_world(self):
        worlds = PossibleWorlds([(tree("A", tree("B")), 1.0)])
        fuzzy = from_possible_worlds(worlds)
        assert len(fuzzy.events) == 0  # last world needs no selector event
        assert to_possible_worlds(fuzzy).same_distribution(worlds)

    def test_world_count_preserved(self):
        worlds = PossibleWorlds(
            [
                (tree("A", tree("B")), 0.2),
                (tree("A", tree("C")), 0.3),
                (tree("A", tree("D")), 0.5),
            ]
        )
        fuzzy = from_possible_worlds(worlds)
        assert len(to_possible_worlds(fuzzy)) == 3

    def test_valued_roots_supported_when_equal(self):
        worlds = PossibleWorlds([(tree("A", "same"), 1.0)])
        fuzzy = from_possible_worlds(worlds)
        assert fuzzy.root.value == "same"

    def test_mismatched_roots_rejected(self):
        worlds = PossibleWorlds([(tree("A"), 0.5), (tree("B"), 0.5)])
        with pytest.raises(ReproError, match="share the root"):
            from_possible_worlds(worlds)

    def test_non_distribution_rejected(self):
        worlds = PossibleWorlds([(tree("A"), 0.4)])
        with pytest.raises(ReproError, match="sum to"):
            from_possible_worlds(worlds)

    def test_empty_rejected(self):
        with pytest.raises(ReproError, match="empty"):
            from_possible_worlds(PossibleWorlds([]))

    def test_selector_prefix(self):
        worlds = PossibleWorlds([(tree("A", tree("B")), 0.5), (tree("A"), 0.5)])
        fuzzy = from_possible_worlds(worlds, prefix="sel")
        assert all(name.startswith("sel") for name in fuzzy.events.names())

    @pytest.mark.parametrize("seed", range(5))
    def test_random_roundtrips(self, seed):
        """Expressiveness on random world sets sharing a root label."""
        import random

        rng = random.Random(seed)
        count = rng.randint(2, 6)
        raw = [rng.random() for _ in range(count)]
        total = sum(raw)
        worlds = []
        from repro.trees import RandomTreeConfig, random_tree

        for p in raw:
            subtree = random_tree(rng, RandomTreeConfig(max_nodes=6))
            worlds.append((tree("root", subtree), p / total))
        world_set = PossibleWorlds(worlds)
        # Normalization may merge duplicates; renormalise expectations.
        fuzzy = from_possible_worlds(world_set)
        assert to_possible_worlds(fuzzy).same_distribution(world_set, 1e-9)
