"""Unit tests for the TPWJ matcher (repro.tpwj.match)."""

import itertools

import pytest

from repro.tpwj import MatchConfig, find_matches, parse_pattern
from repro.trees import tree


@pytest.fixture
def doc():
    return tree(
        "A",
        tree("B", "foo"),
        tree("B", "bar"),
        tree("E", tree("C", "foo")),
        tree("D", tree("F", tree("C", "nee"))),
    )


def match_count(pattern_text, root, **config_kwargs):
    config = MatchConfig(**config_kwargs) if config_kwargs else MatchConfig()
    return len(find_matches(parse_pattern(pattern_text), root, config))


class TestLabelsAndValues:
    def test_label_match(self, doc):
        assert match_count("B", doc) == 2

    def test_no_match(self, doc):
        assert match_count("Z", doc) == 0

    def test_wildcard_matches_everything(self, doc):
        assert match_count("*", doc) == doc.size()

    def test_value_test(self, doc):
        assert match_count('B[="foo"]', doc) == 1
        assert match_count('B[="quux"]', doc) == 0

    def test_value_test_with_wildcard_label(self, doc):
        assert match_count('*[="foo"]', doc) == 2  # B and C leaves


class TestAxes:
    def test_child_edge(self, doc):
        assert match_count("A { B }", doc) == 2
        assert match_count("A { C }", doc) == 0  # C is not a direct child

    def test_descendant_edge(self, doc):
        assert match_count("A { //C }", doc) == 2

    def test_descendant_is_proper(self, doc):
        # E//E would require a *proper* descendant labelled E.
        assert match_count("E { //E }", doc) == 0

    def test_nested_chain(self, doc):
        assert match_count("D { F { C } }", doc) == 1

    def test_sibling_requirements(self, doc):
        assert match_count("A { B, E }", doc) == 2  # two choices of B

    def test_homomorphism_two_pattern_children_one_data_node(self):
        # Both pattern B's may map to the same data B (homomorphic).
        doc = tree("A", tree("B"))
        assert match_count("A { B, B }", doc) == 1


class TestAnchoring:
    def test_unanchored_matches_anywhere(self, doc):
        assert match_count("C", doc) == 2

    def test_anchored_at_root_only(self, doc):
        assert match_count("/A", doc) == 1
        assert match_count("/C", doc) == 0

    def test_anchored_subtree(self, doc):
        assert match_count("/A { D { F } }", doc) == 1


class TestJoins:
    def test_join_requires_equal_values(self, doc):
        # B[foo] joins with C[foo], not with C[nee].
        assert match_count("A { B[$x], //C[$x] }", doc) == 1

    def test_join_never_binds_valueless_nodes(self):
        doc = tree("A", tree("B"), tree("C"))
        assert match_count("A { B[$x], C[$x] }", doc) == 0

    def test_single_use_variable_is_not_a_join(self, doc):
        # $x used once: no value constraint, binds the E node too.
        assert match_count("E[$x]", doc) == 1

    def test_three_way_join(self):
        doc = tree("R", tree("X", "v"), tree("Y", "v"), tree("Z", "v"))
        assert match_count("R { X[$a], Y[$a], Z[$a] }", doc) == 1
        doc2 = tree("R", tree("X", "v"), tree("Y", "v"), tree("Z", "w"))
        assert match_count("R { X[$a], Y[$a], Z[$a] }", doc2) == 0


class TestMatchObject:
    def test_mapping_and_node_for(self, doc):
        pattern = parse_pattern("A { B[$b] }")
        matches = find_matches(pattern, doc)
        values = {m.node_for("b").value for m in matches}
        assert values == {"foo", "bar"}

    def test_bindings(self, doc):
        pattern = parse_pattern("A { B[$b] }")
        match = find_matches(pattern, doc)[0]
        assert match.bindings() == {"b": match.node_for("b").value}

    def test_nodes_deduplicates(self, doc):
        pattern = parse_pattern("A { B }")
        match = find_matches(pattern, doc)[0]
        assert len(match.nodes()) == 2

    def test_getitem(self, doc):
        pattern = parse_pattern("A { B }")
        match = find_matches(pattern, doc)[0]
        assert match[pattern.root] is doc


class TestConfigAblation:
    @pytest.mark.parametrize(
        "index,semijoin,early",
        list(itertools.product([True, False], repeat=3)),
    )
    def test_all_toggles_agree(self, doc, index, semijoin, early):
        """Optimizations must never change the result set."""
        config = MatchConfig(
            use_label_index=index,
            use_semijoin_pruning=semijoin,
            early_join_check=early,
        )
        pattern = parse_pattern("A { B[$x], //C[$x], E }")
        baseline = find_matches(pattern, doc)
        matches = find_matches(pattern, doc, config)
        assert len(matches) == len(baseline)

    def test_max_matches_limits(self, doc):
        pattern = parse_pattern("*")
        config = MatchConfig(max_matches=3)
        assert len(find_matches(pattern, doc, config)) == 3

    def test_deterministic_order(self, doc):
        pattern = parse_pattern("A { B[$b] }")
        first = [m.node_for("b").value for m in find_matches(pattern, doc)]
        second = [m.node_for("b").value for m in find_matches(pattern, doc)]
        assert first == second


class TestStructuralFilters:
    def test_pattern_with_children_needs_internal_node(self):
        doc = tree("A", tree("B", "leafvalue"))
        # B has a value (leaf): pattern B { X } cannot match it.
        assert match_count("B { X }", doc) == 0

    def test_deep_descendant(self):
        doc = tree("A", tree("B", tree("C", tree("D", tree("E")))))
        assert match_count("A { //E }", doc) == 1
        assert match_count("B { //D }", doc) == 1
