"""Unit tests for fuzzy trees (repro.core.fuzzy_tree)."""

import pytest

from repro.errors import ReproError, TreeError, UnknownEventError
from repro import Condition, EventTable, FuzzyNode, FuzzyTree
from repro.trees import Node, tree


class TestFuzzyNode:
    def test_default_condition_is_true(self):
        assert FuzzyNode("A").condition.is_true

    def test_condition_type_checked(self):
        with pytest.raises(TreeError):
            FuzzyNode("A", condition="w1")  # type: ignore[arg-type]
        node = FuzzyNode("A")
        with pytest.raises(TreeError):
            node.condition = "w1"  # type: ignore[assignment]

    def test_clone_preserves_conditions(self):
        node = FuzzyNode(
            "A", children=[FuzzyNode("B", condition=Condition.of("w1"))]
        )
        copy = node.clone()
        assert isinstance(copy, FuzzyNode)
        assert copy.children[0].condition == Condition.of("w1")

    def test_canonical_includes_condition(self):
        plain = FuzzyNode("A")
        conditioned = FuzzyNode("A", condition=Condition.of("w1"))
        # Note: conditioned roots are invalid *documents* but fine as nodes.
        assert plain.canonical() != conditioned.canonical()

    def test_canonical_condition_order_independent(self):
        first = FuzzyNode("A", condition=Condition.of("w1", "!w2"))
        second = FuzzyNode("A", condition=Condition.of("!w2", "w1"))
        assert first.canonical() == second.canonical()

    def test_from_plain(self):
        plain = tree("A", tree("B", "x"))
        fuzzy = FuzzyNode.from_plain(plain, condition=Condition.of("w1"))
        assert fuzzy.condition == Condition.of("w1")
        assert fuzzy.children[0].condition.is_true
        assert fuzzy.children[0].value == "x"

    def test_path_condition(self):
        child = FuzzyNode("C", condition=Condition.of("w2"))
        FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w1"), children=[child])])
        assert child.path_condition() == Condition.of("w1", "w2")

    def test_path_condition_or_none_detects_conflict(self):
        child = FuzzyNode("C", condition=Condition.of("!w1"))
        FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w1"), children=[child])])
        assert child.path_condition_or_none() is None

    def test_pretty_shows_conditions(self):
        node = FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w1"))])
        assert "¬" not in node.pretty()
        assert "[w1]" in node.pretty()


class TestFuzzyTree:
    def test_valid_document(self, slide12_doc):
        assert slide12_doc.size() == 4
        assert slide12_doc.used_events() == {"w1", "w2"}

    def test_root_condition_must_be_true(self):
        root = FuzzyNode("A", condition=Condition.of("w1"))
        with pytest.raises(ReproError, match="root"):
            FuzzyTree(root, EventTable({"w1": 0.5}))

    def test_conditions_must_reference_declared_events(self):
        root = FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w9"))])
        with pytest.raises(UnknownEventError):
            FuzzyTree(root, EventTable())

    def test_plain_nodes_rejected(self):
        root = FuzzyNode("A")
        root.add_child(Node("B"))
        with pytest.raises(ReproError, match="plain node"):
            FuzzyTree(root, EventTable())

    def test_root_must_be_detached(self):
        parent = FuzzyNode("A")
        child = parent.add_child(FuzzyNode("B"))
        with pytest.raises(ReproError):
            FuzzyTree(child, EventTable())

    def test_condition_literal_count(self, slide12_doc):
        assert slide12_doc.condition_literal_count() == 3

    def test_clone_independent(self, slide12_doc):
        copy = slide12_doc.clone()
        copy.root.children[0].detach()
        copy.events.declare("extra", 0.5)
        assert slide12_doc.size() == 4
        assert "extra" not in slide12_doc.events


class TestWorldSelection:
    def test_world_keeps_satisfied_nodes(self, slide12_doc):
        world = slide12_doc.world({"w1": True, "w2": False})
        assert world.canonical() == "A(B,C)"

    def test_world_is_plain_tree(self, slide12_doc):
        world = slide12_doc.world({"w1": True, "w2": True})
        assert type(world) is Node

    def test_ancestor_gating(self):
        # D's condition holds but its parent C is dropped: D disappears.
        events = EventTable({"w1": 0.5})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode(
                    "C",
                    condition=Condition.of("w1"),
                    children=[FuzzyNode("D")],
                )
            ],
        )
        doc = FuzzyTree(root, events)
        assert doc.world({"w1": False}).canonical() == "A"
        assert doc.world({"w1": True}).canonical() == "A(C(D))"

    def test_all_worlds_of_slide12(self, slide12_doc):
        expected = {
            (False, False): "A(C)",
            (False, True): "A(C(D))",
            (True, False): "A(B,C)",
            (True, True): "A(C(D))",
        }
        for (w1, w2), canonical in expected.items():
            assert slide12_doc.world({"w1": w1, "w2": w2}).canonical() == canonical
