"""The 2.0 QueryOptions surface: top-k, thresholds, anytime answers.

Three contracts under test:

* **Equivalence** — branch-and-bound top-k returns exactly the first k
  rows of the full probability sort (ties broken by enumeration
  order), and a ``min_probability`` floor never drops a qualifying
  row.  Both properties run against randomized warehouses so the
  pruning bound is exercised on arbitrary condition structure.
* **Anytime accuracy** — Monte-Carlo estimates land within the
  requested ±epsilon of the exact Shannon probability at the sampled
  3-sigma confidence, across seeds.
* **Surface** — ``QueryOptions`` round-trips through its JSON wire
  form bit-exactly, validation aggregates every bad field into one
  error, and ``limit(0)`` short-circuits without pinning a read
  session.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import QueryOptions, QueryOptionsError, connect
from repro.errors import QueryError

# ----------------------------------------------------------------------
# Warehouse fixtures
# ----------------------------------------------------------------------


def _seed_session(session, rng: random.Random, people: int) -> None:
    """Insert *people* persons with varied (and colliding) confidences."""
    palette = [0.12, 0.25, 0.25, 0.4, 0.55, 0.55, 0.7, 0.85, 0.97]
    for i in range(people):
        session.update(
            repro.update(
                repro.pattern("directory", variable="d", anchored=True)
            ).insert(
                "d",
                repro.tree("person", repro.tree("name", f"p{i:03d}")),
            ),
            confidence=rng.choice(palette),
        )


def _make_warehouse(path, seed: int, people: int):
    session = connect(path, create=True, root="directory")
    _seed_session(session, random.Random(seed), people)
    return session


PATTERN = "//person { name [$n] }"


# ----------------------------------------------------------------------
# Top-k == prefix of the full probability sort
# ----------------------------------------------------------------------


class TestTopK:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 1_000), k=st.integers(1, 12))
    def test_topk_equals_sorted_prefix(self, tmp_path_factory, seed, k):
        path = tmp_path_factory.mktemp("topk") / f"wh-{seed}-{k}"
        with _make_warehouse(path, seed, people=9) as session:
            full = list(session.query(PATTERN))
            # Stable sort by descending probability: enumeration order
            # breaks ties, which is exactly the top-k tie contract.
            expected = sorted(
                full, key=lambda row: -row.probability
            )[:k]
            got = list(session.query(PATTERN).order_by_probability().limit(k))
            assert [
                (r.probability, r.tree.canonical(), r.bindings())
                for r in got
            ] == [
                (r.probability, r.tree.canonical(), r.bindings())
                for r in expected
            ]

    def test_order_without_limit_sorts_everything(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 5, people=7) as session:
            got = [r.probability for r in session.query(PATTERN).order_by_probability()]
            assert got == sorted(got, reverse=True)
            assert len(got) == 7

    def test_topk_prunes_enumeration(self, tmp_path):
        """The bounded join actually prunes partial matches."""
        from repro.analysis.instrumentation import counters

        with _make_warehouse(tmp_path / "wh", 3, people=24) as session:
            counters.reset()
            counters.enable()
            try:
                list(session.query(PATTERN).order_by_probability().limit(2))
                assert counters.get("match.bound_pruned") > 0
            finally:
                counters.reset()


# ----------------------------------------------------------------------
# min_probability: never drops a qualifying row
# ----------------------------------------------------------------------


class TestMinProbability:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 1_000), floor=st.sampled_from([0.2, 0.5, 0.8]))
    def test_threshold_completeness(self, tmp_path_factory, seed, floor):
        path = tmp_path_factory.mktemp("minp") / f"wh-{seed}-{floor}"
        with _make_warehouse(path, seed, people=9) as session:
            full = list(session.query(PATTERN))
            expected = [
                (r.probability, r.tree.canonical())
                for r in full
                if r.probability >= floor
            ]
            got = [
                (r.probability, r.tree.canonical())
                for r in session.query(PATTERN).min_probability(floor)
            ]
            assert got == expected

    def test_threshold_composes_with_topk(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 11, people=9) as session:
            got = list(
                session.query(PATTERN)
                .order_by_probability()
                .min_probability(0.5)
                .limit(3)
            )
            assert all(r.probability >= 0.5 for r in got)
            probs = [r.probability for r in got]
            assert probs == sorted(probs, reverse=True)

    def test_chaining_keeps_strictest_floor(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 2, people=5) as session:
            rs = session.query(PATTERN).min_probability(0.3).min_probability(0.6)
            assert rs.options.min_probability == 0.6
            rs2 = session.query(PATTERN).min_probability(0.6).min_probability(0.3)
            assert rs2.options.min_probability == 0.6


# ----------------------------------------------------------------------
# Anytime Monte-Carlo accuracy
# ----------------------------------------------------------------------


class TestEstimate:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
    def test_estimates_within_epsilon(self, tmp_path, seed):
        epsilon = 0.05
        with _make_warehouse(tmp_path / "wh", 19, people=8) as session:
            exact = {
                answer.tree.canonical(): answer.probability
                for answer in session.query(PATTERN).answers()
            }
            estimates = session.query(PATTERN).estimate(
                epsilon=epsilon, seed=seed
            )
            assert estimates, "estimator returned nothing"
            for est in estimates:
                key = est.tree.canonical()
                assert key in exact
                # The sampler stops when 3*stderr <= epsilon, so the
                # true probability lies within ±epsilon at 3 sigma.
                assert abs(est.probability - exact[key]) <= epsilon
                assert est.stderr * 3.0 <= epsilon + 1e-12
                assert est.samples > 0

    def test_estimates_are_seed_deterministic(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 23, people=6) as session:
            a = session.query(PATTERN).estimate(epsilon=0.05, seed=9)
            b = session.query(PATTERN).estimate(epsilon=0.05, seed=9)
            assert [
                (e.probability, e.stderr, e.samples, e.tree.canonical())
                for e in a
            ] == [
                (e.probability, e.stderr, e.samples, e.tree.canonical())
                for e in b
            ]

    def test_deadline_bounds_sampling(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 29, people=6) as session:
            estimates = session.query(PATTERN).estimate(deadline_ms=30)
            assert estimates
            # At least one batch always runs, even under a tiny budget.
            assert all(e.samples >= 1 for e in estimates)

    def test_estimate_respects_min_probability(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 31, people=8) as session:
            estimates = (
                session.query(PATTERN)
                .min_probability(0.5)
                .estimate(epsilon=0.05)
            )
            assert all(e.probability >= 0.5 for e in estimates)


# ----------------------------------------------------------------------
# limit(0): no pin, no stream
# ----------------------------------------------------------------------


class TestLimitZero:
    def test_limit_zero_takes_no_pin(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 37, people=4) as session:
            warehouse = session.warehouse
            assert warehouse.read_sessions == 0
            with session.query(PATTERN).limit(0).stream() as stream:
                # The empty stream must not have pinned a generation.
                assert warehouse.read_sessions == 0
                assert list(stream) == []
            assert warehouse.read_sessions == 0
            assert session.query(PATTERN).limit(0).all() == []
            assert session.query(PATTERN).limit(0).answers() == []
            assert session.query(PATTERN).limit(0).estimate(epsilon=0.1) == []
            assert warehouse.read_sessions == 0

    def test_limit_zero_after_order(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 41, people=4) as session:
            rs = session.query(PATTERN).order_by_probability().limit(0)
            assert rs.all() == []


# ----------------------------------------------------------------------
# QueryOptions: round-trip and validation
# ----------------------------------------------------------------------

_options_strategy = st.builds(
    QueryOptions,
    pattern=st.sampled_from(["//a", "/a { b }", "//person { name [$n] }"]),
    limit=st.one_of(st.none(), st.integers(0, 50)),
    order=st.sampled_from(["document", "probability"]),
    min_probability=st.one_of(
        st.none(), st.floats(0.0, 1.0, allow_nan=False, width=32)
    ),
    epsilon=st.one_of(
        st.none(),
        st.floats(0.0009765625, 0.5, allow_nan=False, width=32),
    ),
    deadline_ms=st.one_of(st.none(), st.integers(1, 10_000)),
    document=st.one_of(st.none(), st.sampled_from(["alice", "bob"])),
    plan=st.sampled_from(["auto", "fixed"]),
)


class TestQueryOptionsSurface:
    @settings(max_examples=200, deadline=None)
    @given(options=_options_strategy)
    def test_json_round_trip(self, options):
        wire = options.to_json()
        back = QueryOptions.from_json(wire)
        assert back == options
        # And the wire form itself is a fixed point.
        assert back.to_json() == wire

    def test_defaults_are_omitted_from_wire(self):
        assert QueryOptions(pattern="//a").to_json() == {"pattern": "//a"}

    def test_from_json_aggregates_every_error(self):
        with pytest.raises(QueryOptionsError) as excinfo:
            QueryOptions.from_json(
                {
                    "limit": -3,
                    "order_by": "size",
                    "min_probability": 2.0,
                    "epsilon": 0,
                    "deadline_ms": -1,
                    "plan": "magic",
                    "bogus": 1,
                }
            )
        fields = {e["field"] for e in excinfo.value.errors}
        assert {
            "pattern",
            "limit",
            "order_by",
            "min_probability",
            "epsilon",
            "deadline_ms",
            "plan",
            "bogus",
        } <= fields
        assert isinstance(excinfo.value, QueryError)

    def test_options_are_immutable(self):
        options = QueryOptions(pattern="//a")
        with pytest.raises(AttributeError):
            options.limit = 3  # type: ignore[misc]

    def test_constructor_validates(self):
        with pytest.raises(QueryOptionsError):
            QueryOptions(limit=-1)
        with pytest.raises(QueryOptionsError):
            QueryOptions(order="size")
        with pytest.raises(QueryOptionsError):
            QueryOptions(epsilon=1.5)

    def test_session_query_via_options(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 43, people=5) as session:
            options = QueryOptions(
                pattern=PATTERN, order="probability", limit=2
            )
            via_options = [
                (r.probability, r.tree.canonical())
                for r in session.query(options=options)
            ]
            fluent = [
                (r.probability, r.tree.canonical())
                for r in session.query(PATTERN).order_by_probability().limit(2)
            ]
            assert via_options == fluent

    def test_query_requires_a_pattern_somewhere(self, tmp_path):
        with _make_warehouse(tmp_path / "wh", 47, people=2) as session:
            with pytest.raises(QueryError):
                session.query()
            with pytest.raises(QueryError):
                session.query(options=QueryOptions(limit=3))
