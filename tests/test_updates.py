"""Unit tests for update transactions and the deterministic τ
(repro.updates)."""

import pytest

from repro.errors import QueryError, UpdateError
from repro.tpwj import parse_pattern
from repro.trees import tree
from repro.updates import (
    DeleteOperation,
    InsertOperation,
    UpdateTransaction,
    apply_deterministic,
)


class TestOperations:
    def test_insert_clones_template(self):
        template = tree("X", tree("Y"))
        op = InsertOperation("a", template)
        template.children[0].detach()  # mutate after construction
        assert op.subtree.size() == 2  # operation kept its own copy

    def test_insert_validation(self):
        with pytest.raises(UpdateError):
            InsertOperation("", tree("X"))
        with pytest.raises(UpdateError):
            InsertOperation("a", "not a node")  # type: ignore[arg-type]

    def test_delete_validation(self):
        assert DeleteOperation("t").target == "t"
        with pytest.raises(UpdateError):
            DeleteOperation("")


class TestTransactionValidation:
    def test_requires_operations(self):
        with pytest.raises(UpdateError, match="no operations"):
            UpdateTransaction(parse_pattern("A"), [], 0.5)

    def test_requires_known_variable(self):
        with pytest.raises(QueryError):
            UpdateTransaction(parse_pattern("A"), [DeleteOperation("zz")], 0.5)

    def test_rejects_join_variable_reference(self):
        pattern = parse_pattern("A { B[$x], C[$x] }")
        with pytest.raises(QueryError, match="join variable"):
            UpdateTransaction(pattern, [DeleteOperation("x")], 0.5)

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan"), "hi", None, True])
    def test_confidence_validation(self, bad):
        with pytest.raises(UpdateError):
            UpdateTransaction(
                parse_pattern("A[$a]"), [InsertOperation("a", tree("X"))], bad
            )

    def test_with_confidence(self):
        tx = UpdateTransaction(
            parse_pattern("A[$a]"), [InsertOperation("a", tree("X"))], 0.5
        )
        assert tx.with_confidence(0.9).confidence == 0.9
        assert tx.confidence == 0.5  # original unchanged

    def test_partition_accessors(self):
        tx = UpdateTransaction(
            parse_pattern("A[$a] { B[$b] }"),
            [InsertOperation("a", tree("X")), DeleteOperation("b")],
            1.0,
        )
        assert len(tx.insertions) == 1 and len(tx.deletions) == 1


class TestDeterministicApplication:
    def test_insert_per_match(self):
        doc = tree("A", tree("B"), tree("B"))
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [InsertOperation("b", tree("N"))], 1.0
        )
        result = apply_deterministic(tx, doc)
        assert result.canonical() == "A(B(N),B(N))"
        assert doc.canonical() == "A(B,B)"  # input untouched

    def test_delete(self):
        doc = tree("A", tree("B"), tree("C"))
        tx = UpdateTransaction(parse_pattern("B[$b]"), [DeleteOperation("b")], 1.0)
        assert apply_deterministic(tx, doc).canonical() == "A(C)"

    def test_nested_deletes_are_noop_for_inner(self):
        doc = tree("A", tree("B", tree("C")), tree("C"))
        # Delete every C and every B: the C inside B disappears with B.
        tx = UpdateTransaction(
            parse_pattern("A { B[$b], //C[$c] }"),
            [DeleteOperation("b"), DeleteOperation("c")],
            1.0,
        )
        assert apply_deterministic(tx, doc).canonical() == "A"

    def test_insert_then_delete_same_target_absorbed(self):
        # Insertion under a node the transaction also deletes vanishes.
        doc = tree("A", tree("B"))
        tx = UpdateTransaction(
            parse_pattern("B[$b]"),
            [InsertOperation("b", tree("N")), DeleteOperation("b")],
            1.0,
        )
        assert apply_deterministic(tx, doc).canonical() == "A"

    def test_insert_under_valued_leaf_is_noop(self):
        doc = tree("A", tree("B", "val"))
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [InsertOperation("b", tree("N"))], 1.0
        )
        assert apply_deterministic(tx, doc).canonical() == "A(B='val')"

    def test_delete_root_rejected(self):
        doc = tree("A", tree("B"))
        tx = UpdateTransaction(parse_pattern("/A[$a]"), [DeleteOperation("a")], 1.0)
        with pytest.raises(UpdateError, match="document root"):
            apply_deterministic(tx, doc)

    def test_no_match_returns_equal_tree(self):
        doc = tree("A", tree("B"))
        tx = UpdateTransaction(parse_pattern("Z[$z]"), [DeleteOperation("z")], 1.0)
        assert apply_deterministic(tx, doc).equals(doc)

    def test_multiple_matches_same_anchor_insert_twice(self):
        # Two matches bind the same anchor A: two inserted copies.
        doc = tree("A", tree("B"), tree("B"))
        tx = UpdateTransaction(
            parse_pattern("A[$a] { B }"), [InsertOperation("a", tree("N"))], 1.0
        )
        assert apply_deterministic(tx, doc).canonical() == "A(B,B,N,N)"

    def test_precomputed_matches_are_transferred(self):
        from repro.tpwj import find_matches

        doc = tree("A", tree("B"))
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [InsertOperation("b", tree("N"))], 1.0
        )
        matches = find_matches(tx.query, doc)
        result = apply_deterministic(tx, doc, matches)
        assert result.canonical() == "A(B(N))"
