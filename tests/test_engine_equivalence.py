"""Property test: the planner-chosen execution is exactly equivalent to
the naive matcher.

For random documents and random patterns, the match set produced by the
cost-based engine (statistics -> plan -> physical operators) must equal
the match set of the fixed-strategy matcher with **every** optimization
disabled — the ground-truth enumeration.  This is the engine's
load-bearing correctness test: plans may reorder the visit sequence and
pick different operators, but never change the answer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    MatchConfig,
    build_plan,
    collect_stats,
    execute_plan,
    find_matches,
)
from repro.tpwj.parser import parse_pattern
from repro.errors import QueryError
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees import Node, RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

seeds = st.integers(min_value=0, max_value=2**32 - 1)

relaxed = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The ground truth: plain backtracking, no index, no pruning, late joins.
NAIVE = MatchConfig(
    use_label_index=False, use_semijoin_pruning=False, early_join_check=False
)

DOCS = FuzzyWorkloadConfig(
    tree=RandomTreeConfig(max_nodes=40, max_children=4, max_depth=5),
    n_events=3,
)


def match_keys(matches, pattern) -> set[tuple[int, ...]]:
    """Identity-based canonical keys for a match set.

    A match is the function pattern node -> data node; two matches are
    the same iff they agree on every positive pattern node.
    """
    order = pattern.positive_nodes()
    return {tuple(id(match[p]) for p in order) for match in matches}


def make_instance(seed: int):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, DOCS)
    pattern = random_query_for(
        rng,
        doc.root,
        max_nodes=6,
        descendant_probability=0.4,
        wildcard_probability=0.2,
        value_test_probability=0.4,
        join_probability=0.6,
    )
    return doc, pattern


@relaxed
@given(seeds)
def test_auto_plan_equals_naive_matcher(seed):
    doc, pattern = make_instance(seed)
    naive = find_matches(pattern, doc.root, NAIVE)
    planned = find_matches(pattern, doc.root, plan="auto")
    assert match_keys(planned, pattern) == match_keys(naive, pattern)


@relaxed
@given(seeds)
def test_explicit_plan_equals_naive_matcher(seed):
    doc, pattern = make_instance(seed)
    plan = build_plan(pattern, collect_stats(doc.root))
    # The plan's visit order must be topological: parents before children.
    positions = {id(node): i for i, node in enumerate(plan.order)}
    for node in plan.order:
        if node.parent is not None:
            assert positions[id(node.parent)] < positions[id(node)]
    naive = find_matches(pattern, doc.root, NAIVE)
    planned = execute_plan(plan, doc.root)
    assert match_keys(planned, pattern) == match_keys(naive, pattern)


@relaxed
@given(seeds, st.integers(min_value=1, max_value=4))
def test_max_matches_is_honored(seed, limit):
    doc, pattern = make_instance(seed)
    total = len(find_matches(pattern, doc.root, NAIVE))
    capped = find_matches(
        pattern, doc.root, MatchConfig(max_matches=limit), plan="auto"
    )
    assert len(capped) == min(limit, total)
    # Every capped match is a genuine match.
    assert match_keys(capped, pattern) <= match_keys(
        find_matches(pattern, doc.root, NAIVE), pattern
    )


def test_mismatched_plan_is_rejected():
    """A plan for one query cannot silently run a different query."""
    doc, _ = make_instance(0)
    other = build_plan(parse_pattern("A { B }"), collect_stats(doc.root))
    with pytest.raises(QueryError):
        find_matches(parse_pattern("A { C }"), doc.root, plan=other)


def test_negation_equivalence():
    """Negated subpatterns prune identically through plans.

    The generator never emits negation, so this instance is hand-built:
    "an A with a B child and no C child" over a document where some A
    nodes have both.
    """
    root = Node("R")
    a1 = root.add_child(Node("A"))
    a1.add_child(Node("B"))
    a2 = root.add_child(Node("A"))
    a2.add_child(Node("B"))
    a2.add_child(Node("C"))
    a3 = root.add_child(Node("A"))
    a3.add_child(Node("D"))

    pattern = Pattern(
        PatternNode(
            "A",
            children=[
                PatternNode("B"),
                PatternNode("C", negated=True),
            ],
        )
    )
    naive = find_matches(pattern, root, NAIVE)
    planned = find_matches(pattern, root, plan="auto")
    assert match_keys(planned, pattern) == match_keys(naive, pattern)
    assert len(planned) == 1
    assert planned[0][pattern.root] is a1
