"""Crash-recovery tests for the incremental commit pipeline.

Extends the failure-injection approach of ``test_failure_injection.py``
to the WAL/snapshot pipeline: the process model is killed at every
fsync/rename boundary (mid-WAL-append, post-WAL pre-snapshot,
mid-compaction, pre-audit-append) and ``Warehouse.open`` must always
recover a consistent document or raise ``WarehouseCorruptError`` —
never a silent half-state.  Property tests check that
replay(snapshot + WAL) is node-for-node identical to the in-memory
application, and that incrementally maintained statistics equal freshly
collected ones after every commit.
"""

from __future__ import annotations

import json
import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    InsertOperation,
    UpdateTransaction,
    collect_stats,
)
from repro.tpwj.parser import parse_pattern
from repro.errors import WarehouseCorruptError, WarehouseLockedError
from repro.trees import tree
from repro.trees.random import RandomTreeConfig
from repro.warehouse import CommitPolicy, Storage, Warehouse, WriteAheadLog
from repro.warehouse.log import TransactionLog, _record_digest
from repro.warehouse import storage as storage_module
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_update_for


class _Crash(Exception):
    """The injected fault: the process dies here."""


def _no_compact_policy(snapshot_every: int = 1000) -> CommitPolicy:
    return CommitPolicy(snapshot_every=snapshot_every, compact_on_close=False)


def _kill(warehouse: Warehouse) -> None:
    """Simulate process death: the lock evaporates, nothing is flushed."""
    warehouse._storage.release_lock()
    warehouse._closed = True


def _insert_tx(confidence: float = 0.5) -> UpdateTransaction:
    return UpdateTransaction(
        parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], confidence
    )


class TestCrashMidWalAppend:
    def test_torn_tail_record_discarded(self, tmp_path, slide12_doc):
        """A crash mid-append leaves a partial last line; recovery drops
        it and serves the previous commit's state."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        durable_state = wh.document.root.canonical()
        durable_sequence = wh.sequence
        wh._commit_update(_insert_tx())
        _kill(wh)
        # Tear the last WAL record: the crash happened mid-write.
        wal_path = path / "wal.jsonl"
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[: len(raw) - 25])
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == durable_state
            assert recovered.sequence == durable_sequence

    def test_crash_raised_inside_append(self, tmp_path, slide12_doc, monkeypatch):
        """The append itself dies after partial bytes hit the file."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        durable_state = wh.document.root.canonical()
        durable_sequence = wh.sequence

        def torn_append(self, kind, sequence, payload):
            with open(self.path, "ab") as handle:
                handle.write(b'{"kind": "update", "seq')
            raise _Crash()

        monkeypatch.setattr(WriteAheadLog, "append", torn_append)
        with pytest.raises(_Crash):
            wh._commit_update(_insert_tx())
        monkeypatch.undo()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == durable_state
            assert recovered.sequence == durable_sequence

    def test_corrupt_record_before_tail_detected(self, tmp_path, slide12_doc):
        """Acknowledged (non-tail) WAL damage must raise, not skip."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        wh._commit_update(_insert_tx())
        _kill(wh)
        wal_path = path / "wal.jsonl"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        lines[0] = lines[0][:40] + b"X" + lines[0][41:]
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(WarehouseCorruptError, match="checksum|unparseable"):
            Warehouse.open(path)

    def test_wal_sequence_gap_detected(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        for _ in range(3):
            wh._commit_update(_insert_tx())
        _kill(wh)
        wal_path = path / "wal.jsonl"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        del lines[1]  # a durable commit vanished
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(WarehouseCorruptError, match="sequence gap"):
            Warehouse.open(path)


class TestCrashDuringCompaction:
    def test_crash_post_wal_pre_snapshot(self, tmp_path, slide12_doc, monkeypatch):
        """Snapshot write dies after the WAL append: the commit is
        durable in the WAL and replays on open."""
        path = tmp_path / "wh"
        wh = Warehouse.create(
            path, slide12_doc, policy=CommitPolicy(snapshot_every=2, compact_on_close=False)
        )
        wh._commit_update(_insert_tx())  # seq 2: WAL only

        def dying_write(self, xml_text, sequence, extra_meta=None, binary=None):
            raise _Crash()

        monkeypatch.setattr(Storage, "write_document", dying_write)
        with pytest.raises(_Crash):
            wh._commit_update(_insert_tx())  # seq 3: WAL append ok, compaction dies
        monkeypatch.undo()
        expected = wh.document.root.canonical()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected
            assert recovered.sequence == 3
            assert recovered.stats()["wal_depth"] == 2  # both replayed

    def test_crash_between_snapshot_and_wal_reset(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """Snapshot written, WAL reset dies: stale records are skipped."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        wh._commit_update(_insert_tx())

        def dying_reset(self):
            raise _Crash()

        monkeypatch.setattr(WriteAheadLog, "reset", dying_reset)
        with pytest.raises(_Crash):
            wh.compact()
        monkeypatch.undo()
        expected = wh.document.root.canonical()
        sequence = wh.sequence
        _kill(wh)
        # The WAL still holds records <= the fresh snapshot's sequence.
        assert WriteAheadLog(path).size_bytes() > 0
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected
            assert recovered.sequence == sequence
            assert recovered.stats()["wal_depth"] == 0

    def test_crash_between_document_and_meta_rename(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """Dying between the two snapshot renames leaves document/meta
        inconsistent — open must raise corrupt, never serve the mix."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        real_atomic_write = storage_module._atomic_write
        calls = {"n": 0}

        def dying_atomic_write(target, payload):
            calls["n"] += 1
            # Writes per snapshot: document.xml, document.bin, meta.json.
            if calls["n"] == 3:  # documents written, meta.json pending
                raise _Crash()
            real_atomic_write(target, payload)

        monkeypatch.setattr(storage_module, "_atomic_write", dying_atomic_write)
        with pytest.raises(_Crash):
            wh.compact()
        monkeypatch.undo()
        _kill(wh)
        with pytest.raises(WarehouseCorruptError, match="checksum"):
            Warehouse.open(path)


class TestCrashBeforeAuditAppend:
    def test_audit_entry_reconstructed_from_wal(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """The WAL made the commit durable; a crash before the audit
        append must not lose history — recovery rebuilds the entry."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())

        def dying_append(self, kind, sequence, payload, fsync=True):
            raise _Crash()

        monkeypatch.setattr(TransactionLog, "append", dying_append)
        with pytest.raises(_Crash):
            wh._commit_update(_insert_tx())
        monkeypatch.undo()
        expected = wh.document.root.canonical()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected
            last = recovered.history()[-1]
            assert last["sequence"] == 3
            assert last["replayed"] is True
            assert last["kind"] == "update"


class TestReplayDivergenceGuard:
    def test_foreign_confidence_event_detected(self, tmp_path, slide12_doc):
        """A WAL record whose recorded confidence event cannot be
        re-minted means snapshot and WAL describe different histories."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx(confidence=0.5))
        _kill(wh)
        wal_path = path / "wal.jsonl"
        record = json.loads(wal_path.read_text().splitlines()[0])
        record["payload"]["confidence_event"] = "w999"
        record["sha256"] = _record_digest(
            {k: v for k, v in record.items() if k != "sha256"}
        )
        wal_path.write_text(json.dumps(record, sort_keys=True) + "\n")
        with pytest.raises(WarehouseCorruptError, match="diverged"):
            Warehouse.open(path)


# ----------------------------------------------------------------------
# Property tests: replay fidelity and incremental statistics
# ----------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)

SMALL_DOCS = FuzzyWorkloadConfig(
    tree=RandomTreeConfig(max_nodes=16, min_nodes=4, max_children=3, max_depth=4),
    n_events=3,
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_session(rng: random.Random, warehouse: Warehouse) -> None:
    """Drive a short random mix of single and batched commits."""
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.3:
            members = [
                random_update_for(
                    rng, warehouse.document, confidence=rng.choice([0.5, 0.9, 1.0])
                )
                for _ in range(rng.randint(1, 3))
            ]
            warehouse.update_many(members)
        else:
            warehouse._commit_update(
                random_update_for(
                    rng, warehouse.document, confidence=rng.choice([0.5, 0.9, 1.0])
                )
            )


@relaxed
@given(seeds)
def test_replay_is_identical_to_in_memory_application(seed):
    """replay(snapshot + WAL deltas) == the document the live session
    held, node for node, event for event, sequence for sequence."""
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wh"
        wh = Warehouse.create(path, doc, policy=_no_compact_policy())
        _random_session(rng, wh)
        expected = wh.document.root.canonical()
        expected_events = wh.document.events.as_dict()
        expected_sequence = wh.sequence
        assert wh.stats()["wal_depth"] >= 1
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected
            assert recovered.document.events.as_dict() == expected_events
            assert recovered.sequence == expected_sequence


@relaxed
@given(seeds)
def test_incremental_stats_equal_fresh_stats_after_every_commit(seed):
    """The delta-maintained DocumentStats snapshot equals a fresh
    one-pass collection after every commit (single and batched)."""
    rng = random.Random(seed)
    doc = random_fuzzy_tree(rng, SMALL_DOCS)
    with tempfile.TemporaryDirectory() as tmp:
        wh = Warehouse.create(Path(tmp) / "wh", doc)
        wh.engine.stats.current()  # prime the maintained accumulator
        for _ in range(rng.randint(2, 6)):
            wh._commit_update(
                random_update_for(
                    rng, wh.document, confidence=rng.choice([0.5, 0.9, 1.0])
                )
            )
            assert wh.engine.stats.current() == collect_stats(wh.document.root)
        members = [
            random_update_for(rng, wh.document, confidence=1.0)
            for _ in range(rng.randint(1, 3))
        ]
        wh.update_many(members)
        assert wh.engine.stats.current() == collect_stats(wh.document.root)
        wh.close()


class TestReviewRegressions:
    """Failure modes found in review: each must stay fixed."""

    def test_torn_audit_tail_does_not_block_recovery(self, tmp_path, slide12_doc):
        """log.jsonl is best-effort: a torn last line (un-fsynced crash
        debris) must not prevent open — the entry is rebuilt from the WAL."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        wh._commit_update(_insert_tx())
        expected = wh.document.root.canonical()
        _kill(wh)
        log_path = path / "log.jsonl"
        raw = log_path.read_bytes()
        log_path.write_bytes(raw[: len(raw) - 20])  # tear the tail
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected
            last = recovered.history()[-1]
            assert last["sequence"] == 3
            assert last.get("replayed") is True

    def test_failed_wal_append_rolls_back_sequence(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """A failed append must not leave a sequence gap; the next
        commit snapshots so the orphaned in-memory mutation heals."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())

        def dying_append(self, kind, sequence, payload):
            raise _Crash()

        monkeypatch.setattr(WriteAheadLog, "append", dying_append)
        with pytest.raises(_Crash):
            wh._commit_update(_insert_tx())
        monkeypatch.undo()
        assert wh.sequence == 2  # rolled back: no gap
        wh._commit_update(_insert_tx())  # heals via snapshot
        assert wh.stats()["snapshot_sequence"] == wh.sequence == 3
        expected = wh.document.root.canonical()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected

    def test_open_releases_lock_when_reconciliation_fails(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        _kill(wh)

        def dying_append(self, kind, sequence, payload, fsync=True):
            raise OSError("disk full")

        monkeypatch.setattr(TransactionLog, "append", dying_append)
        # Force reconciliation to run by removing the audit entry.
        (path / "log.jsonl").write_text("")
        with pytest.raises(OSError):
            Warehouse.open(path)
        monkeypatch.undo()
        assert not (path / "lock").exists()
        Warehouse.open(path).close()  # lock was not leaked

    def test_replay_uses_writing_sessions_match_semantics(
        self, tmp_path, slide12_doc
    ):
        """Recovery under a different MatchConfig must rebuild the
        document the writing session acknowledged, not a reinterpretation."""
        from repro.tpwj.match import MatchConfig

        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx(confidence=1.0))  # first N under C
        wh._commit_update(_insert_tx(confidence=1.0))  # second N under C
        # Two N nodes: this transaction applies at BOTH matches.
        wh._commit_update(
            UpdateTransaction(
                parse_pattern("N[$n]"), [InsertOperation("n", tree("M"))], 1.0
            )
        )
        assert sum(1 for n in wh.document.iter_nodes() if n.label == "M") == 2
        expected = wh.document.root.canonical()
        _kill(wh)
        # A truncating handle would see only one match per transaction;
        # replay must use the recorded (untruncated) semantics instead.
        with Warehouse.open(path, match_config=MatchConfig(max_matches=1)) as recovered:
            assert recovered.document.root.canonical() == expected

    def test_threshold_snapshot_cannot_lose_audit_entry(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """The audit entry is written (and fsynced) before a threshold
        snapshot resets the WAL: a crash anywhere in that commit leaves
        history either complete or rebuildable."""
        path = tmp_path / "wh"
        wh = Warehouse.create(
            path,
            slide12_doc,
            policy=CommitPolicy(snapshot_every=2, compact_on_close=False),
        )
        wh._commit_update(_insert_tx())  # seq 2: WAL only
        # Crash during the threshold commit's snapshot: the WAL record
        # and audit entry are already down, the fold never happened.
        def dying_write(self, xml_text, sequence, extra_meta=None, binary=None):
            raise _Crash()

        monkeypatch.setattr(Storage, "write_document", dying_write)
        with pytest.raises(_Crash):
            wh._commit_update(_insert_tx())  # seq 3 crosses snapshot_every=2
        monkeypatch.undo()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.sequence == 3
            assert [e["sequence"] for e in recovered.history()] == [1, 2, 3]
            # The entries were the live ones, not reconstructions.
            assert all("replayed" not in e for e in recovered.history())

    def test_lock_file_appears_atomically_with_payload(self, tmp_path, slide12_doc):
        """A concurrent acquirer must never observe a lock without its
        pid/token payload (the mid-acquire steal race)."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc)
        content = (path / "lock").read_bytes()
        record = json.loads(content)
        assert record["pid"] > 0
        # No staging debris left behind.
        assert not list(path.glob("lock.*.tmp"))
        wh.close()

    def test_partial_batch_failure_heals_via_snapshot(self, tmp_path, slide12_doc):
        """A batch member rejected after earlier members mutated the
        document must not leave later WAL commits replaying against a
        different base (recovery would brick)."""
        from repro import DeleteOperation
        from repro.errors import UpdateError

        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        orphan_insert = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("Orphan"))], 1.0
        )
        root_delete = UpdateTransaction(
            parse_pattern("/A[$a]"), [DeleteOperation("a")], 1.0
        )
        with pytest.raises(UpdateError):
            wh.update_many([orphan_insert, root_delete])
        # The orphan insert mutated the document in memory; the next
        # commit must snapshot so durable state matches it again.
        report = wh._commit_update(_insert_tx(confidence=0.5))
        assert report.applied
        assert wh.stats()["snapshot_sequence"] == wh.sequence
        expected = wh.document.root.canonical()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected

    def test_rotten_complete_final_wal_record_raises(self, tmp_path, slide12_doc):
        """A newline-terminated final record that fails its checksum is
        acknowledged data gone bad — it must raise, not be dropped as a
        torn tail."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        _kill(wh)
        wal_path = path / "wal.jsonl"
        raw = wal_path.read_bytes()
        assert raw.endswith(b"\n")
        # Flip a byte inside the (complete) record, newline preserved.
        wal_path.write_bytes(raw[:40] + b"X" + raw[41:])
        with pytest.raises(WarehouseCorruptError, match="checksum|unparseable"):
            Warehouse.open(path)

    def test_failed_simplify_snapshot_rolls_back_sequence(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """A snapshot-path commit (simplify) whose write fails must not
        leave a bumped sequence: the next WAL append would create a gap
        that bricks recovery."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._commit_update(_insert_tx())
        sequence = wh.sequence

        def dying_write(self, xml_text, sequence, extra_meta=None, binary=None):
            raise _Crash()

        monkeypatch.setattr(Storage, "write_document", dying_write)
        with pytest.raises(_Crash):
            wh.simplify()
        monkeypatch.undo()
        assert wh.sequence == sequence  # rolled back: no gap
        wh._commit_update(_insert_tx())  # heals via snapshot (snapshot_due)
        assert wh.stats()["snapshot_sequence"] == wh.sequence
        expected = wh.document.root.canonical()
        _kill(wh)
        with Warehouse.open(path) as recovered:
            assert recovered.document.root.canonical() == expected

    def test_engine_sees_mutation_even_when_audit_append_fails(
        self, tmp_path, slide12_doc, monkeypatch
    ):
        """The commit is durable in the WAL but the audit append dies:
        the handle stays usable and queries must see the new nodes (a
        stale cached walk would hide them)."""
        path = tmp_path / "wh"
        wh = Warehouse.create(path, slide12_doc, policy=_no_compact_policy())
        wh._query_answers("//N")  # warm the engine's walk on the pre-update tree
        fresh_tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("Fresh"))], 1.0
        )

        def dying_append(self, kind, sequence, payload, fsync=True):
            raise _Crash()

        monkeypatch.setattr(TransactionLog, "append", dying_append)
        with pytest.raises(_Crash):
            wh._commit_update(fresh_tx)
        monkeypatch.undo()
        assert len(wh._query_answers("//Fresh")) == 1  # no stale walk served
        wh.close()

    def test_lost_lock_race_backs_off(self, tmp_path, monkeypatch):
        """If a concurrent breaker replaced our freshly linked lock, the
        acquirer must back off rather than hold a phantom lock."""
        import os

        storage = Storage(tmp_path / "s")
        storage.initialize()
        real_link = os.link

        def racing_link(src, dst, **kwargs):
            real_link(src, dst, **kwargs)
            # Simulate the concurrent breaker: unlink our fresh lock
            # and install its own, in the break window.
            os.unlink(dst)
            (tmp_path / "s" / "other").write_text('{"pid": 1, "token": "x"}')
            real_link(tmp_path / "s" / "other", dst)

        monkeypatch.setattr(os, "link", racing_link)
        with pytest.raises(WarehouseLockedError, match="lost the lock race"):
            storage.acquire_lock()
        monkeypatch.undo()
        assert storage._lock_fd is None
