"""Cross-feature integration: PrXML documents inside a warehouse,
negated queries, aggregates, and CLI access — the extensions working
together through the same fuzzy-tree core."""

import pytest

from repro import (
    DeleteOperation,
    UpdateTransaction,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.tpwj.parser import parse_pattern
from repro.cli import main
from repro.core import expected_matches, probability_at_least
from repro.prxml import PDocument, PInd, PMux, PRegular, compile_to_fuzzy
from repro.warehouse import Warehouse
from repro.xmlio import fuzzy_to_string


@pytest.fixture
def compiled_catalog():
    """A PrXML catalog compiled to a fuzzy tree."""
    root = PRegular("catalog")
    for sku, p_exists in (("laptop", 0.9), ("phone", 0.4)):
        entry = PRegular("entry")
        entry.add_child(PRegular("sku", sku))
        mux = PMux()
        mux.add(PRegular("price", "100"), 0.6)
        mux.add(PRegular("price", "120"), 0.4)
        entry.add_child(mux)
        ind = PInd()
        ind.add(entry, p_exists)
        root.add_child(ind)
    return compile_to_fuzzy(PDocument(root))


class TestPrxmlInWarehouse:
    def test_compiled_document_persists_and_queries(self, tmp_path, compiled_catalog):
        with Warehouse.create(tmp_path / "wh", compiled_catalog) as wh:
            answers = wh._query_answers('//sku[="laptop"]')
            assert answers[0].probability == pytest.approx(0.9)
        with Warehouse.open(tmp_path / "wh") as wh:
            answers = wh._query_answers('//sku[="laptop"]')
            assert answers[0].probability == pytest.approx(0.9)

    def test_update_on_compiled_document_commutes(self, compiled_catalog):
        tx = UpdateTransaction(
            parse_pattern('/catalog { entry { sku[="phone"], price[$p] } }'),
            [DeleteOperation("p")],
            0.7,
        )
        truth = update_possible_worlds(to_possible_worlds(compiled_catalog), tx)
        work = compiled_catalog.clone()
        from repro.core.update import apply_update

        apply_update(work, tx)
        assert to_possible_worlds(work).same_distribution(truth, 1e-9)

    def test_negated_query_on_compiled_document(self, compiled_catalog):
        # Entries whose price survived nowhere cannot exist by construction;
        # ask for a catalog with no phone entry: P(¬phone) = 0.6.
        probability = probability_at_least(
            compiled_catalog, parse_pattern('//sku[="phone"]'), 1
        )
        assert probability == pytest.approx(0.4)
        answers_without = parse_pattern('/catalog { !entry { sku[="phone"] } }')
        from repro.core.query import query_fuzzy_tree

        answers = query_fuzzy_tree(compiled_catalog, answers_without)
        assert answers[0].probability == pytest.approx(0.6)

    def test_aggregates_on_compiled_document(self, compiled_catalog):
        entries = parse_pattern("/catalog { entry }")
        assert expected_matches(compiled_catalog, entries) == pytest.approx(1.3)

    def test_cli_over_compiled_document(self, tmp_path, compiled_catalog, capsys):
        doc_file = tmp_path / "catalog.xml"
        doc_file.write_text(fuzzy_to_string(compiled_catalog))
        path = tmp_path / "wh"
        assert main(["init", str(path), "--document", str(doc_file)]) == 0
        capsys.readouterr()
        assert main(["query", str(path), '//sku[="laptop"]']) == 0
        assert "0.900000" in capsys.readouterr().out
        assert main(["worlds", str(path)]) == 0
        worlds_output = capsys.readouterr().out
        assert "catalog" in worlds_output


class TestNegatedQueriesInWarehouse:
    def test_warehouse_update_with_negated_query(self, tmp_path):
        from repro import Condition, EventTable, FuzzyNode, FuzzyTree

        events = EventTable({"w1": 0.5})
        doc = FuzzyTree(
            FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1")),
                    FuzzyNode("C"),
                ],
            ),
            events,
        )
        baseline = to_possible_worlds(doc)
        tx = UpdateTransaction(
            parse_pattern("/A { !B, C[$c] }"), [DeleteOperation("c")], 0.8
        )
        truth = update_possible_worlds(baseline, tx)
        with Warehouse.create(tmp_path / "wh", doc) as wh:
            wh._commit_update(tx)
            assert to_possible_worlds(wh.document).same_distribution(truth, 1e-9)
        # And it survives a reopen byte-exactly.
        with Warehouse.open(tmp_path / "wh") as wh:
            assert to_possible_worlds(wh.document).same_distribution(truth, 1e-9)
