"""Tests for schema validation (repro.trees.schema)."""

import pytest

from repro.errors import TreeError
from repro.trees import NodeRule, Schema, tree


@pytest.fixture
def directory_schema():
    return Schema.from_spec(
        {
            "directory": ["person"],
            "person": ["name", "email", "phone"],
            "name": ["#text"],
            "email": ["#text"],
            "phone": ["#text"],
        },
        root_label="directory",
        allow_unknown_labels=False,
    )


class TestNodeRule:
    def test_bad_value_policy(self):
        with pytest.raises(TreeError):
            NodeRule(value="maybe")

    def test_required_value_with_children_rejected(self):
        with pytest.raises(TreeError):
            NodeRule(children=frozenset({"x"}), value="required")

    def test_children_normalised_to_frozenset(self):
        rule = NodeRule(children={"a", "b"})  # type: ignore[arg-type]
        assert isinstance(rule.children, frozenset)


class TestChecking:
    def test_valid_document(self, directory_schema):
        doc = tree(
            "directory",
            tree("person", tree("name", "alice"), tree("email", "a@x.org")),
        )
        assert directory_schema.is_valid(doc)
        directory_schema.check(doc)  # no raise

    def test_wrong_root(self, directory_schema):
        violations = directory_schema.violations(tree("catalog"))
        assert any(v.kind == "root-label" for v in violations)

    def test_unexpected_child_label(self, directory_schema):
        doc = tree("directory", tree("person", tree("ssn", "123")))
        kinds = {v.kind for v in directory_schema.violations(doc)}
        assert "child-label" in kinds

    def test_unknown_label_in_closed_schema(self, directory_schema):
        doc = tree("directory", tree("person", tree("name", "x")), tree("audit"))
        kinds = {v.kind for v in directory_schema.violations(doc)}
        assert "unknown-label" in kinds and "child-label" in kinds

    def test_unknown_label_in_open_schema_ok(self):
        schema = Schema.from_spec({"a": ["b"]})
        assert schema.is_valid(tree("a", tree("b", tree("mystery"))))

    def test_value_required(self, directory_schema):
        doc = tree("directory", tree("person", tree("name")))
        kinds = {v.kind for v in directory_schema.violations(doc)}
        assert "value-required" in kinds

    def test_value_forbidden(self):
        schema = Schema({"a": NodeRule(value="forbidden")})
        assert not schema.is_valid(tree("a", "text"))

    def test_check_raises_with_summary(self, directory_schema):
        with pytest.raises(TreeError, match="schema violations"):
            directory_schema.check(tree("oops"))


class TestFromSpec:
    def test_text_mixed_with_children_rejected(self):
        with pytest.raises(TreeError, match="mixed"):
            Schema.from_spec({"a": ["#text", "b"]})

    def test_none_allows_anything(self):
        schema = Schema.from_spec({"a": None})
        assert schema.is_valid(tree("a", tree("anything", "v")))


class TestMonotonicity:
    """Underlying-tree validity implies every-world validity."""

    def test_all_worlds_valid_when_underlying_is(self, directory_schema):
        from repro import Condition, EventTable, FuzzyNode, FuzzyTree, to_possible_worlds

        events = EventTable({"w1": 0.5, "w2": 0.5})
        root = FuzzyNode(
            "directory",
            children=[
                FuzzyNode(
                    "person",
                    condition=Condition.of("w1"),
                    children=[
                        FuzzyNode("name", value="alice"),
                        FuzzyNode("email", value="a@x.org", condition=Condition.of("w2")),
                    ],
                )
            ],
        )
        doc = FuzzyTree(root, events)
        assert directory_schema.is_valid(doc.root)
        for world in to_possible_worlds(doc):
            assert directory_schema.is_valid(world.tree), world
