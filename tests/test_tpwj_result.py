"""Unit tests for answer construction (repro.tpwj.result)."""

from repro.tpwj import answer_tree, distinct_answers, find_matches, parse_pattern
from repro.trees import tree


class TestAnswerTree:
    def test_minimal_subtree_of_match(self):
        doc = tree("A", tree("B", "x"), tree("C", tree("D", "y")))
        pattern = parse_pattern("A { C { D } }")
        match = find_matches(pattern, doc)[0]
        answer = answer_tree(doc, match)
        # B is not part of the match: pruned.
        assert answer.canonical() == "A(C(D='y'))"

    def test_answer_rooted_at_document_root_even_for_deep_matches(self):
        doc = tree("A", tree("B", tree("C")))
        pattern = parse_pattern("C")
        match = find_matches(pattern, doc)[0]
        assert answer_tree(doc, match).canonical() == "A(B(C))"

    def test_answer_is_fresh_copy(self):
        doc = tree("A", tree("B"))
        match = find_matches(parse_pattern("B"), doc)[0]
        answer = answer_tree(doc, match)
        answer.children[0].detach()
        assert doc.size() == 2  # original intact

    def test_join_answer_contains_both_sides(self):
        doc = tree("A", tree("B", "v"), tree("C", tree("D", "v")), tree("E"))
        pattern = parse_pattern("A { B[$x], C { D[$x] } }")
        match = find_matches(pattern, doc)[0]
        assert answer_tree(doc, match).canonical() == "A(B='v',C(D='v'))"


class TestDistinctAnswers:
    def test_different_matches_same_answer_collapse(self):
        doc = tree("A", tree("B", "x"), tree("B", "x"))
        matches = find_matches(parse_pattern("A { B }"), doc)
        assert len(matches) == 2
        answers = distinct_answers(doc, matches)
        assert len(answers) == 1

    def test_distinct_answers_stay_distinct(self):
        doc = tree("A", tree("B", "x"), tree("B", "y"))
        matches = find_matches(parse_pattern("A { B }"), doc)
        answers = distinct_answers(doc, matches)
        assert len(answers) == 2

    def test_empty_matches(self):
        doc = tree("A")
        assert distinct_answers(doc, []) == {}
