"""Tests for the negation extension (paper, slide 19 "perspectives").

A ``!``-prefixed subpattern requires that its parent's image has *no*
embedding of it.  On plain trees this is a structural check; on fuzzy
trees the presence of the forbidden subtree varies across worlds, so
the evaluator folds the complement of the embeddings' conditions into
the answer conditions — and must still commute with the possible-worlds
semantics.
"""

import random

import pytest

from repro.errors import QueryError
from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    UpdateTransaction,
    query_possible_worlds,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.tpwj.parser import parse_pattern
from repro.core.query import query_fuzzy_tree
from repro.tpwj import MatchConfig, find_embeddings, find_matches, format_pattern
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees import tree


class TestParsing:
    def test_negated_child(self):
        pattern = parse_pattern("A { B, !C }")
        assert [c.negated for c in pattern.root.children] == [False, True]

    def test_negated_descendant(self):
        pattern = parse_pattern("A { !//C }")
        child = pattern.root.children[0]
        assert child.negated and child.descendant

    def test_negated_subtree_with_structure(self):
        pattern = parse_pattern('A { !C { D[="x"] } }')
        constraint = pattern.root.children[0]
        assert constraint.negated
        assert constraint.children[0].value == "x"

    @pytest.mark.parametrize("text", ["A { B, !C }", "A { !//C { D } }", "A { !* }"])
    def test_format_roundtrip(self, text):
        once = format_pattern(parse_pattern(text))
        assert format_pattern(parse_pattern(once)) == once


class TestValidation:
    def test_negated_root_rejected(self):
        with pytest.raises(QueryError, match="root cannot be negated"):
            Pattern(PatternNode("A", negated=True))

    def test_variable_inside_negation_rejected(self):
        with pytest.raises(QueryError, match="negated subpattern"):
            parse_pattern("A { !C[$x] }")

    def test_variable_deep_inside_negation_rejected(self):
        with pytest.raises(QueryError, match="negated"):
            parse_pattern("A { !C { D[$x] } }")

    def test_nested_negation_rejected(self):
        root = PatternNode("A")
        outer = PatternNode("B", negated=True)
        outer.add_child(PatternNode("C", negated=True))
        root.add_child(outer)
        with pytest.raises(QueryError, match="nested negation"):
            Pattern(root)

    def test_positive_nodes_excludes_negated_subtrees(self):
        pattern = parse_pattern("A { B, !C { D } }")
        labels = [n.label for n in pattern.positive_nodes()]
        assert labels == ["A", "B"]
        assert [n.label for n in pattern.negated_constraints()] == ["C"]
        assert pattern.has_negation()


class TestPlainTreeSemantics:
    def test_absence_required(self):
        pattern = parse_pattern("A { B, !C }")
        assert len(find_matches(pattern, tree("A", tree("B")))) == 1
        assert len(find_matches(pattern, tree("A", tree("B"), tree("C")))) == 0

    def test_negated_descendant_axis(self):
        pattern = parse_pattern("A { !//C }")
        deep = tree("A", tree("B", tree("C")))
        assert len(find_matches(pattern, deep)) == 0
        shallow_only = tree("A", tree("B"))
        assert len(find_matches(pattern, shallow_only)) == 1

    def test_negated_child_axis_ignores_deeper(self):
        pattern = parse_pattern("A { !C }")
        deep = tree("A", tree("B", tree("C")))  # C is not a *child* of A
        assert len(find_matches(pattern, deep)) == 1

    def test_negated_subtree_structure(self):
        pattern = parse_pattern('A { !C { D } }')
        with_cd = tree("A", tree("C", tree("D")))
        with_c_only = tree("A", tree("C"))
        assert len(find_matches(pattern, with_cd)) == 0
        assert len(find_matches(pattern, with_c_only)) == 1

    def test_negated_value_test(self):
        pattern = parse_pattern('A { !C[="bad"] }')
        assert len(find_matches(pattern, tree("A", tree("C", "bad")))) == 0
        assert len(find_matches(pattern, tree("A", tree("C", "good")))) == 1

    def test_leaf_image_with_only_negated_children(self):
        # A leaf trivially satisfies "no C child".
        pattern = parse_pattern("E { !C }")
        assert len(find_matches(pattern, tree("E"))) == 1

    def test_honor_negation_off(self):
        pattern = parse_pattern("A { B, !C }")
        doc = tree("A", tree("B"), tree("C"))
        config = MatchConfig(honor_negation=False)
        assert len(find_matches(pattern, doc, config)) == 1


class TestFindEmbeddings:
    def test_child_axis(self):
        doc = tree("A", tree("C"), tree("C"), tree("B", tree("C")))
        pattern = parse_pattern("X { C }").root.children[0]  # a bare C child pattern
        embeddings = find_embeddings(pattern, doc)
        assert len(embeddings) == 2  # only A's direct C children

    def test_descendant_axis(self):
        doc = tree("A", tree("C"), tree("B", tree("C")))
        pattern = parse_pattern("X { //C }").root.children[0]
        assert len(find_embeddings(pattern, doc)) == 2

    def test_structured_embedding_maps_all_nodes(self):
        doc = tree("A", tree("C", tree("D"), tree("D")))
        pattern = parse_pattern("X { C { D } }").root.children[0]
        embeddings = find_embeddings(pattern, doc)
        assert len(embeddings) == 2  # two D choices
        assert all(len(e) == 2 for e in embeddings)


class TestFuzzySemantics:
    @pytest.fixture
    def doc(self):
        events = EventTable({"w1": 0.8, "w2": 0.7})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("w1", "!w2")),
                FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
            ],
        )
        return FuzzyTree(root, events)

    def test_no_b_answer_probability(self, doc):
        # A with C but no B: P(¬(w1 ∧ ¬w2)) = 1 - 0.8*0.3 = 0.76.
        answers = query_fuzzy_tree(doc, parse_pattern("/A { C, !B }"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(0.76)

    def test_certainly_absent_negation_is_free(self, doc):
        answers = query_fuzzy_tree(doc, parse_pattern("/A { C, !Z }"))
        assert answers[0].probability == pytest.approx(1.0)

    def test_certainly_present_negation_kills_answer(self):
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B"), FuzzyNode("C")]), EventTable()
        )
        assert query_fuzzy_tree(doc, parse_pattern("/A { C, !B }")) == []

    @pytest.mark.parametrize(
        "pattern_text",
        ["/A { C, !B }", "/A { !//D }", "/A { C { !D } }", "/A { !B, !//D }"],
    )
    def test_commutes_with_worlds(self, doc, pattern_text):
        pattern = parse_pattern(pattern_text)
        via_fuzzy = {
            a.tree.canonical(): a.probability for a in query_fuzzy_tree(doc, pattern)
        }
        via_worlds = {
            w.tree.canonical(): w.probability
            for w in query_possible_worlds(to_possible_worlds(doc), pattern)
        }
        assert set(via_fuzzy) == set(via_worlds)
        for key in via_worlds:
            assert via_fuzzy[key] == pytest.approx(via_worlds[key], abs=1e-9)

    def test_update_with_negated_query_commutes(self, doc):
        # Delete C's D when B is absent, confidence 0.9.
        tx = UpdateTransaction(
            parse_pattern("/A { !B, C { D[$d] } }"),
            [DeleteOperation("d")],
            0.9,
        )
        truth = update_possible_worlds(to_possible_worlds(doc), tx)
        apply_update(doc, tx)
        assert to_possible_worlds(doc).same_distribution(truth, 1e-12)

    def test_random_instances_commute(self):
        from repro.workloads import (
            FuzzyWorkloadConfig,
            random_fuzzy_tree,
            random_query_for,
        )

        rng = random.Random(99)
        checked = 0
        while checked < 15:
            fuzzy = random_fuzzy_tree(rng, FuzzyWorkloadConfig(n_events=3))
            pattern = random_query_for(rng, fuzzy.root, max_nodes=3, join_probability=0.0)
            if pattern.root.value is not None:
                continue
            pattern.root.add_child(
                PatternNode(
                    rng.choice(["A", "B", "C", "D"]),
                    descendant=rng.random() < 0.5,
                    negated=True,
                )
            )
            via_fuzzy = {
                a.tree.canonical(): a.probability
                for a in query_fuzzy_tree(fuzzy, pattern)
            }
            via_worlds = {
                w.tree.canonical(): w.probability
                for w in query_possible_worlds(to_possible_worlds(fuzzy), pattern)
            }
            assert set(via_fuzzy) == set(via_worlds)
            for key in via_worlds:
                assert via_fuzzy[key] == pytest.approx(via_worlds[key], abs=1e-9)
            checked += 1
