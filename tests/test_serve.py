"""Tests for the serving layer: SessionPool, Collection, CLI surface."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.cli import main
from repro.errors import WarehouseError
from repro.serve import Collection, SessionPool, connect_collection
from repro.serve.pool import default_workers


def _insert_email(value: str, confidence: float = 0.9):
    return (
        repro.update(repro.pattern("person", variable="p", anchored=True))
        .insert("p", repro.tree("email", value))
        .confidence(confidence)
    )


@pytest.fixture
def collection(tmp_path):
    with repro.connect_collection(
        tmp_path / "coll", create=True, workers=4
    ) as collection:
        for key in ("alice", "bob", "carol"):
            collection.create_document(key, root="person")
            for i in range(3):
                collection.update(key, _insert_email(f"{key}{i}@x", 0.5 + 0.1 * i))
        yield collection


class TestSessionPool:
    def test_default_workers_bounds(self):
        assert 2 <= default_workers() <= 8

    def test_submit_and_stats(self):
        with SessionPool(workers=2) as pool:
            futures = [pool.submit(lambda x: x * x, n) for n in range(5)]
            assert [f.result() for f in futures] == [0, 1, 4, 9, 16]
            info = pool.stats()
            assert info["workers"] == 2
            assert info["submitted_tasks"] == 5
            assert info["active_tasks"] == 0
        assert pool.stats()["closed"]

    def test_submit_after_shutdown_raises(self):
        pool = SessionPool(workers=1)
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(WarehouseError):
            pool.submit(lambda: None)

    def test_invalid_workers(self):
        with pytest.raises(WarehouseError):
            SessionPool(workers=0)


class TestCollectionLifecycle:
    def test_create_and_reopen(self, tmp_path):
        path = tmp_path / "c"
        with repro.connect_collection(path, create=True) as collection:
            collection.create_document("d1", root="person")
            assert collection.keys() == ["d1"]
        assert Collection.is_collection(path)
        with repro.connect_collection(path) as collection:
            assert collection.keys() == ["d1"]
            assert len(collection) == 1
            assert "d1" in collection

    def test_create_twice_fails(self, tmp_path):
        path = tmp_path / "c"
        connect_collection(path, create=True).close()
        with pytest.raises(WarehouseError):
            connect_collection(path, create=True)

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(WarehouseError):
            connect_collection(tmp_path / "nope")

    def test_plain_warehouse_is_not_a_collection(self, tmp_path):
        repro.connect(tmp_path / "wh", create=True, root="r").close()
        assert not Collection.is_collection(tmp_path / "wh")

    def test_invalid_keys_rejected(self, collection):
        for bad in ("", ".hidden", "a/b", "a b", 7):
            with pytest.raises(WarehouseError):
                collection.create_document(bad, root="x")

    def test_duplicate_key_rejected(self, collection):
        with pytest.raises(WarehouseError):
            collection.create_document("alice", root="person")

    def test_unknown_document_rejected(self, collection):
        with pytest.raises(WarehouseError):
            collection.document("nobody")
        with pytest.raises(WarehouseError):
            collection.update("nobody", _insert_email("x@x"))

    def test_closed_collection_raises(self, tmp_path):
        collection = connect_collection(tmp_path / "c", create=True)
        collection.close()
        collection.close()  # idempotent
        with pytest.raises(WarehouseError):
            collection.query("//x")


class TestRouting:
    def test_update_routes_to_one_shard(self, collection):
        before = {
            key: collection.document(key).sequence for key in collection.keys()
        }
        collection.update("bob", _insert_email("routed@x"))
        after = {key: collection.document(key).sequence for key in collection.keys()}
        assert after["bob"] == before["bob"] + 1
        assert after["alice"] == before["alice"]
        assert after["carol"] == before["carol"]
        values = {
            row.tree.canonical()
            for row in collection.query("//email", keys=["bob"])
        }
        assert "person(email='routed@x')" in values

    def test_update_many_is_one_commit(self, collection):
        before = collection.document("carol").sequence
        reports = collection.update_many(
            "carol", [_insert_email(f"batch{i}@x") for i in range(3)]
        )
        assert len(reports) == 3
        assert collection.document("carol").sequence == before + 1

    def test_parallel_writers_on_distinct_shards(self, collection):
        errors: list = []

        def writer(key: str) -> None:
            try:
                for i in range(8):
                    collection.update(key, _insert_email(f"{key}-par{i}@x"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((key, repr(exc)))

        threads = [
            threading.Thread(target=writer, args=(key,))
            for key in collection.keys()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for key in collection.keys():
            count = collection.query("//email", keys=[key]).count()
            assert count == 3 + 8


class TestFanOut:
    def test_merge_order_is_shard_then_row(self, collection):
        merged = [(row.document, row.tree.canonical()) for row in
                  collection.query("//email")]
        expected = []
        for key in collection.keys():  # sorted key order
            expected.extend(
                (key, row.tree.canonical())
                for row in collection.document(key).query("//email")
            )
        assert merged == expected

    def test_reiteration_is_deterministic(self, collection):
        results = collection.query("//email")
        first = [(r.document, r.tree.canonical(), r.probability) for r in results]
        second = [(r.document, r.tree.canonical(), r.probability) for r in results]
        assert first == second

    def test_limit_is_a_prefix_and_short_circuits(self, collection):
        full = [(r.document, r.tree.canonical()) for r in collection.query("//email")]
        for n in (0, 1, 4, 7, 100):
            limited = [
                (r.document, r.tree.canonical())
                for r in collection.query("//email").limit(n)
            ]
            assert limited == full[:n]
        assert collection.query("//email").limit(2).count() == 2

    def test_first_and_count(self, collection):
        first = collection.query("//email").first()
        assert first is not None and first.document == "alice"
        assert collection.query("//email").count() == 9
        assert collection.query("//missing").first() is None

    def test_keys_subset(self, collection):
        rows = collection.query("//email", keys=["carol", "alice"]).all()
        assert {row.document for row in rows} == {"alice", "carol"}
        with pytest.raises(WarehouseError):
            collection.query("//email", keys=["ghost"])

    def test_answers_rank_within_shards(self, collection):
        answers = collection.query("//email").answers()
        assert len(answers) == 9
        seen_keys = [key for key, _ in answers]
        assert seen_keys == sorted(seen_keys)
        by_key: dict[str, list[float]] = {}
        for key, answer in answers:
            by_key.setdefault(key, []).append(answer.probability)
        for probabilities in by_key.values():
            assert probabilities == sorted(probabilities, reverse=True)

    def test_shard_rows_carry_bindings_and_provenance(self, collection):
        row = collection.query("//email[$e]").first()
        assert row.bindings()["e"] == "alice0@x"
        records = row.explain()
        assert records and all("probability" in record for record in records)
        assert 0.0 < row.probability <= 1.0

    def test_rows_probabilities_match_direct_session(self, collection):
        for key in collection.keys():
            direct = [
                (row.tree.canonical(), row.probability)
                for row in collection.document(key).query("//email")
            ]
            fanned = [
                (row.tree.canonical(), row.probability)
                for row in collection.query("//email", keys=[key])
            ]
            assert direct == fanned


class TestCollectionStats:
    def test_aggregates_and_pool(self, collection):
        info = collection.stats()
        assert info["document_count"] == 3
        assert set(info["documents"]) == {"alice", "bob", "carol"}
        assert info["totals"]["nodes"] == sum(
            doc["nodes"] for doc in info["documents"].values()
        )
        assert info["pool"]["workers"] == 4
        assert info["totals"]["read_sessions"] == 0


class TestServeCli:
    @pytest.fixture
    def cli_collection(self, tmp_path):
        path = tmp_path / "cli-coll"
        with repro.connect_collection(path, create=True) as collection:
            for key in ("a1", "b2"):
                collection.create_document(key, root="person")
                collection.update(key, _insert_email(f"{key}@x"))
        return path

    def test_serve_stats_on_warehouse(self, tmp_path, capsys):
        path = tmp_path / "wh"
        assert main(["init", str(path), "--root", "directory"]) == 0
        capsys.readouterr()
        assert main(["serve-stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "read_sessions: 0" in out and "shannon_cache_entries" in out

    def test_serve_stats_on_collection(self, cli_collection, capsys):
        assert main(["serve-stats", str(cli_collection)]) == 0
        out = capsys.readouterr().out
        assert "documents: 2" in out
        assert "pool:" in out and "a1:" in out and "b2:" in out

    def test_query_fans_out(self, cli_collection, capsys):
        assert main(["query", str(cli_collection), "//email"]) == 0
        out = capsys.readouterr().out
        assert "a1  " in out and "b2  " in out

    def test_query_stream_with_limit(self, cli_collection, capsys):
        assert main(
            ["query", str(cli_collection), "//email", "--stream", "--limit", "1"]
        ) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 1 and lines[0].startswith("a1")

    def test_update_requires_doc_key(self, cli_collection, tmp_path, capsys):
        tx = tmp_path / "tx.xml"
        tx.write_text(
            '<xu:modifications xmlns:xu="urn:repro:xupdate" '
            'query="person[$p]" confidence="0.7">'
            '<xu:insert anchor="p"><phone>555</phone></xu:insert>'
            "</xu:modifications>"
        )
        assert main(["update", str(cli_collection), "--xupdate", str(tx)]) == 2
        assert "--doc" in capsys.readouterr().err
        assert main(
            ["update", str(cli_collection), "--xupdate", str(tx), "--doc", "b2"]
        ) == 0
        assert "applied: True" in capsys.readouterr().out
        capsys.readouterr()
        assert main(["query", str(cli_collection), "//phone", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "b2" in out and "a1" not in out

    def test_doc_flag_rejected_on_plain_warehouse(self, tmp_path, capsys):
        path = tmp_path / "wh"
        assert main(["init", str(path), "--root", "person"]) == 0
        tx = tmp_path / "tx.xml"
        tx.write_text(
            '<xu:modifications xmlns:xu="urn:repro:xupdate" '
            'query="person[$p]" confidence="0.7">'
            '<xu:insert anchor="p"><phone>555</phone></xu:insert>'
            "</xu:modifications>"
        )
        capsys.readouterr()
        assert main(
            ["update", str(path), "--xupdate", str(tx), "--doc", "x"]
        ) == 2
        assert "--doc only applies" in capsys.readouterr().err


class TestPoolShutdownRace:
    """Shutdown ordering contracts: a task accepted by submit() always
    runs (it is queued ahead of the poison pill under the pool lock);
    a submit that loses to shutdown raises WarehouseError; a wedged
    worker is abandoned with a log line, never an interpreter hang."""

    def test_submit_after_shutdown_raises(self):
        pool = SessionPool(workers=1)
        future = pool.submit(lambda: 42)
        pool.shutdown()
        assert future.result(timeout=30) == 42
        with pytest.raises(WarehouseError):
            pool.submit(lambda: None)
        info = pool.stats()
        assert info["closed"] and info["active_tasks"] == 0

    def test_shutdown_logs_and_abandons_stragglers(self, caplog):
        pool = SessionPool(workers=1)
        release = threading.Event()
        pool.submit(release.wait)
        with caplog.at_level("WARNING", logger="repro.serve"):
            pool.shutdown(timeout=0.2)
        try:
            assert any(
                "straggler" in record.message for record in caplog.records
            )
        finally:
            release.set()

    @pytest.mark.timeout(120)
    def test_submit_vs_shutdown_hammer(self):
        for _ in range(25):
            pool = SessionPool(workers=2)
            errors: list[BaseException] = []
            futures = []
            futures_lock = threading.Lock()
            barrier = threading.Barrier(5)

            def submitter():
                barrier.wait()
                for _ in range(100):
                    try:
                        future = pool.submit(lambda: 1)
                    except WarehouseError:
                        return  # the documented loser-of-the-race outcome
                    except BaseException as exc:  # noqa: BLE001 - the bug
                        errors.append(exc)
                        return
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            for thread in threads:
                thread.start()
            barrier.wait()
            pool.shutdown()
            for thread in threads:
                thread.join(30)
            assert not errors, f"bare exception escaped submit: {errors!r}"
            for future in futures:
                if not future.cancelled():
                    assert future.result(timeout=30) == 1
            assert pool.stats()["active_tasks"] == 0


class TestAbandonMidMerge:
    """Regression: abandoning a fan-out mid-merge must stop shard tasks
    that *start after* the cancel decision, not just cancel queued ones."""

    def _assert_settles_clean(self, collection, timeout=15.0):
        deadline = time.monotonic() + timeout

        def settled():
            if collection.stats()["pool"]["active_tasks"] != 0:
                return False
            return all(
                collection.document(key).stats()["read_sessions"] == 0
                for key in collection.keys()
            )

        while time.monotonic() < deadline:
            if settled():
                return
            time.sleep(0.01)
        info = {
            "pool": collection.stats()["pool"],
            "read_sessions": {
                key: collection.document(key).stats()["read_sessions"]
                for key in collection.keys()
            },
        }
        raise AssertionError(f"fan-out never settled after abandon: {info}")

    def test_abandon_mid_merge_releases_everything(self, collection):
        stream = iter(collection.query("//email"))
        row = next(stream)
        assert row.document == "alice"
        stream.close()
        self._assert_settles_clean(collection)

    def test_abandon_with_single_worker_pool(self, tmp_path):
        # workers=1 serializes the shards, so later shard tasks start
        # only after the abandon decision — the exact racy window.
        with repro.connect_collection(
            tmp_path / "c", create=True, workers=1
        ) as collection:
            for key in ("a", "b", "c", "d", "e", "f"):
                collection.create_document(key, root="person")
                for i in range(4):
                    collection.update(key, _insert_email(f"{key}{i}@x"))
            for _ in range(10):
                stream = iter(collection.query("//email"))
                assert next(stream).document == "a"
                stream.close()
                self._assert_settles_clean(collection)
