"""Unit tests for the tree construction helpers (repro.trees.builder)."""

import pytest

from repro.errors import TreeError
from repro.trees import Node, from_spec, to_spec, tree


class TestTreeLiteral:
    def test_leaf(self):
        node = tree("A")
        assert node.label == "A" and node.is_leaf and node.value is None

    def test_leaf_with_value(self):
        node = tree("A", "foo")
        assert node.value == "foo"

    def test_nested(self):
        node = tree("A", tree("B", "x"), tree("C"))
        assert [c.label for c in node.children] == ["B", "C"]

    def test_two_values_rejected(self):
        with pytest.raises(TreeError, match="two text values"):
            tree("A", "x", "y")

    def test_value_plus_children_rejected(self):
        with pytest.raises(TreeError, match="no mixed content"):
            tree("A", "x", tree("B"))

    def test_bad_argument_type_rejected(self):
        with pytest.raises(TreeError):
            tree("A", 42)  # type: ignore[arg-type]


class TestSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "A",
            ("A", "foo"),
            ("A", ["B", ("C", "bar")]),
            ("A", [("B", ["C"]), "D"]),
        ],
    )
    def test_roundtrip(self, spec):
        assert to_spec(from_spec(spec)) == spec

    def test_none_payload_means_leaf(self):
        node = from_spec(("A", None))
        assert node.is_leaf and node.value is None

    def test_matches_literal_builder(self):
        via_spec = from_spec(("A", [("B", "x"), "C"]))
        via_literal = tree("A", tree("B", "x"), tree("C"))
        assert via_spec.equals(via_literal)

    @pytest.mark.parametrize("bad", [42, ("A",), ("A", 42), (1, "x"), ["A"]])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(TreeError, match="invalid tree spec"):
            from_spec(bad)

    def test_to_spec_of_internal_node(self):
        node = Node("A", children=[Node("B")])
        assert to_spec(node) == ("A", ["B"])
