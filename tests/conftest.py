"""Shared fixtures: the paper's worked examples and random-instance helpers."""

from __future__ import annotations

import random

import pytest

from repro import Condition, EventTable, FuzzyNode, FuzzyTree


def pytest_configure(config):
    # The concurrency stress tests mark themselves with @timeout so a
    # deadlock fails fast on CI (where pytest-timeout is installed)
    # instead of hanging the runner.  Locally the plugin may be absent;
    # register the marker so the tests still run (without enforcement)
    # rather than warn.
    if not config.pluginmanager.hasplugin("timeout"):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test after this many seconds "
            "(enforced by pytest-timeout when installed)",
        )


@pytest.fixture
def slide12_doc() -> FuzzyTree:
    """The fuzzy tree of slide 12: A { B[w1,¬w2], C { D[w2] } }, w1=0.8 w2=0.7.

    Its possible worlds are A(C)=0.06, A(C(D))=0.70, A(B,C)=0.24.
    """
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1", "!w2")),
            FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
        ],
    )
    return FuzzyTree(root, events)


@pytest.fixture
def slide15_doc() -> FuzzyTree:
    """The fuzzy tree of slide 15 before the update: A { B[w1], C[w2] }."""
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1")),
            FuzzyNode("C", condition=Condition.of("w2")),
        ],
    )
    return FuzzyTree(root, events)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for seed-driven tests."""
    return random.Random(20060328)  # the paper's presentation date
