"""Fault-tolerance tier: replication, failover, retry policy, chaos.

The process tests spawn real worker processes and kill them for real
(SIGKILL, dropped pipes, corrupted frames, injected slowness) — driven
by the seeded :class:`~repro.serve.cluster.FaultPlan` so every run
replays the same schedule.  The invariants under test are the
availability contract of ``replication_factor=2``:

* a read never surfaces an error while at most one worker is down;
* an acknowledged write survives any single worker death, including
  the "committed, never acknowledged" window (``after_commit``);
* replicas that diverged or missed write-throughs are healed from the
  primary's folded snapshot without operator action.

The wire-corruption property tests assert the failure-family split the
failover path relies on: damaged bytes raise ``WireError`` (retry on
the same pipe), never ``EOFError`` (respawn) — and vice versa.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.errors import ShardUnavailableError, WarehouseError
from repro.serve import connect_collection
from repro.serve.cluster import (
    ChaosMonkey,
    FaultPlan,
    ProcessCollection,
    RetryPolicy,
    call_with_retry,
    is_retryable,
    kill_worker,
)
from repro.serve.cluster.chaos import Fault
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.wire import (
    FRAME_FORMAT_VERSION,
    Verb,
    WireError,
    decode_frame,
    encode_frame,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in CI
    HAVE_HYPOTHESIS = False

KEYS = ("alice", "bob", "carol", "dave", "erin")
_PATTERN = "/person { email [$e] }"


def _insert_email(value: str, confidence: float = 0.9):
    return (
        repro.update(repro.pattern("person", variable="p", anchored=True))
        .insert("p", repro.tree("email", value))
        .confidence(confidence)
    )


def _seed_collection(path) -> None:
    with connect_collection(path, create=True, workers=2) as seed:
        for key in KEYS:
            seed.create_document(key, root="person")
            seed.update(key, _insert_email(f"{key}0@x", 0.6))


def _wait_workers_alive(cluster, deadline: float = 60.0) -> None:
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if all(info["alive"] for info in cluster.workers().values()):
            return
        time.sleep(0.05)
    raise AssertionError("workers never all came back alive")


def _emails(cluster, key: str) -> list[str]:
    return sorted(
        row.bindings()["e"] for row in cluster.query(_PATTERN, keys=[key])
    )


@pytest.fixture(scope="module")
def replicated_cluster(tmp_path_factory):
    """One shared R=2 cluster: spawning three interpreters per test
    would dominate the suite's runtime."""
    path = tmp_path_factory.mktemp("faults") / "coll"
    _seed_collection(path)
    cluster = ProcessCollection(
        path,
        shard_processes=3,
        replication_factor=2,
        observability=None,
        fault_injection=True,
        attempt_timeout=2.0,
        query_deadline=30.0,
    )
    cluster.await_replication(60.0)
    yield cluster
    cluster.close()


# ----------------------------------------------------------------------
# Wire corruption: the WireError-vs-EOFError family split
# ----------------------------------------------------------------------


class TestWireCorruption:
    """Bit flips anywhere in a frame must decode to WireError — never
    to a silent success (misread data) and never to EOFError (which
    would misclassify damage as worker death and trigger a respawn)."""

    FRAME = encode_frame(Verb.QUERY, 0x0123456789ABCDEF, {"keys": ["alice"]})

    def _flip(self, frame: bytes, bit: int) -> bytes:
        damaged = bytearray(frame)
        damaged[bit // 8] ^= 1 << (bit % 8)
        return bytes(damaged)

    @pytest.mark.parametrize(
        ("field", "offset", "size"),
        [
            ("length", 0, 4),
            ("version", 4, 1),
            ("verb", 5, 1),
            ("request_id", 6, 8),
            ("crc", 14, 4),
        ],
    )
    def test_header_field_flips_rejected(self, field, offset, size):
        for bit in range(offset * 8, (offset + size) * 8):
            with pytest.raises(WireError):
                decode_frame(self._flip(self.FRAME, bit))

    def test_payload_flips_rejected(self):
        for bit in range(18 * 8, len(self.FRAME) * 8):
            with pytest.raises(WireError):
                decode_frame(self._flip(self.FRAME, bit))

    if HAVE_HYPOTHESIS:

        @given(
            verb=st.sampled_from(list(Verb)),
            request_id=st.integers(min_value=0, max_value=2**64 - 1),
            payload=st.dictionaries(
                st.text(min_size=1).filter(
                    lambda s: s not in ("__blob__", "__esc__")
                ),
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(),
                    st.text(),
                    st.binary(max_size=64),
                ),
                max_size=4,
            ),
            position=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        )
        @settings(max_examples=200, deadline=None)
        def test_any_single_bit_flip_is_wire_error(
            self, verb, request_id, payload, position
        ):
            frame = encode_frame(verb, request_id, payload)
            bit = int(position * len(frame) * 8)
            damaged = self._flip(frame, bit)
            # The family split: damage is WireError, never EOFError,
            # never a silently different decode.
            with pytest.raises(WireError):
                decode_frame(damaged)

        @given(
            verb=st.sampled_from(list(Verb)),
            request_id=st.integers(min_value=0, max_value=2**64 - 1),
            payload=st.recursive(
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(min_value=-(2**53), max_value=2**53),
                    st.text(max_size=20),
                    st.binary(max_size=64),
                ),
                lambda children: st.one_of(
                    st.lists(children, max_size=4),
                    st.dictionaries(st.text(max_size=8), children, max_size=4),
                ),
                max_leaves=12,
            ),
        )
        @settings(max_examples=150, deadline=None)
        def test_clean_frames_round_trip(self, verb, request_id, payload):
            decoded_verb, decoded_id, decoded = decode_frame(
                encode_frame(verb, request_id, payload)
            )
            assert decoded_verb is verb
            assert decoded_id == request_id
            assert decoded == payload

    def test_version_byte_is_tagged(self):
        assert self.FRAME[4] == FRAME_FORMAT_VERSION


# ----------------------------------------------------------------------
# Ring replica placement
# ----------------------------------------------------------------------


class TestReplicaPlacement:
    def test_successors_are_distinct_and_stable(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for i in range(100):
            owners = ring.successors(f"doc{i}", 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners == HashRing(["w0", "w1", "w2", "w3"]).successors(
                f"doc{i}", 3
            )
            assert owners[0] == ring.route(f"doc{i}")

    def test_factor_above_cluster_size_degrades(self):
        ring = HashRing(["w0", "w1"])
        assert sorted(ring.successors("doc", 5)) == ["w0", "w1"]

    def test_placement_survives_unrelated_ring_change(self):
        # Removing a worker must not reshuffle replica sets of keys it
        # never served — same consistency property as primary routing.
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = ring.placement([f"doc{i}" for i in range(200)], 2)
        ring.remove("w3")
        after = ring.placement([f"doc{i}" for i in range(200)], 2)
        changed = sum(1 for k in before if before[k] != after[k])
        untouched = sum(
            1 for k in before if "w3" not in before[k] and before[k] != after[k]
        )
        assert changed < 200  # only a fraction moved at all
        assert untouched == 0


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class _Retryable(Exception):
    retryable = True


class _Fatal(Exception):
    pass


class TestRetryPolicy:
    def _clocked(self):
        """A fake clock + sleep pair accumulating slept time."""
        state = {"now": 0.0}

        def clock():
            return state["now"]

        def sleep(seconds):
            state["now"] += seconds

        return state, clock, sleep

    def test_retries_until_success(self):
        import random

        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise _Retryable("boom")
            return "done"

        state, clock, sleep = self._clocked()
        result = call_with_retry(
            flaky,
            policy=RetryPolicy(base_delay=0.01, max_delay=0.1),
            rng=random.Random(7),
            clock=clock,
            sleep=sleep,
        )
        assert result == "done"
        assert len(attempts) == 4
        assert state["now"] > 0

    def test_non_retryable_is_immediate(self):
        calls = []

        def fatal():
            calls.append(1)
            raise _Fatal("no")

        with pytest.raises(_Fatal):
            call_with_retry(fatal, sleep=lambda s: None)
        assert len(calls) == 1

    def test_deadline_budget_reraises_original_error(self):
        import random

        state, clock, sleep = self._clocked()

        def always():
            raise _Retryable("still down")

        with pytest.raises(_Retryable, match="still down"):
            call_with_retry(
                always,
                deadline=0.5,
                policy=RetryPolicy(base_delay=0.05, max_delay=0.2),
                rng=random.Random(3),
                clock=clock,
                sleep=sleep,
            )
        # Never slept past the deadline: the budget is a hard wall.
        assert state["now"] < 0.5

    def test_max_attempts_cap(self):
        import random

        calls = []

        def always():
            calls.append(1)
            raise _Retryable("down")

        with pytest.raises(_Retryable):
            call_with_retry(
                always,
                policy=RetryPolicy(base_delay=0.001, max_attempts=3),
                rng=random.Random(1),
                sleep=lambda s: None,
            )
        assert len(calls) == 3

    def test_decorrelated_jitter_bounds(self):
        import random

        policy = RetryPolicy(base_delay=0.02, max_delay=0.5, multiplier=3.0)
        rng = random.Random(11)
        previous = None
        for _ in range(200):
            delay = policy.next_delay(previous, rng)
            assert 0.02 <= delay <= 0.5
            previous = delay

    def test_classification_contract(self):
        assert is_retryable(ShardUnavailableError("x"))
        assert not is_retryable(WarehouseError("x"))
        assert not is_retryable(ValueError("x"))

    def test_on_retry_observer(self):
        import random

        seen = []

        def twice():
            if len(seen) < 1:
                raise _Retryable("once")
            return "ok"

        call_with_retry(
            twice,
            policy=RetryPolicy(base_delay=0.001),
            rng=random.Random(5),
            on_retry=lambda attempt, delay, exc: seen.append((attempt, delay)),
            sleep=lambda s: None,
        )
        assert len(seen) == 1
        assert seen[0][0] == 1


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan(20060328, length=16)
        b = FaultPlan(20060328, length=16)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        assert list(FaultPlan(1, length=16)) != list(FaultPlan(2, length=16))

    def test_kill_only_plan(self):
        assert all(f.kind == "kill" for f in FaultPlan.kills(9, length=12))

    def test_unknown_kind_rejected(self):
        with pytest.raises(WarehouseError):
            Fault(kind="meteor", victim=0)
        with pytest.raises(WarehouseError):
            FaultPlan(1, kinds=("meteor",))


# ----------------------------------------------------------------------
# Replication + failover against live workers
# ----------------------------------------------------------------------


@pytest.mark.timeout(300)
class TestReplication:
    def test_replica_sets_cover_every_key(self, replicated_cluster):
        cluster = replicated_cluster
        for key in KEYS:
            placement = cluster.replicas_of(key)
            assert len(placement) == 2
            assert len(set(placement)) == 2

    def test_acked_write_survives_primary_kill(self, replicated_cluster):
        cluster = replicated_cluster
        key = "bob"
        placement = cluster.replicas_of(key)
        cluster.update(key, _insert_email("bob-acked@x"))
        cluster.await_replication(60.0)
        kill_worker(cluster, placement[0])
        emails = _emails(cluster, key)  # served by the replica
        assert "bob-acked@x" in emails
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)
        assert "bob-acked@x" in _emails(cluster, key)

    def test_commit_window_divergence_heals(self, replicated_cluster):
        """after_commit: the primary's WAL has the commit, no replica
        saw it.  The heal must bring replicas up to the replayed WAL,
        proven by reading from the replica after a second kill."""
        cluster = replicated_cluster
        key = "carol"
        placement = cluster.replicas_of(key)
        with pytest.raises(ShardUnavailableError):
            cluster.update(
                key, _insert_email("carol-window@x"), fault="after_commit"
            )
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)
        kill_worker(cluster, placement[0])
        assert "carol-window@x" in _emails(cluster, key)
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)

    def test_created_document_is_replicated(self, replicated_cluster):
        cluster = replicated_cluster
        cluster.create_document("frank", root="person")
        cluster.update("frank", _insert_email("frank0@x"))
        cluster.await_replication(60.0)
        placement = cluster.replicas_of("frank")
        if len(placement) > 1:
            kill_worker(cluster, placement[0])
            assert "frank0@x" in _emails(cluster, "frank")
            _wait_workers_alive(cluster)
            cluster.await_replication(60.0)

    def test_stats_and_workers_report_replication(self, replicated_cluster):
        cluster = replicated_cluster
        replication = cluster.stats()["cluster"]["replication"]
        assert replication["factor"] == 2
        workers = cluster.workers()
        replica_keys = set().union(
            *(set(info["replica_keys"]) for info in workers.values())
        )
        assert set(KEYS) <= replica_keys


@pytest.mark.timeout(300)
class TestChaosHarness:
    def test_mixed_fault_schedule_zero_read_errors(self, replicated_cluster):
        """One fault per step from a seeded plan — kills, dropped
        pipes, corrupted frames, slowness — with reads in between;
        every read must succeed with the full row set."""
        cluster = replicated_cluster
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)
        expected = {key: _emails(cluster, key) for key in KEYS}
        monkey = ChaosMonkey(cluster, FaultPlan(20060328, length=5))
        while True:
            fault = monkey.apply_next()
            if fault is None:
                break
            for key in KEYS:
                assert _emails(cluster, key) == expected[key], fault
            _wait_workers_alive(cluster)
            cluster.await_replication(60.0)
        kinds = {fault.kind for fault, _name in monkey.applied}
        assert kinds  # the plan actually did something

    def test_writes_survive_chaos_with_retry(self, replicated_cluster):
        """Acked writes under a kill-heavy schedule: the writer retries
        retryable failures within a budget; every acked value must be
        readable after the dust settles."""
        import random

        cluster = replicated_cluster
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)
        monkey = ChaosMonkey(cluster, FaultPlan.kills(7, length=2))
        acked = []
        for i in range(6):
            if i % 3 == 1:
                monkey.apply_next()
            value = f"dave-chaos{i}@x"

            def write():
                cluster.update("dave", _insert_email(value))

            call_with_retry(
                write,
                deadline=time.monotonic() + 60.0,
                rng=random.Random(i),
            )
            acked.append(value)
        _wait_workers_alive(cluster)
        cluster.await_replication(60.0)
        emails = _emails(cluster, "dave")
        for value in acked:
            assert value in emails


# ----------------------------------------------------------------------
# HTTP surface: Retry-After on shard 503s
# ----------------------------------------------------------------------


class TestRetryAfterHeader:
    def test_shard_unavailable_503_carries_retry_after(self):
        from repro.serve.http.app import error_body, retry_after_headers

        exc = ShardUnavailableError("worker w0 is down")
        status, payload = error_body(exc)
        assert status == 503
        assert retry_after_headers(exc, status) == (("Retry-After", "1"),)
        assert payload["error"]["family"] == "ShardUnavailableError"

    def test_other_errors_get_no_retry_after(self):
        from repro.serve.http.app import retry_after_headers

        assert retry_after_headers(WarehouseError("boom"), 500) == ()
        assert retry_after_headers(WarehouseError("draining"), 503) == ()
