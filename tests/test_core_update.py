"""Unit tests for probabilistic updates on fuzzy trees
(repro.core.update) — slides 14 and 15."""

import pytest

from repro.errors import UpdateError
from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    InsertOperation,
    UpdateTransaction,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.tpwj.parser import parse_pattern
from repro.trees import tree


def conditional_replacement_tx() -> UpdateTransaction:
    """Slide 15: replace C by D if B is present, confidence 0.9."""
    query = parse_pattern("/A[$a] { B, C[$c] }")
    return UpdateTransaction(
        query, [DeleteOperation("c"), InsertOperation("a", tree("D"))], 0.9
    )


class TestSlide15:
    def test_exact_fuzzy_tree_shape(self, slide15_doc):
        apply_update(slide15_doc, conditional_replacement_tx())
        by_condition = {
            str(node.condition): node.label
            for node in slide15_doc.iter_nodes()
            if node is not slide15_doc.root
        }
        # The four conditioned nodes of the slide-15 result figure.
        assert by_condition == {
            "w1": "B",
            "!w1 w2": "C",
            "w1 w2 !w3": "C",
            "w1 w2 w3": "D",
        }

    def test_event_table_extended_with_confidence(self, slide15_doc):
        report = apply_update(slide15_doc, conditional_replacement_tx())
        assert report.confidence_event == "w3"
        assert slide15_doc.events.probability("w3") == pytest.approx(0.9)

    def test_commutes_with_possible_worlds(self, slide15_doc):
        baseline = to_possible_worlds(slide15_doc)
        truth = update_possible_worlds(baseline, conditional_replacement_tx())
        apply_update(slide15_doc, conditional_replacement_tx())
        assert to_possible_worlds(slide15_doc).same_distribution(truth, 1e-12)

    def test_report_counters(self, slide15_doc):
        report = apply_update(slide15_doc, conditional_replacement_tx())
        assert report.applied
        assert report.matches == 1
        assert report.inserted_subtrees == 1
        assert report.deletion_targets == 1
        assert report.survivor_copies == 2


class TestInsertions:
    def test_inserted_root_carries_match_condition_and_confidence(self, slide12_doc):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N", "x"))], 0.5
        )
        apply_update(slide12_doc, tx)
        inserted = [n for n in slide12_doc.iter_nodes() if n.label == "N"]
        assert len(inserted) == 1
        # C is unconditioned, so the condition is just the fresh event.
        assert str(inserted[0].condition) == "w3"
        assert slide12_doc.events.probability("w3") == pytest.approx(0.5)

    def test_insertion_with_certainty_adds_no_event(self, slide12_doc):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree("N"))], 1.0
        )
        report = apply_update(slide12_doc, tx)
        assert report.confidence_event is None
        assert len(slide12_doc.events) == 2

    def test_inserted_descendants_unconditioned(self, slide12_doc):
        tx = UpdateTransaction(
            parse_pattern("C[$c]"),
            [InsertOperation("c", tree("N", tree("M")))],
            0.5,
        )
        apply_update(slide12_doc, tx)
        m = next(n for n in slide12_doc.iter_nodes() if n.label == "M")
        assert m.condition.is_true

    def test_insert_under_valued_leaf_skipped(self):
        events = EventTable()
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B", value="x")]), events
        )
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [InsertOperation("b", tree("N"))], 0.5
        )
        report = apply_update(doc, tx)
        assert report.skipped_insertions == 1
        assert report.inserted_subtrees == 0

    def test_one_insert_per_match(self):
        events = EventTable()
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B"), FuzzyNode("B")]), events
        )
        tx = UpdateTransaction(
            parse_pattern("B[$b]"), [InsertOperation("b", tree("N"))], 0.8
        )
        report = apply_update(doc, tx)
        assert report.inserted_subtrees == 2
        # Both insertions share the same confidence event.
        assert len(doc.events) == 1


class TestDeletions:
    def test_certain_deletion_removes_node(self):
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B"), FuzzyNode("C")]), EventTable()
        )
        tx = UpdateTransaction(parse_pattern("B[$b]"), [DeleteOperation("b")], 1.0)
        apply_update(doc, tx)
        assert doc.root.canonical() == "A(C)"

    def test_uncertain_deletion_splits_into_survivor(self):
        doc = FuzzyTree(FuzzyNode("A", children=[FuzzyNode("B")]), EventTable())
        tx = UpdateTransaction(parse_pattern("B[$b]"), [DeleteOperation("b")], 0.8)
        report = apply_update(doc, tx)
        assert report.survivor_copies == 1
        survivor = doc.root.children[0]
        assert survivor.label == "B" and str(survivor.condition) == "!w1"

    def test_delete_root_rejected(self, slide12_doc):
        tx = UpdateTransaction(parse_pattern("/A[$a]"), [DeleteOperation("a")], 1.0)
        with pytest.raises(UpdateError, match="document root"):
            apply_update(slide12_doc, tx)

    def test_nested_targets_deepest_first(self):
        # Delete both B and its child C with confidence < 1 — the
        # survivor structure must still commute with the worlds semantics.
        events = EventTable({"w1": 0.5})
        doc = FuzzyTree(
            FuzzyNode(
                "A",
                children=[
                    FuzzyNode(
                        "B",
                        condition=Condition.of("w1"),
                        children=[FuzzyNode("C")],
                    )
                ],
            ),
            events,
        )
        baseline = to_possible_worlds(doc)
        tx = UpdateTransaction(
            parse_pattern("/A { B[$b] { C[$c] } }"),
            [DeleteOperation("b"), DeleteOperation("c")],
            0.7,
        )
        truth = update_possible_worlds(baseline, tx)
        apply_update(doc, tx)
        assert to_possible_worlds(doc).same_distribution(truth, 1e-12)

    def test_multiple_matches_delete_same_node(self):
        # Two matches (via two B's) both delete the same C.
        events = EventTable({"w1": 0.5, "w2": 0.5})
        doc = FuzzyTree(
            FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1")),
                    FuzzyNode("B", condition=Condition.of("w2")),
                    FuzzyNode("C"),
                ],
            ),
            events,
        )
        baseline = to_possible_worlds(doc)
        tx = UpdateTransaction(
            parse_pattern("/A { B, C[$c] }"), [DeleteOperation("c")], 0.9
        )
        truth = update_possible_worlds(baseline, tx)
        apply_update(doc, tx)
        assert to_possible_worlds(doc).same_distribution(truth, 1e-12)


class TestNoOps:
    def test_no_match_is_noop(self, slide12_doc):
        before = to_possible_worlds(slide12_doc)
        tx = UpdateTransaction(parse_pattern("Z[$z]"), [DeleteOperation("z")], 0.9)
        report = apply_update(slide12_doc, tx)
        assert not report.applied
        assert to_possible_worlds(slide12_doc).same_distribution(before)

    def test_zero_confidence_is_noop(self, slide12_doc):
        before = to_possible_worlds(slide12_doc)
        tx = UpdateTransaction(parse_pattern("C[$c]"), [DeleteOperation("c")], 0.0)
        report = apply_update(slide12_doc, tx)
        assert not report.applied
        assert to_possible_worlds(slide12_doc).same_distribution(before)

    def test_impossible_match_is_noop(self, slide12_doc):
        # B ∧ D is inconsistent: the query selects no world.
        tx = UpdateTransaction(
            parse_pattern("/A[$a] { B, //D }"),
            [InsertOperation("a", tree("N"))],
            0.9,
        )
        report = apply_update(slide12_doc, tx)
        assert report.matches == 1 and report.consistent_matches == 0
        assert not report.applied

    def test_wrong_transaction_type_rejected(self, slide12_doc):
        with pytest.raises(UpdateError):
            apply_update(slide12_doc, "not a transaction")  # type: ignore[arg-type]
