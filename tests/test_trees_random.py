"""Unit tests for random tree generation (repro.trees.random)."""

import random

import pytest

from repro.trees import RandomTreeConfig, random_labels, random_tree


class TestRandomTree:
    def test_deterministic_for_seed(self):
        first = random_tree(random.Random(42))
        second = random_tree(random.Random(42))
        assert first.equals(second)

    def test_different_seeds_usually_differ(self):
        trees = {random_tree(random.Random(seed)).canonical() for seed in range(10)}
        assert len(trees) > 1

    def test_respects_max_nodes(self):
        config = RandomTreeConfig(max_nodes=10)
        for seed in range(20):
            assert random_tree(random.Random(seed), config).size() <= 10

    def test_respects_max_depth(self):
        config = RandomTreeConfig(max_nodes=200, max_depth=3)
        for seed in range(10):
            assert random_tree(random.Random(seed), config).height() <= 3

    def test_respects_label_alphabet(self):
        config = RandomTreeConfig(labels=("X", "Y"))
        node = random_tree(random.Random(0), config)
        assert {n.label for n in node.iter()} <= {"X", "Y"}

    def test_values_only_on_leaves(self):
        for seed in range(10):
            node = random_tree(random.Random(seed))
            for inner in node.iter():
                if inner.value is not None:
                    assert inner.is_leaf

    def test_no_values_when_probability_zero(self):
        config = RandomTreeConfig(value_probability=0.0)
        node = random_tree(random.Random(3), config)
        assert all(n.value is None for n in node.iter())

    def test_min_nodes_floor_is_respected(self):
        config = RandomTreeConfig(max_nodes=40, min_nodes=20)
        for seed in range(30):
            size = random_tree(random.Random(seed), config).size()
            assert 20 <= size <= 40

    def test_min_nodes_retry_is_deterministic(self):
        config = RandomTreeConfig(max_nodes=40, min_nodes=20)
        first = random_tree(random.Random(5), config)
        second = random_tree(random.Random(5), config)
        assert first.equals(second)

    @pytest.mark.parametrize(
        "field,value",
        [("max_nodes", 0), ("max_children", 0), ("min_nodes", 0)],
    )
    def test_invalid_config_rejected(self, field, value):
        with pytest.raises(ValueError):
            RandomTreeConfig(**{field: value})

    def test_min_nodes_above_max_rejected(self):
        with pytest.raises(ValueError):
            RandomTreeConfig(max_nodes=5, min_nodes=6)

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            RandomTreeConfig(labels=())


class TestRandomLabels:
    def test_count_and_uniqueness(self):
        labels = random_labels(random.Random(0), 25)
        assert len(labels) == 25
        assert len(set(labels)) == 25

    def test_length(self):
        labels = random_labels(random.Random(0), 5, length=7)
        assert all(len(label) == 7 for label in labels)
