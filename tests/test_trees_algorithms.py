"""Unit tests for tree algorithms (repro.trees.algorithms)."""

import pytest

from repro.errors import TreeError
from repro.trees import (
    find_all,
    find_first,
    label_counts,
    label_index,
    lowest_common_ancestor,
    minimal_subtree,
    multiset_equal,
    node_at_path,
    node_path,
    restrict,
    same_tree,
    tree,
)


@pytest.fixture
def doc():
    return tree(
        "A",
        tree("B", "foo"),
        tree("E", tree("C", "bar"), tree("C", "baz")),
        tree("D", tree("F", tree("G"))),
    )


class TestMinimalSubtree:
    def test_single_target_keeps_root_path(self, doc):
        g = find_first(doc, "G")
        answer = minimal_subtree(doc, [g])
        assert answer.canonical() == "A(D(F(G)))"

    def test_multiple_targets_union_of_paths(self, doc):
        b = find_first(doc, "B")
        g = find_first(doc, "G")
        answer = minimal_subtree(doc, [g, b])
        assert answer.canonical() == "A(B='foo',D(F(G)))"

    def test_root_target_gives_root_only(self, doc):
        answer = minimal_subtree(doc, [doc])
        assert answer.canonical() == "A"

    def test_result_is_a_fresh_tree(self, doc):
        b = find_first(doc, "B")
        answer = minimal_subtree(doc, [b])
        assert answer is not doc
        answer.children[0].detach()
        assert find_first(doc, "B") is not None  # original untouched

    def test_foreign_target_rejected(self, doc):
        with pytest.raises(TreeError):
            minimal_subtree(doc, [tree("X")])

    def test_duplicate_targets_are_fine(self, doc):
        g = find_first(doc, "G")
        answer = minimal_subtree(doc, [g, g])
        assert answer.canonical() == "A(D(F(G)))"


class TestRestrict:
    def test_keeps_connected_component_of_root(self, doc):
        d = find_first(doc, "D")
        g = find_first(doc, "G")
        # G kept but its parent F is not: G is dropped.
        kept = {id(doc), id(d), id(g)}
        result = restrict(doc, kept)
        assert result.canonical() == "A(D)"

    def test_root_must_be_kept(self, doc):
        with pytest.raises(TreeError, match="root itself"):
            restrict(doc, set())


class TestSearchHelpers:
    def test_find_all_in_preorder(self, doc):
        assert [n.value for n in find_all(doc, "C")] == ["bar", "baz"]

    def test_find_first_and_missing(self, doc):
        assert find_first(doc, "E").label == "E"
        assert find_first(doc, "Z") is None

    def test_label_index_covers_every_node(self, doc):
        index = label_index(doc)
        assert sum(len(nodes) for nodes in index.values()) == doc.size()
        assert len(index["C"]) == 2

    def test_label_counts(self, doc):
        counts = label_counts(doc)
        assert counts["C"] == 2 and counts["A"] == 1


class TestLca:
    def test_siblings(self, doc):
        first, second = find_all(doc, "C")
        assert lowest_common_ancestor(first, second).label == "E"

    def test_ancestor_descendant(self, doc):
        d = find_first(doc, "D")
        g = find_first(doc, "G")
        assert lowest_common_ancestor(d, g) is d

    def test_self(self, doc):
        b = find_first(doc, "B")
        assert lowest_common_ancestor(b, b) is b

    def test_different_trees_rejected(self, doc):
        with pytest.raises(TreeError):
            lowest_common_ancestor(doc, tree("X"))


class TestPaths:
    def test_roundtrip_for_every_node(self, doc):
        for node in doc.iter():
            assert node_at_path(doc, node_path(node)) is node

    def test_root_path_is_empty(self, doc):
        assert node_path(doc) == ()

    def test_bad_path_rejected(self, doc):
        with pytest.raises(TreeError):
            node_at_path(doc, (9, 9))


class TestComparators:
    def test_same_tree(self, doc):
        b = find_first(doc, "B")
        assert same_tree(b, doc)
        assert not same_tree(b, tree("X"))

    def test_multiset_equal_ignores_order(self):
        first = [tree("A"), tree("B")]
        second = [tree("B"), tree("A")]
        assert multiset_equal(first, second)

    def test_multiset_equal_counts_duplicates(self):
        assert not multiset_equal([tree("A")], [tree("A"), tree("A")])
