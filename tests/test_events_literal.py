"""Unit tests for event literals (repro.events.literal)."""

import pytest

from repro.errors import EventError
from repro.events import Literal, parse_literal


class TestLiteral:
    def test_positive_default(self):
        lit = Literal("w1")
        assert lit.event == "w1" and lit.positive

    def test_negate_is_involutive(self):
        lit = Literal("w1", False)
        assert lit.negate() == Literal("w1", True)
        assert lit.negate().negate() == lit

    def test_equality_and_hash(self):
        assert Literal("w1") == Literal("w1")
        assert Literal("w1") != Literal("w1", False)
        assert len({Literal("w1"), Literal("w1"), Literal("w1", False)}) == 2

    def test_str(self):
        assert str(Literal("w1")) == "w1"
        assert str(Literal("w1", False)) == "!w1"

    def test_pretty_uses_paper_notation(self):
        assert Literal("w2", False).pretty() == "¬w2"

    @pytest.mark.parametrize("bad", ["", "1w", "w 1", "w(1)", None, 7])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(EventError):
            Literal(bad)  # type: ignore[arg-type]

    @pytest.mark.parametrize("ok", ["w1", "_x", "module.fact-3", "Event_9"])
    def test_valid_names_accepted(self, ok):
        assert Literal(ok).event == ok


class TestParseLiteral:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("w1", Literal("w1", True)),
            ("!w1", Literal("w1", False)),
            ("¬w1", Literal("w1", False)),
            ("  w2  ", Literal("w2", True)),
            ("! w3", Literal("w3", False)),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_literal(text) == expected

    def test_empty_rejected(self):
        with pytest.raises(EventError):
            parse_literal("  ")

    def test_roundtrip(self):
        for lit in (Literal("a"), Literal("b", False)):
            assert parse_literal(str(lit)) == lit
