"""Unit tests for the XML dialects (repro.xmlio)."""

import pytest

from repro.errors import XMLFormatError
from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    InsertOperation,
    UpdateTransaction,
)
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.xmlio import (
    fuzzy_from_string,
    fuzzy_to_string,
    plain_from_string,
    plain_to_string,
    transaction_from_string,
    transaction_to_string,
)


class TestFuzzyDocumentRoundtrip:
    def test_slide12_roundtrip(self, slide12_doc):
        text = fuzzy_to_string(slide12_doc)
        parsed = fuzzy_from_string(text)
        assert parsed.root.canonical() == slide12_doc.root.canonical()
        assert parsed.events == slide12_doc.events

    def test_condition_attribute_format(self, slide12_doc):
        text = fuzzy_to_string(slide12_doc)
        assert 'p:cond="w1 !w2"' in text or 'p:cond="!w2 w1"' in text

    def test_events_header(self, slide12_doc):
        text = fuzzy_to_string(slide12_doc)
        assert 'name="w1"' in text and 'prob="0.8"' in text

    def test_unindented_is_parseable(self, slide12_doc):
        text = fuzzy_to_string(slide12_doc, indent=False)
        assert fuzzy_from_string(text).root.canonical() == slide12_doc.root.canonical()

    def test_values_roundtrip(self):
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B", value="héllo & <world>")]),
            EventTable(),
        )
        parsed = fuzzy_from_string(fuzzy_to_string(doc))
        assert parsed.root.children[0].value == "héllo & <world>"

    def test_probability_precision_roundtrip(self):
        doc = FuzzyTree(
            FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("e"))]),
            EventTable({"e": 0.1 + 0.2}),  # 0.30000000000000004
        )
        parsed = fuzzy_from_string(fuzzy_to_string(doc))
        assert parsed.events.probability("e") == doc.events.probability("e")


class TestFuzzyDocumentErrors:
    def test_malformed_xml(self):
        with pytest.raises(XMLFormatError, match="well-formed"):
            fuzzy_from_string("<broken")

    def test_wrong_root(self):
        with pytest.raises(XMLFormatError, match="p:document"):
            fuzzy_from_string("<A/>")

    def test_missing_events_header(self):
        text = '<p:document xmlns:p="urn:repro:probabilistic-xml"><A/></p:document>'
        with pytest.raises(XMLFormatError, match="p:events"):
            fuzzy_from_string(text)

    def test_unknown_event_in_condition(self):
        text = (
            '<p:document xmlns:p="urn:repro:probabilistic-xml">'
            "<p:events/>"
            '<A><B p:cond="ghost"/></A>'
            "</p:document>"
        )
        with pytest.raises(XMLFormatError, match="invalid fuzzy document"):
            fuzzy_from_string(text)

    def test_bad_probability(self):
        text = (
            '<p:document xmlns:p="urn:repro:probabilistic-xml">'
            '<p:events><p:event name="w" prob="lots"/></p:events>'
            "<A/></p:document>"
        )
        with pytest.raises(XMLFormatError, match="invalid probability"):
            fuzzy_from_string(text)

    def test_mixed_content_rejected(self):
        text = (
            '<p:document xmlns:p="urn:repro:probabilistic-xml">'
            "<p:events/>"
            "<A>text<B/></A>"
            "</p:document>"
        )
        with pytest.raises(XMLFormatError, match="no mixed content|mixed content"):
            fuzzy_from_string(text)

    def test_stray_attribute_rejected(self):
        text = (
            '<p:document xmlns:p="urn:repro:probabilistic-xml">'
            "<p:events/>"
            '<A foo="bar"/>'
            "</p:document>"
        )
        with pytest.raises(XMLFormatError, match="unexpected attribute"):
            fuzzy_from_string(text)

    def test_conditioned_root_rejected(self):
        text = (
            '<p:document xmlns:p="urn:repro:probabilistic-xml">'
            '<p:events><p:event name="w" prob="0.5"/></p:events>'
            '<A p:cond="w"/>'
            "</p:document>"
        )
        with pytest.raises(XMLFormatError, match="invalid fuzzy document"):
            fuzzy_from_string(text)


class TestPlainTrees:
    def test_roundtrip(self):
        doc = tree("A", tree("B", "x"), tree("C", tree("D")))
        parsed = plain_from_string(plain_to_string(doc))
        assert parsed.equals(doc)

    def test_attributes_rejected(self):
        with pytest.raises(XMLFormatError, match="attributes"):
            plain_from_string('<A x="1"/>')

    def test_mixed_content_rejected(self):
        with pytest.raises(XMLFormatError):
            plain_from_string("<A>hi<B/></A>")

    def test_trailing_text_rejected(self):
        with pytest.raises(XMLFormatError, match="mixed content"):
            plain_from_string("<A><B/>tail</A>")


class TestXUpdateRoundtrip:
    def slide15_tx(self) -> UpdateTransaction:
        return UpdateTransaction(
            parse_pattern("/A[$a] { B, C[$c] }"),
            [DeleteOperation("c"), InsertOperation("a", tree("D"))],
            0.9,
        )

    def test_roundtrip_preserves_everything(self):
        tx = self.slide15_tx()
        parsed = transaction_from_string(transaction_to_string(tx))
        assert str(parsed.query) == str(tx.query)
        assert parsed.confidence == tx.confidence
        assert len(parsed.insertions) == 1 and len(parsed.deletions) == 1
        assert parsed.insertions[0].subtree.equals(tx.insertions[0].subtree)
        assert parsed.deletions[0].target == "c"

    def test_insert_subtree_roundtrip(self):
        tx = UpdateTransaction(
            parse_pattern("A[$a]"),
            [InsertOperation("a", tree("N", tree("M", "deep")))],
            0.5,
        )
        parsed = transaction_from_string(transaction_to_string(tx))
        assert parsed.insertions[0].subtree.canonical() == "N(M='deep')"

    def test_default_confidence_is_one(self):
        text = (
            '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A[$a]">'
            "<xu:delete target='a'/></xu:modifications>"
        )
        # 'a' names the root -> valid structure, confidence defaults to 1.
        parsed = transaction_from_string(text)
        assert parsed.confidence == 1.0

    @pytest.mark.parametrize(
        "text,message",
        [
            ("<wrong/>", "xu:modifications"),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" confidence="1"/>',
                "query attribute",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A[" />',
                "invalid query",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A" '
                'confidence="much"/>',
                "invalid confidence",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A[$a]">'
                "<xu:insert anchor='a'/></xu:modifications>",
                "exactly one subtree",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A[$a]">'
                "<xu:delete/></xu:modifications>",
                "target attribute",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A[$a]">'
                "<xu:rename target='a'/></xu:modifications>",
                "unexpected element",
            ),
            (
                '<xu:modifications xmlns:xu="urn:repro:xupdate" query="A">'
                "<xu:delete target='zz'/></xu:modifications>",
                "invalid transaction",
            ),
        ],
    )
    def test_errors(self, text, message):
        with pytest.raises(XMLFormatError, match=message):
            transaction_from_string(text)
