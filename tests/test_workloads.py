"""Unit tests for the workload generators (repro.workloads)."""

import random

import pytest

from repro import (
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.core.query import query_fuzzy_tree
from repro.tpwj import find_matches
from repro.trees import RandomTreeConfig
from repro.workloads import (
    CleaningScenario,
    ExtractionScenario,
    FuzzyWorkloadConfig,
    MatchingScenario,
    random_fuzzy_tree,
    random_query_for,
    random_update_for,
)


class TestRandomFuzzyTree:
    def test_deterministic_for_seed(self):
        first = random_fuzzy_tree(random.Random(9))
        second = random_fuzzy_tree(random.Random(9))
        assert first.root.canonical() == second.root.canonical()
        assert first.events == second.events

    def test_event_count(self):
        doc = random_fuzzy_tree(random.Random(0), FuzzyWorkloadConfig(n_events=7))
        assert len(doc.events) == 7

    def test_zero_events_gives_certain_document(self):
        doc = random_fuzzy_tree(random.Random(0), FuzzyWorkloadConfig(n_events=0))
        assert doc.condition_literal_count() == 0
        assert len(to_possible_worlds(doc)) == 1

    def test_document_is_valid(self):
        for seed in range(10):
            doc = random_fuzzy_tree(random.Random(seed))
            doc.validate()

    def test_condition_size_bounded(self):
        config = FuzzyWorkloadConfig(max_literals=2)
        doc = random_fuzzy_tree(random.Random(1), config)
        assert all(len(n.condition) <= 2 for n in doc.iter_nodes())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FuzzyWorkloadConfig(n_events=-1)
        with pytest.raises(ValueError):
            FuzzyWorkloadConfig(max_literals=-1)


class TestRandomQuery:
    @pytest.mark.parametrize("seed", range(15))
    def test_always_matches(self, seed):
        rng = random.Random(seed)
        doc = random_fuzzy_tree(rng, FuzzyWorkloadConfig(n_events=3))
        pattern = random_query_for(rng, doc.root)
        assert find_matches(pattern, doc.root), str(pattern)

    def test_deterministic_for_seed(self):
        doc = random_fuzzy_tree(random.Random(2))
        first = str(random_query_for(random.Random(3), doc.root))
        second = str(random_query_for(random.Random(3), doc.root))
        assert first == second

    def test_size_bounded(self):
        doc = random_fuzzy_tree(
            random.Random(4),
            FuzzyWorkloadConfig(tree=RandomTreeConfig(max_nodes=60)),
        )
        pattern = random_query_for(random.Random(5), doc.root, max_nodes=3)
        assert pattern.size() <= 3


class TestRandomUpdate:
    @pytest.mark.parametrize("seed", range(10))
    def test_transaction_is_applicable(self, seed):
        rng = random.Random(seed)
        doc = random_fuzzy_tree(rng, FuzzyWorkloadConfig(n_events=2))
        tx = random_update_for(rng, doc)
        report = apply_update(doc, tx)
        assert report.matches >= 1

    def test_explicit_confidence(self):
        rng = random.Random(0)
        doc = random_fuzzy_tree(rng)
        tx = random_update_for(rng, doc, confidence=0.42)
        assert tx.confidence == 0.42


class TestExtractionScenario:
    def test_initial_document(self):
        scenario = ExtractionScenario(seed=0, n_people=3)
        doc = scenario.initial_document()
        assert doc.root.label == "directory"
        assert sum(1 for n in doc.iter_nodes() if n.label == "person") == 3

    def test_stream_is_deterministic(self):
        first = [
            str(tx.query) for tx in ExtractionScenario(seed=5, n_people=4).stream(10)
        ]
        second = [
            str(tx.query) for tx in ExtractionScenario(seed=5, n_people=4).stream(10)
        ]
        assert first == second

    def test_stream_applies_cleanly(self):
        scenario = ExtractionScenario(seed=1, n_people=4)
        doc = scenario.initial_document()
        for tx in scenario.stream(15):
            apply_update(doc, tx)
        doc.validate()
        assert doc.size() > scenario.initial_document().size()

    def test_queries_run(self):
        scenario = ExtractionScenario(seed=2, n_people=4)
        doc = scenario.initial_document()
        for tx in scenario.stream(10):
            apply_update(doc, tx)
        for pattern in scenario.query_mix():
            query_fuzzy_tree(doc, pattern)  # must not raise

    def test_confidences_in_range(self):
        for tx in ExtractionScenario(seed=3).stream(30):
            assert 0.0 < tx.confidence <= 1.0

    def test_population_bounds(self):
        with pytest.raises(ValueError):
            ExtractionScenario(n_people=0)
        with pytest.raises(ValueError):
            ExtractionScenario(n_people=999)


class TestCleaningScenario:
    def test_duplicates_exist(self):
        doc = CleaningScenario(seed=1, duplicate_rate=1.0).initial_document()
        entries = [n for n in doc.iter_nodes() if n.label == "entry"]
        assert len(entries) == 12  # every product duplicated

    def test_dedup_stream_commutes(self):
        scenario = CleaningScenario(seed=2, n_products=2, duplicate_rate=1.0)
        doc = scenario.initial_document()
        worlds = to_possible_worlds(doc)
        for tx in list(scenario.stream(2)):
            worlds = update_possible_worlds(worlds, tx)
            apply_update(doc, tx)
        assert to_possible_worlds(doc).same_distribution(worlds, 1e-9)


class TestMatchingScenario:
    def test_stream_inserts_matches(self):
        scenario = MatchingScenario(seed=3)
        doc = scenario.initial_document()
        for tx in scenario.stream(5):
            report = apply_update(doc, tx)
            assert report.inserted_subtrees == 1
        matches = [n for n in doc.iter_nodes() if n.label == "match"]
        assert len(matches) == 5

    def test_queries_return_scored_answers(self):
        scenario = MatchingScenario(seed=4)
        doc = scenario.initial_document()
        for tx in scenario.stream(3):
            apply_update(doc, tx)
        answers = query_fuzzy_tree(doc, scenario.query_mix()[1])
        assert answers and all(0.0 < a.probability <= 1.0 for a in answers)
