"""Unit tests for instrumentation and metrics (repro.analysis)."""

import pytest

from repro.analysis import (
    Counters,
    counters,
    distribution_entropy,
    fuzzy_stats,
    tree_stats,
)
from repro import PossibleWorlds, find_matches
from repro.tpwj.parser import parse_pattern
from repro.trees import tree


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        c.incr("x")
        c.incr("x", 2)
        assert c.get("x") == 3
        assert c.get("missing") == 0

    def test_reset(self):
        c = Counters()
        c.incr("x")
        c.reset()
        assert c.get("x") == 0

    def test_snapshot_is_a_copy(self):
        c = Counters()
        c.incr("x")
        snap = c.snapshot()
        c.incr("x")
        assert snap == {"x": 1}

    def test_timed(self):
        c = Counters()
        with c.timed("t"):
            pass
        assert c.get("t") >= 0.0

    def test_global_counters_track_matching(self, slide12_doc):
        counters.reset()
        find_matches(parse_pattern("//D"), slide12_doc.root)
        assert counters.get("match.found") == 1
        assert counters.get("match.candidates") >= 1
        counters.reset()


class TestFuzzyStats:
    def test_slide12_measurements(self, slide12_doc):
        stats = fuzzy_stats(slide12_doc)
        assert stats.nodes == 4
        assert stats.height == 2
        assert stats.declared_events == 2
        assert stats.used_events == 2
        assert stats.condition_literals == 3
        assert stats.max_condition_size == 2
        assert stats.conditioned_nodes == 2

    def test_as_dict_round(self, slide12_doc):
        info = fuzzy_stats(slide12_doc).as_dict()
        assert info["nodes"] == 4 and "condition_literals" in info


class TestTreeStats:
    def test_counts(self):
        doc = tree("A", tree("B", "x"), tree("B", "y"), tree("C", tree("D")))
        stats = tree_stats(doc)
        assert stats["nodes"] == 5
        assert stats["leaves"] == 3
        assert stats["labels"] == {"A": 1, "B": 2, "C": 1, "D": 1}


class TestEntropy:
    def test_uniform_two_worlds_is_one_bit(self):
        worlds = PossibleWorlds([(tree("A"), 0.5), (tree("B"), 0.5)])
        assert distribution_entropy(worlds) == pytest.approx(1.0)

    def test_certain_world_is_zero_bits(self):
        worlds = PossibleWorlds([(tree("A"), 1.0)])
        assert distribution_entropy(worlds) == 0.0

    def test_empty_set(self):
        assert distribution_entropy(PossibleWorlds([])) == 0.0
