"""Unit tests for event tables (repro.events.table)."""

import pytest

from repro.errors import (
    EventError,
    InvalidProbabilityError,
    UnknownEventError,
)
from repro.events import Condition, EventTable, Literal


class TestDeclaration:
    def test_declare_and_lookup(self):
        table = EventTable()
        table.declare("w1", 0.8)
        assert table.probability("w1") == 0.8
        assert "w1" in table and len(table) == 1

    def test_constructor_mapping(self):
        table = EventTable({"a": 0.1, "b": 0.9})
        assert table.names() == ("a", "b")

    def test_redeclare_same_probability_ok(self):
        table = EventTable({"w1": 0.5})
        table.declare("w1", 0.5)
        assert len(table) == 1

    def test_redeclare_different_probability_rejected(self):
        table = EventTable({"w1": 0.5})
        with pytest.raises(EventError, match="already declared"):
            table.declare("w1", 0.6)

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), "x", None, True])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(InvalidProbabilityError):
            EventTable({"w1": bad})  # type: ignore[dict-item]

    @pytest.mark.parametrize("ok", [0, 1, 0.0, 1.0, 0.5])
    def test_boundary_probabilities_accepted(self, ok):
        assert EventTable({"w1": ok}).probability("w1") == float(ok)

    def test_invalid_name_rejected(self):
        with pytest.raises(EventError):
            EventTable({"9x": 0.5})


class TestFresh:
    def test_fresh_allocates_distinct_names(self):
        table = EventTable()
        names = {table.fresh(0.5) for _ in range(10)}
        assert len(names) == 10

    def test_fresh_skips_existing_names(self):
        table = EventTable({"w1": 0.3})
        name = table.fresh(0.5)
        assert name != "w1" and name in table

    def test_fresh_prefix(self):
        table = EventTable()
        assert table.fresh(0.5, prefix="upd").startswith("upd")

    def test_fresh_validates_probability(self):
        with pytest.raises(InvalidProbabilityError):
            EventTable().fresh(2.0)


class TestRemoval:
    def test_remove(self):
        table = EventTable({"w1": 0.5})
        table.remove("w1")
        assert "w1" not in table

    def test_remove_unknown_rejected(self):
        with pytest.raises(UnknownEventError):
            EventTable().remove("w1")


class TestProbabilities:
    def test_literal_probability(self):
        table = EventTable({"w1": 0.8})
        assert table.literal_probability(Literal("w1")) == pytest.approx(0.8)
        assert table.literal_probability(Literal("w1", False)) == pytest.approx(0.2)

    def test_condition_probability_is_product(self):
        table = EventTable({"w1": 0.8, "w2": 0.7})
        cond = Condition.of("w1", "!w2")
        assert table.condition_probability(cond) == pytest.approx(0.8 * 0.3)

    def test_true_condition_has_probability_one(self):
        assert EventTable().condition_probability(Condition()) == 1.0

    def test_inconsistent_condition_has_probability_zero(self):
        table = EventTable({"w1": 0.5})
        cond = Condition(
            [Literal("w1"), Literal("w1", False)], allow_inconsistent=True
        )
        assert table.condition_probability(cond) == 0.0

    def test_unknown_event_raises(self):
        with pytest.raises(UnknownEventError):
            EventTable().condition_probability(Condition.of("w1"))

    def test_check_condition(self):
        table = EventTable({"w1": 0.5})
        table.check_condition(Condition.of("w1"))
        with pytest.raises(UnknownEventError):
            table.check_condition(Condition.of("w2"))


class TestCopies:
    def test_copy_is_independent(self):
        table = EventTable({"w1": 0.5})
        copy = table.copy()
        copy.declare("w2", 0.1)
        assert "w2" not in table

    def test_copy_preserves_fresh_counter(self):
        table = EventTable()
        table.fresh(0.5)
        copy = table.copy()
        assert copy.fresh(0.5) == table.fresh(0.5)

    def test_restrict_to(self):
        table = EventTable({"a": 0.1, "b": 0.2, "c": 0.3})
        small = table.restrict_to(["a", "c"])
        assert small.names() == ("a", "c")

    def test_restrict_to_unknown_rejected(self):
        with pytest.raises(UnknownEventError):
            EventTable({"a": 0.1}).restrict_to(["a", "zz"])

    def test_as_dict_and_equality(self):
        table = EventTable({"a": 0.1})
        assert table.as_dict() == {"a": 0.1}
        assert table == EventTable({"a": 0.1})
        assert table != EventTable({"a": 0.2})

    def test_iteration_order_is_insertion_order(self):
        table = EventTable({"z": 0.1, "a": 0.2})
        assert list(table) == ["z", "a"]
        assert list(table.items()) == [("z", 0.1), ("a", 0.2)]
