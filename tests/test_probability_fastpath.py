"""The probability fast path (E12): ancestor-condition index, interned
conditions, factorized + engine-scoped Shannon expansion, lazy rows.

The contract of every optimization here is *bit-for-bit equivalence*
(or 1e-12, where float op order legitimately differs) with the slow
path — the per-match ancestor walk and the per-call Shannon memo — and
with the possible-worlds semantics the property tests already pin.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Condition, EventTable, FuzzyNode, FuzzyTree
from repro.analysis.instrumentation import counters
from repro.core.montecarlo import estimate_query
from repro.core.update import apply_update
from repro.core.query import iter_query_rows, match_conditions, query_fuzzy_tree
from repro.engine import AncestorConditionIndex, QueryEngine, StatsDelta
from repro.events import Dnf, Literal, ShannonCache, dnf_probability
from repro.tpwj.parser import parse_pattern
from repro.trees import RandomTreeConfig
from repro.workloads import (
    FuzzyWorkloadConfig,
    random_fuzzy_tree,
    random_query_for,
    random_update_for,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)

SMALL_DOCS = FuzzyWorkloadConfig(
    tree=RandomTreeConfig(max_nodes=14, max_children=3, max_depth=4),
    n_events=3,
)
MEDIUM_DOCS = FuzzyWorkloadConfig(
    tree=RandomTreeConfig(max_nodes=40, max_children=4, max_depth=6),
    n_events=5,
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _engine_for(fuzzy: FuzzyTree) -> QueryEngine:
    return QueryEngine(lambda: fuzzy.root)


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------


class TestInterning:
    def test_literals_are_interned(self):
        assert Literal("w1") is Literal("w1")
        assert Literal("w1", False) is Literal("w1", False)
        assert Literal("w1") is not Literal("w1", False)
        assert Literal("w1").negate() is Literal("w1", False)

    def test_literal_is_immutable(self):
        lit = Literal("w1")
        with pytest.raises(AttributeError):
            lit.event = "w2"

    def test_conditions_are_interned(self):
        a = Condition.of("w1", "!w2")
        b = Condition.of("!w2", "w1")
        assert a is b
        assert Condition.parse("w1 !w2") is a

    def test_interned_inconsistent_condition_still_raises(self):
        bad = frozenset({Literal("w5"), Literal("w5", False)})
        first = Condition(bad, allow_inconsistent=True)
        assert not first.is_consistent
        with pytest.raises(Exception):
            Condition(bad)  # same literal set, flag off: must still raise

    def test_restrict_returns_interned_cofactor(self):
        c = Condition.of("a", "b")
        assert c.restrict("a", True) is Condition.of("b")
        assert c.restrict("a", False) is None
        assert c.restrict("zz", True) is c


# ----------------------------------------------------------------------
# Dnf absorption
# ----------------------------------------------------------------------


def _naive_minimal_terms(terms):
    """Reference absorption: the set of minimal consistent terms."""
    consistent = {t for t in terms if t.is_consistent}
    return {
        t
        for t in consistent
        if not any(
            other is not t and other.literals < t.literals for other in consistent
        )
    }


class TestDnfAbsorption:
    @given(seed=seeds)
    @relaxed
    def test_matches_naive_minimal_antichain(self, seed):
        rng = random.Random(seed)
        names = [f"e{i}" for i in range(4)]
        terms = []
        for _ in range(rng.randint(1, 12)):
            chosen = rng.sample(names, rng.randint(1, 4))
            terms.append(
                Condition.of(*(n if rng.random() < 0.5 else f"!{n}" for n in chosen))
            )
        assert set(Dnf(terms).terms) == _naive_minimal_terms(terms)

    def test_true_short_circuits(self):
        from repro.events import TRUE

        dnf = Dnf([Condition.of("a"), TRUE, Condition.of("b")])
        assert dnf.terms == (TRUE,)

    def test_large_disjunction_absorbs_correctly(self):
        # A deletion-complement shape: many terms, one absorber.
        base = Condition.of("a")
        terms = [base] + [
            Condition.of("a", *(f"x{i}" for i in range(1, k)))
            for k in range(2, 40)
        ]
        assert Dnf(terms).terms == (base,)


# ----------------------------------------------------------------------
# Factorized, cached Shannon expansion
# ----------------------------------------------------------------------


def _brute_force(terms, table):
    from repro.events import assignment_weight, enumerate_assignments

    total = 0.0
    for assignment in enumerate_assignments(table.names()):
        if any(term.satisfied_by(assignment) for term in terms):
            total += assignment_weight(assignment, table)
    return total


class TestFactorizedShannon:
    def test_disjoint_components_multiply(self):
        # Two components sharing no event: P = 1 - (1-Pa)(1-Pb).
        table = EventTable({"a": 0.3, "b": 0.6, "c": 0.2, "d": 0.9})
        terms = [Condition.of("a", "b"), Condition.of("c"), Condition.of("c", "!d")]
        assert dnf_probability(terms, table) == pytest.approx(
            _brute_force(terms, table), abs=1e-12
        )

    @given(seed=seeds)
    @relaxed
    def test_matches_brute_force_with_shared_cache(self, seed):
        rng = random.Random(seed)
        names = [f"e{i}" for i in range(6)]
        table = EventTable({n: rng.uniform(0.0, 1.0) for n in names})
        cache = ShannonCache()
        for _ in range(3):
            terms = []
            for _ in range(rng.randint(1, 6)):
                chosen = rng.sample(names, rng.randint(1, 3))
                terms.append(
                    Condition.of(
                        *(n if rng.random() < 0.5 else f"!{n}" for n in chosen)
                    )
                )
            cached = dnf_probability(terms, table, cache=cache)
            fresh = dnf_probability(terms, table)
            brute = _brute_force(terms, table)
            assert cached == pytest.approx(fresh, abs=1e-12)
            assert cached == pytest.approx(brute, abs=1e-12)

    def test_cache_is_actually_shared(self):
        table = EventTable({"a": 0.5, "b": 0.5, "c": 0.5})
        cache = ShannonCache()
        terms = [Condition.of("a", "b"), Condition.of("b", "c")]
        dnf_probability(terms, table, cache=cache)
        misses_after_first = cache.misses
        dnf_probability(terms, table, cache=cache)
        assert cache.misses == misses_after_first  # pure hits on repeat
        assert cache.hits > 0

    def test_cache_capacity_bounds_entries(self):
        table = EventTable({f"e{i}": 0.5 for i in range(10)})
        cache = ShannonCache(capacity=4)
        for i in range(10):
            dnf_probability([Condition.of(f"e{i}")], table, cache=cache)
        assert len(cache) <= 4


class TestProbabilityGenerationInvalidation:
    def test_removal_and_redeclare_retires_cached_entries(self):
        # The regression the engine-scoped cache must survive: an event's
        # probability changes (remove + redeclare through the public
        # surface) after entries were cached against the old value.
        table = EventTable({"w": 0.5, "k": 0.25})
        cache = ShannonCache()
        terms = [Condition.of("w"), Condition.of("k")]
        before = dnf_probability(terms, table, cache=cache)
        assert before == pytest.approx(1 - 0.5 * 0.75, abs=1e-12)
        generation_before = table.generation
        table.remove("w")
        table.declare("w", 0.9)
        assert table.generation != generation_before
        after = dnf_probability(terms, table, cache=cache)
        assert after == pytest.approx(1 - 0.1 * 0.75, abs=1e-12)

    def test_declaring_new_event_keeps_generation(self):
        # Adding an event cannot change any previously computable
        # probability, so cached entries stay shareable.
        table = EventTable({"w": 0.5})
        generation = table.generation
        table.declare("fresh_event", 0.7)
        table.fresh(0.3)
        assert table.generation == generation

    def test_engine_cache_survives_structural_commit(self):
        events = EventTable({"w1": 0.6, "w2": 0.3})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("w1")),
                FuzzyNode("B", condition=Condition.of("w2")),
            ],
        )
        fuzzy = FuzzyTree(root, events)
        engine = _engine_for(fuzzy)
        pattern = parse_pattern("//B")
        answers = query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert any(a.probability < 1.0 for a in answers)
        # Structural commit tracked by a delta: memo survives (entries
        # are generation-keyed), and repeated evaluation hits it.
        tx = parse_pattern("/A[$r]")
        from repro.trees import tree
        from repro.updates.operations import InsertOperation
        from repro.updates.transaction import UpdateTransaction

        delta = StatsDelta()
        apply_update(
            fuzzy,
            UpdateTransaction(tx, [InsertOperation("r", tree("C"))], 1.0),
            delta=delta,
        )
        engine.apply_delta(delta)
        hits_before = engine.shannon.hits
        entries_before = len(engine.shannon)
        assert entries_before > 0
        query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert len(engine.shannon) >= entries_before
        assert engine.shannon.hits > hits_before

    def test_engine_invalidate_clears_shannon_cache(self, rng):
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        query_fuzzy_tree(fuzzy, pattern, engine=engine)
        engine.invalidate()
        assert len(engine.shannon) == 0

    def test_update_changing_event_probability_is_not_served_stale(self, rng):
        # End to end: warm the engine cache, swap an event's probability
        # behind a remove+redeclare, and check the engine path computes
        # the new value (a stale-cache bug would reproduce the old one).
        events = EventTable({"w": 0.5})
        root = FuzzyNode("A", children=[FuzzyNode("B", condition=Condition.of("w"))])
        fuzzy = FuzzyTree(root, events)
        engine = _engine_for(fuzzy)
        pattern = parse_pattern("//B")
        [before] = query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert before.probability == pytest.approx(0.5, abs=1e-12)
        fuzzy.events.remove("w")
        fuzzy.events.declare("w", 0.875)
        [after] = query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert after.probability == pytest.approx(0.875, abs=1e-12)


# ----------------------------------------------------------------------
# Ancestor-condition index
# ----------------------------------------------------------------------


class TestAncestorConditionIndex:
    @given(seed=seeds)
    @relaxed
    def test_closures_match_path_conditions(self, seed):
        fuzzy = random_fuzzy_tree(random.Random(seed), MEDIUM_DOCS)
        index = AncestorConditionIndex.build(fuzzy.root)
        for node in fuzzy.iter_nodes():
            closed = index.closed_condition(node)
            expected = node.path_condition_or_none()
            if expected is None:
                assert not closed.is_consistent
            else:
                assert closed == expected

    @given(seed=seeds)
    @relaxed
    def test_delta_patching_stays_exact(self, seed):
        rng = random.Random(seed)
        fuzzy = random_fuzzy_tree(rng, SMALL_DOCS)
        engine = _engine_for(fuzzy)
        index = engine.condition_index()
        assert index is not None
        for _ in range(3):
            delta = StatsDelta()
            apply_update(fuzzy, random_update_for(rng, fuzzy), delta=delta)
            engine.apply_delta(delta)
            patched = engine.condition_index()
            assert patched is index  # patched in place, not rebuilt
            for node in fuzzy.iter_nodes():
                closed = patched.closed_condition(node)
                expected = node.path_condition_or_none()
                if expected is None:
                    assert not closed.is_consistent
                else:
                    assert closed == expected

    def test_plain_tree_engine_has_no_index(self):
        from repro.trees import tree

        root = tree("A", tree("B"))
        engine = QueryEngine(lambda: root)
        assert engine.condition_index() is None

    @given(seed=seeds)
    @relaxed
    def test_match_conditions_fast_and_slow_agree(self, seed):
        rng = random.Random(seed)
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        index = engine.condition_index()
        for match in engine.find_matches(pattern):
            assert set(match_conditions(match, index=index)) == set(
                match_conditions(match)
            )


# ----------------------------------------------------------------------
# End-to-end equivalence of the fast path
# ----------------------------------------------------------------------


class TestFastPathEquivalence:
    @given(seed=seeds)
    @relaxed
    def test_engine_and_plain_paths_agree_exactly(self, seed):
        rng = random.Random(seed)
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        fast = query_fuzzy_tree(fuzzy, pattern, engine=engine)
        slow = query_fuzzy_tree(fuzzy, pattern)
        assert [(a.tree.canonical(), a.dnf) for a in fast] == [
            (a.tree.canonical(), a.dnf) for a in slow
        ]
        for fast_answer, slow_answer in zip(fast, slow):
            assert fast_answer.probability == pytest.approx(
                slow_answer.probability, abs=1e-12
            )

    @given(seed=seeds)
    @relaxed
    def test_equivalence_survives_tracked_updates(self, seed):
        rng = random.Random(seed)
        fuzzy = random_fuzzy_tree(rng, SMALL_DOCS)
        engine = _engine_for(fuzzy)
        for _ in range(3):
            delta = StatsDelta()
            apply_update(fuzzy, random_update_for(rng, fuzzy), delta=delta)
            engine.apply_delta(delta)
            pattern = random_query_for(rng, fuzzy.root)
            fast = query_fuzzy_tree(fuzzy, pattern, engine=engine)
            slow = query_fuzzy_tree(fuzzy, pattern)
            assert [(a.tree.canonical(), a.dnf) for a in fast] == [
                (a.tree.canonical(), a.dnf) for a in slow
            ]
            for fast_answer, slow_answer in zip(fast, slow):
                assert fast_answer.probability == pytest.approx(
                    slow_answer.probability, abs=1e-12
                )

    def test_zero_probability_rows_are_still_skipped(self):
        events = EventTable({"dead": 0.0, "live": 0.5})
        root = FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("dead")),
                FuzzyNode("B", condition=Condition.of("live")),
            ],
        )
        fuzzy = FuzzyTree(root, events)
        engine = _engine_for(fuzzy)
        rows = list(iter_query_rows(fuzzy, parse_pattern("//B"), engine=engine))
        assert len(rows) == 1
        assert rows[0].probability == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Lazy rows
# ----------------------------------------------------------------------


class TestLazyRowProbability:
    def test_probability_computed_on_first_access_only(self, rng):
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        rows = list(iter_query_rows(fuzzy, pattern, engine=engine))
        if not rows:
            pytest.skip("workload produced no rows")
        assert all(row._probability is None for row in rows)
        values = [row.probability for row in rows]
        assert all(row._probability is not None for row in rows)
        assert values == [row.probability for row in rows]  # cached

    def test_lazy_probability_equals_eager_computation(self, rng):
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        for row in iter_query_rows(fuzzy, pattern, engine=engine):
            assert row.probability == pytest.approx(
                dnf_probability(row.dnf, fuzzy.events), abs=1e-12
            )

    def test_lazy_probability_survives_event_gc(self, tmp_path):
        # Regression: a row streamed (probability unread), then the
        # matched subtree deleted and the document simplified — the
        # GC removes the confidence event the row's DNF references.
        # The lazy read must still produce the emission-time value
        # (eager computation's result), not raise UnknownEventError.
        import repro
        from repro import tree

        with repro.connect(tmp_path / "wh", create=True, root="dir") as session:
            session.update(
                repro.update(repro.pattern("dir", variable="d", anchored=True))
                .insert("d", tree("person", tree("name", "Alice")))
                .confidence(0.9)
            )
            rows = session.query("//person").all()
            assert len(rows) == 1
            session.update(
                repro.update(
                    repro.pattern("dir", anchored=True).child(
                        repro.pattern("person", variable="p")
                    )
                )
                .delete("p")
                .confidence(1.0)
            )
            session.simplify()  # GCs the 0.9-confidence event
            assert rows[0].probability == pytest.approx(0.9, abs=1e-12)
            assert "0.9" in repr(rows[0])


# ----------------------------------------------------------------------
# Monte-Carlo convergence (satellite)
# ----------------------------------------------------------------------


class TestMonteCarloConvergence:
    @pytest.mark.parametrize("seed", range(6))
    def test_estimates_within_three_sigma_of_fast_path(self, seed):
        rng = random.Random(seed)
        fuzzy = random_fuzzy_tree(rng, SMALL_DOCS)
        pattern = random_query_for(rng, fuzzy.root, max_nodes=3)
        engine = _engine_for(fuzzy)
        exact = {
            a.tree.canonical(): a.probability
            for a in query_fuzzy_tree(fuzzy, pattern, engine=engine)
        }
        samples = 4000
        estimates = estimate_query(
            fuzzy, pattern, samples=samples, rng=random.Random(seed + 1)
        )
        estimated = {e.tree.canonical(): e for e in estimates}
        # Every sampled answer must be a real answer, within 3σ.
        for key, estimate in estimated.items():
            assert key in exact, f"sampled answer {key} has no exact counterpart"
            sigma = max(estimate.stderr, (0.25 / samples) ** 0.5)
            assert abs(estimate.probability - exact[key]) <= 3 * sigma
        # Every answer of non-trivial probability must have been sampled.
        for key, probability in exact.items():
            if probability > 0.05:
                assert key in estimated, f"exact answer {key} (p={probability}) unseen"


# ----------------------------------------------------------------------
# Instrumentation flag (satellite)
# ----------------------------------------------------------------------


class TestCountersFlag:
    def test_incr_is_noop_when_disabled(self):
        counters.reset()
        with counters.disabled():
            counters.incr("x.y")
        assert counters.get("x.y") == 0
        counters.incr("x.y")
        assert counters.get("x.y") == 1
        counters.reset()

    def test_disabled_restores_previous_state(self):
        assert counters.enabled
        with counters.disabled():
            assert not counters.enabled
            with counters.disabled():
                pass
            assert not counters.enabled
        assert counters.enabled

    def test_query_hot_loop_honors_flag(self, rng):
        fuzzy = random_fuzzy_tree(rng, MEDIUM_DOCS)
        engine = _engine_for(fuzzy)
        pattern = random_query_for(rng, fuzzy.root)
        counters.reset()
        with counters.disabled():
            query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert counters.get("core.query.matches") == 0
        assert counters.get("match.assignments") == 0
        query_fuzzy_tree(fuzzy, pattern, engine=engine)
        assert counters.get("core.query.matches") > 0
        counters.reset()
