"""Unit tests for the cost-based query engine (repro.engine)."""

from __future__ import annotations

import pytest

from repro.tpwj.parser import parse_pattern
from repro.warehouse import Warehouse
from repro.analysis import counters
from repro.engine import (
    DocumentStats,
    PlanCache,
    QueryEngine,
    build_plan,
    collect_stats,
    pattern_fingerprint,
)
from repro.engine.cardinality import (
    axis_selectivity,
    estimate_candidates,
    estimate_enumeration_cost,
    join_selectivity,
)
from repro.tpwj.pattern import PatternNode
from repro.trees import Node, tree


@pytest.fixture
def doc() -> Node:
    """A small catalogue: 3 person entries, repeated names, one email."""
    return tree(
        "directory",
        tree("person", tree("name", "ana"), tree("email", "a@x")),
        tree("person", tree("name", "bob")),
        tree("person", tree("name", "ana")),
        tree("misc", "ana"),
    )


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


class TestStats:
    def test_one_pass_counts(self, doc):
        stats = collect_stats(doc)
        assert stats.node_count == 9
        assert stats.label_counts == {
            "directory": 1,
            "person": 3,
            "name": 3,
            "email": 1,
            "misc": 1,
        }
        assert stats.leaf_count == 5
        assert stats.valued_count == 5
        assert stats.valued_counts == {"name": 3, "email": 1, "misc": 1}
        assert stats.distinct_values == {"name": 2, "email": 1, "misc": 1}
        assert stats.distinct_values_total == 3  # ana, bob, a@x
        assert stats.internal_counts == {"directory": 1, "person": 3}
        assert stats.max_depth == 2
        assert stats.max_fanout == 4

    def test_depth_and_fanout_aggregates(self, doc):
        stats = collect_stats(doc)
        # sum_depth = number of proper (ancestor, descendant) pairs.
        assert stats.sum_depth == 4 * 1 + 4 * 2  # 4 at depth 1, 4 at depth 2
        assert stats.avg_depth == pytest.approx(12 / 9)
        # 8 edges spread over 4 internal nodes.
        assert stats.avg_fanout == pytest.approx(2.0)

    def test_as_dict_is_flat(self, doc):
        info = collect_stats(doc).as_dict()
        assert info["nodes"] == 9
        assert info["labels"] == 5
        assert info["distinct_values"] == 3

    def test_document_stats_invalidation(self, doc):
        holder = DocumentStats(lambda: doc)
        first = holder.current()
        assert holder.current() is first  # cached
        assert holder.version == 0
        doc.add_child(Node("extra"))
        holder.invalidate()
        assert holder.version == 1
        second = holder.current()
        assert second is not first
        assert second.node_count == first.node_count + 1


# ----------------------------------------------------------------------
# Cardinality
# ----------------------------------------------------------------------


class TestCardinality:
    def test_label_histogram_drives_candidates(self, doc):
        stats = collect_stats(doc)
        assert estimate_candidates(PatternNode("person"), stats, set()) == 3.0
        assert estimate_candidates(PatternNode("nope"), stats, set()) == 0.0
        assert estimate_candidates(PatternNode(None), stats, set()) == 9.0

    def test_value_test_uses_distinct_values(self, doc):
        stats = collect_stats(doc)
        # 3 valued name nodes over 2 distinct values -> 1.5 per value.
        node = PatternNode("name", value="ana")
        assert estimate_candidates(node, stats, set()) == pytest.approx(1.5)

    def test_internal_requirement_scales_estimate(self, doc):
        stats = collect_stats(doc)
        node = PatternNode("misc", children=[PatternNode("x")])
        # All misc nodes are leaves: requiring a child kills the estimate.
        assert estimate_candidates(node, stats, set()) == 0.0

    def test_join_variable_requires_valued_nodes(self, doc):
        stats = collect_stats(doc)
        node = PatternNode("person", variable="j")
        # No person carries a value, so a join on $j has no candidates.
        assert estimate_candidates(node, stats, {"j"}) == 0.0

    def test_axis_and_join_selectivity_bounds(self, doc):
        stats = collect_stats(doc)
        child = PatternNode("name")
        PatternNode("person", children=[child])
        assert 0.0 < axis_selectivity(child, stats) <= 1.0
        assert join_selectivity(PatternNode("name"), stats) == pytest.approx(0.5)

    def test_selective_order_is_cheaper(self, doc):
        stats = collect_stats(doc)
        pattern = parse_pattern('directory { person { name[="bob"] } }')
        pre_order = pattern.positive_nodes()
        cost = estimate_enumeration_cost(pattern, pre_order, stats, False)
        assert cost > 0.0


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


class TestPlanner:
    def test_plan_is_topological_and_complete(self, doc):
        pattern = parse_pattern("directory { person { name[$x] }, misc[$x] }")
        plan = build_plan(pattern, collect_stats(doc))
        assert set(map(id, plan.order)) == set(map(id, pattern.positive_nodes()))
        positions = {id(n): i for i, n in enumerate(plan.order)}
        for node in plan.order:
            if node.parent is not None:
                assert positions[id(node.parent)] < positions[id(node)]

    def test_toggle_choices(self, doc):
        stats = collect_stats(doc)
        joined = build_plan(
            parse_pattern("directory { person { name[$x] }, misc[$x] }"), stats
        )
        assert joined.early_join_check
        assert joined.use_label_index
        plain = build_plan(parse_pattern("person { name }"), stats)
        assert not plain.early_join_check
        # Tiny candidate volume: the prune pass is not worth it.
        assert not plain.use_semijoin_pruning
        wildcards = build_plan(parse_pattern("* { * }"), stats)
        assert not wildcards.use_label_index

    def test_explain_mentions_decisions(self, doc):
        pattern = parse_pattern("directory { person { name[$x] }, misc[$x] }")
        plan = build_plan(pattern, collect_stats(doc), stats_version=7)
        text = plan.explain()
        assert "stats version: 7" in text
        assert "visit order" in text
        assert "est. candidates" in text
        assert "early" in text  # join check placement

    def test_fingerprint_identifies_structure(self):
        a = parse_pattern("/A { B[$x], //C[$x] }")
        b = parse_pattern("/ A { B [ $x ] , // C [ $x ] }")
        c = parse_pattern("/A { B[$x], C[$x] }")
        assert pattern_fingerprint(a) == pattern_fingerprint(b)
        assert pattern_fingerprint(a) != pattern_fingerprint(c)


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------


class TestPlanCache:
    def _plan(self, text: str, doc, version: int = 0):
        return build_plan(parse_pattern(text), collect_stats(doc), version)

    def test_hit_and_miss_accounting(self, doc):
        cache = PlanCache(capacity=4)
        plan = self._plan("person { name }", doc)
        assert cache.get(plan.fingerprint, 0) is None
        cache.put(plan)
        assert cache.get(plan.fingerprint, 0) is plan
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_stats_version_partitions_entries(self, doc):
        cache = PlanCache(capacity=4)
        old = self._plan("person { name }", doc, version=0)
        cache.put(old)
        # Same query against a newer document state: miss.
        assert cache.get(old.fingerprint, 1) is None

    def test_lru_eviction(self, doc):
        cache = PlanCache(capacity=2)
        p1 = self._plan("person", doc)
        p2 = self._plan("name", doc)
        p3 = self._plan("misc", doc)
        cache.put(p1)
        cache.put(p2)
        assert cache.get(p1.fingerprint, 0) is p1  # refresh p1
        cache.put(p3)  # evicts p2 (least recently used)
        assert cache.get(p2.fingerprint, 0) is None
        assert cache.get(p1.fingerprint, 0) is p1
        assert cache.get(p3.fingerprint, 0) is p3
        assert cache.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# ----------------------------------------------------------------------
# QueryEngine + instrumentation
# ----------------------------------------------------------------------


class TestQueryEngine:
    def test_plan_reuse_and_invalidation(self, doc):
        engine = QueryEngine(lambda: doc)
        pattern = parse_pattern("person { name }")
        first = engine.plan_for(pattern)
        second = engine.plan_for(parse_pattern("person { name }"))
        assert second is first  # cache hit on an equivalent pattern
        engine.invalidate()
        third = engine.plan_for(pattern)
        assert third is not first
        assert third.stats_version == 1

    def test_find_matches_through_engine(self, doc):
        engine = QueryEngine(lambda: doc)
        matches = engine.find_matches(parse_pattern("person { name[$x] }"))
        assert len(matches) == 3

    def test_cached_plan_matches_are_keyed_by_callers_pattern(self, doc):
        engine = QueryEngine(lambda: doc)
        first = parse_pattern("person { name[$x] }")
        engine.find_matches(first)  # populates the plan cache
        second = parse_pattern("person { name[$x] }")
        match = engine.find_matches(second)[0]
        # Indexing with the *caller's* nodes must work despite the
        # cached plan carrying the first pattern's node objects.
        assert match[second.root].label == "person"
        assert match.pattern is second
        assert match.binding("x") is not None

    def test_walk_reuse_and_invalidation(self, doc):
        engine = QueryEngine(lambda: doc)
        pattern = parse_pattern("person { name }")
        engine.find_matches(pattern)
        view = engine._views[id(doc)]
        walk = view.intervals
        assert walk is not None
        engine.find_matches(pattern)
        assert engine._views[id(doc)].intervals is walk  # document walk reused
        engine.invalidate()
        assert not engine._views
        assert len(engine.find_matches(pattern)) == 3

    def test_planner_counters_are_populated(self, doc):
        counters.reset()
        engine = QueryEngine(lambda: doc)
        pattern = parse_pattern("directory { person { name[$x] }, misc[$x] }")
        engine.find_matches(pattern)
        engine.find_matches(pattern)
        seen = counters.prefixed("engine.")
        assert seen["engine.stats_collected"] == 1
        assert seen["engine.plans_built"] == 1
        assert seen["engine.plans_executed"] == 2
        assert seen["engine.plan_cache_misses"] == 1
        assert seen["engine.plan_cache_hits"] == 1
        # Estimated vs actual candidate volume both recorded.
        assert seen["engine.estimated_candidates"] > 0
        assert seen["engine.actual_candidates"] > 0
        counters.reset()

    def test_explain_renders_stats_plan_and_cache(self, doc):
        engine = QueryEngine(lambda: doc)
        text = engine.explain(parse_pattern("person { name }"))
        assert "statistics:" in text
        assert "nodes: 9" in text
        assert "plan for person { name }" in text
        assert "plan cache:" in text


# ----------------------------------------------------------------------
# Warehouse integration
# ----------------------------------------------------------------------


class TestWarehousePlans:
    def test_repeated_query_hits_the_plan_cache(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            warehouse._query_answers("//D")
            hits_before = warehouse.engine.cache.hits
            again = warehouse._query_answers("//D")
            assert warehouse.engine.cache.hits == hits_before + 1
            assert len(again) == 1

    def test_planned_and_fixed_paths_agree(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            planned = warehouse._query_answers("/A { //D }")
            fixed = warehouse._query_answers("/A { //D }", planner=False)
            assert [(a.probability, a.tree.canonical()) for a in planned] == [
                (a.probability, a.tree.canonical()) for a in fixed
            ]

    def test_commit_invalidates_stats(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            version = warehouse.engine.stats.version
            warehouse.simplify()
            assert warehouse.engine.stats.version == version + 1
            # A fresh plan is built for the new version (no stale serve).
            plan = warehouse.engine.plan_for(parse_pattern("//D"))
            assert plan.stats_version == version + 1

    def test_explain_plan_from_text(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            text = warehouse.explain_plan("/A { //D }")
            assert "visit order" in text
            assert "statistics:" in text

    def test_max_matches_handle_uses_planner(self, tmp_path, slide12_doc):
        from repro.tpwj.match import MatchConfig

        path = tmp_path / "wh"
        with Warehouse.create(path, slide12_doc):
            pass
        config = MatchConfig(max_matches=1)
        with Warehouse.open(path, match_config=config) as warehouse:
            # Truncated enumeration goes through the cost-based engine
            # too: the cap is pushed into the streaming protocol, and
            # the plan cache serves repeats.
            assert len(warehouse._query_answers("//D")) == 1
            assert warehouse.engine.cache.misses == 1
            warehouse._query_answers("//D")
            assert warehouse.engine.cache.hits == 1

    def test_engine_survives_reopen(self, tmp_path, slide12_doc):
        path = tmp_path / "wh"
        with Warehouse.create(path, slide12_doc):
            pass
        with Warehouse.open(path) as warehouse:
            assert len(warehouse._query_answers("//D")) == 1


# ----------------------------------------------------------------------
# Incremental statistics maintenance
# ----------------------------------------------------------------------


class TestIncrementalStats:
    def _insert_tx(self, label="N"):
        from repro import InsertOperation, UpdateTransaction

        return UpdateTransaction(
            parse_pattern("C[$c]"), [InsertOperation("c", tree(label))], 1.0
        )

    def test_update_adjusts_stats_without_recollection(self, tmp_path, slide12_doc):
        counters.reset()
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            warehouse.engine.stats.current()  # one full collection
            collected_before = counters.prefixed("engine.")["engine.stats_collected"]
            warehouse._commit_update(self._insert_tx())
            stats = warehouse.engine.stats.current()
            seen = counters.prefixed("engine.")
            assert seen["engine.stats_collected"] == collected_before
            assert seen["engine.stats_delta_applied"] >= 1
            assert stats == collect_stats(warehouse.document.root)
        counters.reset()

    def test_no_op_commit_keeps_version_and_cached_plan(self, tmp_path, slide12_doc):
        from repro import DeleteOperation, UpdateTransaction

        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            pattern = parse_pattern("//D")
            plan_before = warehouse.engine.plan_for(pattern)
            version = warehouse.engine.stats.version
            # No Z anywhere: the update matches nothing, changes nothing.
            report = warehouse._commit_update(
                UpdateTransaction(parse_pattern("Z[$z]"), [DeleteOperation("z")], 1.0)
            )
            assert not report.applied
            assert warehouse.sequence == 2  # the commit still happened
            assert warehouse.engine.stats.version == version
            assert warehouse.engine.plan_for(pattern) is plan_before

    def test_plan_never_stale_after_label_frequency_change(
        self, tmp_path, slide12_doc
    ):
        """Regression: a commit that changes label frequencies must bump
        the stats version, so a plan priced on the old frequencies can
        never be served for the changed document."""
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            pattern = parse_pattern("//B")
            plan_before = warehouse.engine.plan_for(pattern)
            version_before = warehouse.engine.stats.version
            frequency_before = warehouse.engine.stats.current().label_counts["B"]
            warehouse._commit_update(self._insert_tx(label="B"))  # B: 1 -> 2
            assert warehouse.engine.stats.version > version_before
            plan_after = warehouse.engine.plan_for(pattern)
            assert plan_after is not plan_before
            assert plan_after.stats_version == warehouse.engine.stats.version
            # The maintained statistics reflect the live document.
            current = warehouse.engine.stats.current()
            assert current.label_counts["B"] == frequency_before + 1
            assert current == collect_stats(warehouse.document.root)
            # The query path serves the fresh plan, not the stale one.
            assert warehouse.engine.plan_for(pattern).stats_version != version_before

    def test_deletion_at_max_depth_falls_back_to_recollection(
        self, tmp_path, slide12_doc
    ):
        from repro import DeleteOperation, UpdateTransaction

        counters.reset()
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            warehouse.engine.stats.current()
            # D is the unique deepest node: its removal may lower
            # max_depth, which aggregates cannot decide — recollect.
            warehouse._commit_update(
                UpdateTransaction(parse_pattern("D[$d]"), [DeleteOperation("d")], 1.0)
            )
            stats = warehouse.engine.stats.current()
            assert stats == collect_stats(warehouse.document.root)
            seen = counters.prefixed("engine.")
            assert seen.get("engine.stats_delta_recollected", 0) >= 1
        counters.reset()

    def test_batch_commit_feeds_one_delta(self, tmp_path, slide12_doc):
        with Warehouse.create(tmp_path / "wh", slide12_doc) as warehouse:
            warehouse.engine.stats.current()
            version = warehouse.engine.stats.version
            warehouse.update_many([self._insert_tx(), self._insert_tx("M")])
            assert warehouse.engine.stats.version == version + 1
            assert warehouse.engine.stats.current() == collect_stats(
                warehouse.document.root
            )
