"""Tests for the PrXML front-end (repro.prxml): ind/mux documents
compile into fuzzy trees with the same possible-worlds distribution."""

import pytest

from repro.errors import ReproError
from repro import to_possible_worlds
from repro.prxml import PDocument, PInd, PMux, PRegular, compile_to_fuzzy
from repro.pworlds import PossibleWorlds
from repro.trees import tree


class TestModel:
    def test_regular_construction(self):
        root = PRegular("A", children=[PRegular("B", "x")])
        assert root.children[0].value == "x"

    def test_mixed_content_rejected(self):
        with pytest.raises(ReproError, match="no mixed content"):
            PRegular("A", value="x", children=[PRegular("B")])
        node = PRegular("A", value="x")
        with pytest.raises(ReproError, match="no mixed content"):
            node.add_child(PRegular("B"))

    def test_document_root_must_be_regular(self):
        with pytest.raises(ReproError, match="regular"):
            PDocument(PInd())  # type: ignore[arg-type]

    def test_ind_requires_probability(self):
        ind = PInd()
        with pytest.raises(ReproError, match="PInd.add"):
            ind.add_child(PRegular("B"))

    def test_ind_probability_validated(self):
        with pytest.raises(ReproError):
            PInd().add(PRegular("B"), 1.5)

    def test_mux_mass_capped(self):
        mux = PMux()
        mux.add(PRegular("B"), 0.7)
        with pytest.raises(ReproError, match="exceed 1"):
            mux.add(PRegular("C"), 0.5)

    def test_clone_is_deep(self):
        ind = PInd()
        ind.add(PRegular("B"), 0.5)
        root = PRegular("A")
        root.add_child(ind)
        doc = PDocument(root)
        copy = doc.root.clone()
        assert copy is not doc.root
        assert isinstance(copy.children[0], PInd)
        assert copy.children[0].probabilities == [0.5]

    def test_counts(self):
        ind = PInd()
        ind.add(PRegular("B"), 0.5)
        root = PRegular("A")
        root.add_child(ind)
        doc = PDocument(root)
        assert doc.size() == 3
        assert doc.distributional_count() == 1


def worlds_of(document: PDocument) -> PossibleWorlds:
    return to_possible_worlds(compile_to_fuzzy(document))


class TestCompileInd:
    def test_single_ind_child(self):
        root = PRegular("A")
        ind = PInd()
        ind.add(PRegular("B"), 0.3)
        root.add_child(ind)
        worlds = worlds_of(PDocument(root))
        assert worlds.probability_of(tree("A", tree("B"))) == pytest.approx(0.3)
        assert worlds.probability_of(tree("A")) == pytest.approx(0.7)

    def test_ind_children_are_independent(self):
        root = PRegular("A")
        ind = PInd()
        ind.add(PRegular("B"), 0.5)
        ind.add(PRegular("C"), 0.5)
        root.add_child(ind)
        worlds = worlds_of(PDocument(root))
        assert len(worlds) == 4
        assert worlds.probability_of(tree("A", tree("B"), tree("C"))) == pytest.approx(0.25)

    def test_certain_ind_child_costs_no_event(self):
        root = PRegular("A")
        ind = PInd()
        ind.add(PRegular("B"), 1.0)
        root.add_child(ind)
        fuzzy = compile_to_fuzzy(PDocument(root))
        assert len(fuzzy.events) == 0


class TestCompileMux:
    def test_mux_alternatives_are_exclusive(self):
        root = PRegular("A")
        mux = PMux()
        mux.add(PRegular("B"), 0.3)
        mux.add(PRegular("C"), 0.5)
        root.add_child(mux)
        worlds = worlds_of(PDocument(root))
        assert worlds.probability_of(tree("A", tree("B"))) == pytest.approx(0.3)
        assert worlds.probability_of(tree("A", tree("C"))) == pytest.approx(0.5)
        assert worlds.probability_of(tree("A")) == pytest.approx(0.2)
        assert worlds.probability_of(tree("A", tree("B"), tree("C"))) == 0.0

    def test_full_mass_mux_never_empty(self):
        root = PRegular("A")
        mux = PMux()
        mux.add(PRegular("B"), 0.4)
        mux.add(PRegular("C"), 0.6)
        root.add_child(mux)
        worlds = worlds_of(PDocument(root))
        assert worlds.probability_of(tree("A")) == pytest.approx(0.0)
        assert len(worlds) == 2


class TestCompileNesting:
    def test_ind_under_mux(self):
        # mux(0.5 -> ind(B@0.5), 0.5 -> C)
        root = PRegular("A")
        mux = PMux()
        inner = PInd()
        inner.add(PRegular("B"), 0.5)
        mux.add(inner, 0.5)
        mux.add(PRegular("C"), 0.5)
        root.add_child(mux)
        worlds = worlds_of(PDocument(root))
        assert worlds.probability_of(tree("A", tree("B"))) == pytest.approx(0.25)
        assert worlds.probability_of(tree("A", tree("C"))) == pytest.approx(0.5)
        assert worlds.probability_of(tree("A")) == pytest.approx(0.25)

    def test_distributional_below_regular_child(self):
        root = PRegular("A")
        b = PRegular("B")
        ind = PInd()
        ind.add(PRegular("C", "x"), 0.5)
        b.add_child(ind)
        root.add_child(b)
        worlds = worlds_of(PDocument(root))
        assert worlds.probability_of(tree("A", tree("B", tree("C", "x")))) == pytest.approx(0.5)
        assert worlds.probability_of(tree("A", tree("B"))) == pytest.approx(0.5)

    def test_compiled_document_is_valid_and_queries(self):
        from repro.core.query import query_fuzzy_tree
        from repro.tpwj.parser import parse_pattern

        root = PRegular("catalog")
        for sku, probability in (("laptop", 0.9), ("phone", 0.4)):
            ind = PInd()
            entry = PRegular("entry")
            entry.add_child(PRegular("sku", sku))
            ind.add(entry, probability)
            root.add_child(ind)
        fuzzy = compile_to_fuzzy(PDocument(root))
        fuzzy.validate()
        answers = query_fuzzy_tree(fuzzy, parse_pattern('//sku[="laptop"]'))
        assert answers[0].probability == pytest.approx(0.9)

    def test_deterministic_event_naming(self):
        def build():
            root = PRegular("A")
            ind = PInd()
            ind.add(PRegular("B"), 0.5)
            ind.add(PRegular("C"), 0.25)
            root.add_child(ind)
            return compile_to_fuzzy(PDocument(root))

        assert build().events.names() == build().events.names()
        assert all(name.startswith("d") for name in build().events.names())
