"""Unit tests for the possible-worlds model (repro.pworlds)."""

import pytest

from repro.errors import ReproError
from repro.pworlds import (
    PossibleWorlds,
    World,
    query_possible_worlds,
    update_possible_worlds,
)
from repro.tpwj import parse_pattern
from repro.trees import tree
from repro.updates import DeleteOperation, InsertOperation, UpdateTransaction


def slide9_worlds() -> PossibleWorlds:
    """The four-world example of slide 9."""
    return PossibleWorlds(
        [
            (tree("A", tree("C")), 0.06),
            (tree("A", tree("C", tree("D"))), 0.14),
            (tree("A", tree("B"), tree("C")), 0.24),
            (tree("A", tree("B"), tree("C", tree("D"))), 0.56),
        ]
    )


class TestNormalization:
    def test_merges_equal_trees(self):
        worlds = PossibleWorlds([(tree("A"), 0.3), (tree("A"), 0.2)])
        assert len(worlds) == 1
        assert worlds.probability_of(tree("A")) == pytest.approx(0.5)

    def test_merges_unordered_equal_trees(self):
        first = tree("A", tree("B"), tree("C"))
        second = tree("A", tree("C"), tree("B"))
        worlds = PossibleWorlds([(first, 0.5), (second, 0.5)])
        assert len(worlds) == 1

    def test_drops_zero_probability(self):
        worlds = PossibleWorlds([(tree("A"), 0.0), (tree("B"), 1.0)])
        assert len(worlds) == 1

    def test_ordered_by_decreasing_probability(self):
        worlds = slide9_worlds()
        probabilities = [w.probability for w in worlds]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_accepts_world_objects(self):
        worlds = PossibleWorlds([World(tree("A"), 1.0)])
        assert worlds.total_probability() == 1.0

    def test_negative_probability_rejected(self):
        with pytest.raises(ReproError):
            PossibleWorlds([(tree("A"), -0.1)])

    def test_non_node_rejected(self):
        with pytest.raises(ReproError):
            PossibleWorlds([("A", 0.5)])  # type: ignore[list-item]


class TestDistribution:
    def test_check_distribution(self):
        slide9_worlds().check_distribution()

    def test_check_distribution_rejects_drift(self):
        with pytest.raises(ReproError, match="sum to"):
            PossibleWorlds([(tree("A"), 0.4)]).check_distribution()

    def test_probability_of_missing_tree_is_zero(self):
        assert slide9_worlds().probability_of(tree("Z")) == 0.0

    def test_same_distribution(self):
        assert slide9_worlds().same_distribution(slide9_worlds())

    def test_same_distribution_detects_difference(self):
        other = PossibleWorlds([(tree("A", tree("C")), 1.0)])
        assert not slide9_worlds().same_distribution(other)

    def test_difference_report_lists_mismatches(self):
        other = PossibleWorlds([(tree("A", tree("C")), 1.0)])
        report = slide9_worlds().difference_report(other)
        assert report and any("A(C)" in line for line in report)

    def test_difference_report_empty_when_equal(self):
        assert slide9_worlds().difference_report(slide9_worlds()) == []


class TestQuerySemantics:
    def test_answer_probability_is_membership_mass(self):
        # //D matches in the two worlds containing D: 0.14 + 0.56.
        result = query_possible_worlds(slide9_worlds(), parse_pattern("//D"))
        assert len(result) == 1
        assert result.worlds[0].probability == pytest.approx(0.70)
        assert result.worlds[0].tree.canonical() == "A(C(D))"

    def test_no_match_gives_empty_result(self):
        result = query_possible_worlds(slide9_worlds(), parse_pattern("//Z"))
        assert len(result) == 0

    def test_multiple_answers_from_one_world(self):
        worlds = PossibleWorlds([(tree("A", tree("B", "x"), tree("B", "y")), 1.0)])
        result = query_possible_worlds(worlds, parse_pattern("//B"))
        assert len(result) == 2
        assert result.total_probability() == pytest.approx(2.0)

    def test_duplicate_answers_within_world_collapse(self):
        # Two B leaves with the same value yield one answer tree each —
        # but identical minimal subtrees, so Q(t) contains it once.
        worlds = PossibleWorlds([(tree("A", tree("B", "x"), tree("B", "x")), 1.0)])
        result = query_possible_worlds(worlds, parse_pattern("//B"))
        assert len(result) == 1
        assert result.worlds[0].probability == pytest.approx(1.0)

    def test_join_query(self):
        doc = tree("A", tree("B", "v"), tree("C", tree("D", "v")))
        other = tree("A", tree("B", "v"), tree("C", tree("D", "x")))
        worlds = PossibleWorlds([(doc, 0.5), (other, 0.5)])
        result = query_possible_worlds(
            worlds, parse_pattern("/A { B[$x], C { D[$x] } }")
        )
        assert len(result) == 1
        assert result.worlds[0].probability == pytest.approx(0.5)


class TestUpdateSemantics:
    def test_unselected_worlds_unchanged(self):
        tx = UpdateTransaction(
            parse_pattern("/A { Z[$z] }"), [DeleteOperation("z")], 0.9
        )
        before = slide9_worlds()
        after = update_possible_worlds(before, tx)
        assert after.same_distribution(before)

    def test_selected_world_splits(self):
        worlds = PossibleWorlds([(tree("A", tree("B")), 1.0)])
        tx = UpdateTransaction(
            parse_pattern("/A { B[$b] }"), [DeleteOperation("b")], 0.8
        )
        after = update_possible_worlds(worlds, tx)
        assert after.probability_of(tree("A")) == pytest.approx(0.8)
        assert after.probability_of(tree("A", tree("B"))) == pytest.approx(0.2)

    def test_mass_is_conserved(self):
        tx = UpdateTransaction(
            parse_pattern("/A { B[$b] }"), [DeleteOperation("b")], 0.5
        )
        after = update_possible_worlds(slide9_worlds(), tx)
        assert after.total_probability() == pytest.approx(1.0)

    def test_confidence_one_replaces(self):
        worlds = PossibleWorlds([(tree("A", tree("B")), 1.0)])
        tx = UpdateTransaction(
            parse_pattern("/A[$a]"), [InsertOperation("a", tree("N"))], 1.0
        )
        after = update_possible_worlds(worlds, tx)
        assert len(after) == 1
        assert after.probability_of(tree("A", tree("B"), tree("N"))) == pytest.approx(1.0)

    def test_confidence_zero_is_noop(self):
        worlds = slide9_worlds()
        tx = UpdateTransaction(
            parse_pattern("/A[$a]"), [InsertOperation("a", tree("N"))], 0.0
        )
        after = update_possible_worlds(worlds, tx)
        assert after.same_distribution(worlds)

    def test_update_can_merge_worlds(self):
        # Deleting D with certainty collapses the D/no-D world pairs.
        worlds = slide9_worlds()
        tx = UpdateTransaction(
            parse_pattern("//D[$d]"), [DeleteOperation("d")], 1.0
        )
        after = update_possible_worlds(worlds, tx)
        assert len(after) == 2
        assert after.probability_of(tree("A", tree("C"))) == pytest.approx(0.20)
        assert after.probability_of(
            tree("A", tree("B"), tree("C"))
        ) == pytest.approx(0.80)
