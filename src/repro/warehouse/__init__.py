"""Probabilistic XML warehouse — substrate S8 (paper, slides 3 and 16).

* :class:`Warehouse` — the query/update interface over a durable store;
* :class:`CommitPolicy` — when the WAL folds into a fresh snapshot;
* :class:`Storage` — atomic snapshots, checksums, single-writer locking;
* :class:`WriteAheadLog` — checksummed redo log for incremental commits;
* :class:`TransactionLog` — append-only audit log.
"""

from repro.warehouse.log import TransactionLog, WriteAheadLog
from repro.warehouse.storage import Storage
from repro.warehouse.warehouse import CommitPolicy, Warehouse, WarehouseBatch

__all__ = [
    "Warehouse",
    "WarehouseBatch",
    "CommitPolicy",
    "Storage",
    "TransactionLog",
    "WriteAheadLog",
]
