"""Probabilistic XML warehouse — substrate S8 (paper, slides 3 and 16).

* :class:`Warehouse` — the query/update interface over a durable store;
* :class:`Storage` — atomic commits, checksums, single-writer locking;
* :class:`TransactionLog` — append-only audit log.
"""

from repro.warehouse.log import TransactionLog
from repro.warehouse.storage import Storage
from repro.warehouse.warehouse import Warehouse

__all__ = ["Warehouse", "Storage", "TransactionLog"]
