"""Probabilistic XML warehouse — substrate S8 (paper, slides 3 and 16).

* :class:`Warehouse` — the storage-level handle (the public query/update
  surface is the session API, :mod:`repro.api`);
* :class:`CommitPolicy` — when the WAL folds into a fresh snapshot;
* :class:`DocumentPin` — a pinned document generation for
  snapshot-isolated readers (copy-on-write on the first later commit);
* :class:`Storage` — atomic snapshots, checksums, single-writer locking;
* :class:`WriteAheadLog` — checksummed redo log for incremental commits;
* :class:`TransactionLog` — append-only audit log.
"""

from repro.warehouse.log import TransactionLog, WriteAheadLog
from repro.warehouse.storage import Storage
from repro.warehouse.warehouse import (
    CommitPolicy,
    DocumentPin,
    Warehouse,
    WarehouseBatch,
)

__all__ = [
    "Warehouse",
    "WarehouseBatch",
    "CommitPolicy",
    "DocumentPin",
    "Storage",
    "TransactionLog",
    "WriteAheadLog",
]
