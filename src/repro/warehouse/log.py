"""Append-only logs for the warehouse: the audit log and the WAL.

Two logs live next to the document, with different jobs:

* :class:`TransactionLog` (``log.jsonl``) — the human-facing audit
  trail: one JSON line per committed operation recording what happened
  (the serialized transaction, the confidence, the report counters).
  It supports the E8 benchmark's throughput accounting, ``history`` and
  ``provenance``; it is **not** required for recovery.

* :class:`WriteAheadLog` (``wal.jsonl``) — the redo log of the
  incremental commit pipeline.  Each record carries a replayable
  payload (the XUpdate document of the commit), its sequence number and
  a SHA-256 over the record body, and is fsynced on append.  Recovery
  replays the records past the snapshot's sequence; a torn record at
  the tail (the classic crash-mid-append) is discarded, while a bad
  record *before* the tail raises
  :class:`~repro.errors.WarehouseCorruptError` — data that was
  acknowledged durable must never be silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.errors import WarehouseCorruptError

__all__ = ["TransactionLog", "WriteAheadLog"]

_LOG_FILE = "log.jsonl"
_WAL_FILE = "wal.jsonl"


class TransactionLog:
    """A JSON-lines audit log stored next to the document."""

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / _LOG_FILE

    def append(
        self, kind: str, sequence: int, payload: dict, fsync: bool = True
    ) -> dict:
        """Append one entry; returns the full record written.

        *fsync* is on by default; the warehouse turns it off when the
        WAL already made the commit durable (the audit log is then a
        best-effort convenience, reconstructed from the WAL on
        recovery).
        """
        record = {
            "kind": kind,
            "sequence": sequence,
            "timestamp": time.time(),
            **payload,
        }
        line = json.dumps(record, sort_keys=True)
        fd = os.open(self.path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        return record

    def entries(self) -> list[dict]:
        """All log records, oldest first."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise WarehouseCorruptError(
                        f"corrupt log line {line_number} in {self.path}: {exc}"
                    ) from exc
        return records

    def last_sequence(self) -> int:
        entries = self.entries()
        return max((entry.get("sequence", 0) for entry in entries), default=0)

    def discard_torn_tail(self) -> bool:
        """Drop a partial final line left by a crash mid-append.

        Under the WAL pipeline audit appends are not fsynced, so after a
        crash the file commonly ends in a torn line.  The audit log is
        best-effort (recovery reconstructs its missing entries from the
        WAL), so the torn tail is simply truncated away; damage anywhere
        before the tail is left for :meth:`entries` to report.  Returns
        True when a tail was discarded.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return False
        if not raw:
            return False
        lines = raw.split(b"\n")
        trailing_newline = lines[-1] == b""
        if trailing_newline:
            lines.pop()
        if not lines:
            return False
        tail = lines[-1]
        torn = not trailing_newline
        if not torn and tail.strip():
            try:
                json.loads(tail.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                torn = True
        if not torn:
            return False
        keep = b"".join(line + b"\n" for line in lines[:-1])
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp_path.write_bytes(keep)
        os.replace(tmp_path, self.path)
        return True


class WriteAheadLog:
    """Checksummed, fsynced redo log of committed update transactions."""

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / _WAL_FILE

    def append(self, kind: str, sequence: int, payload: dict) -> dict:
        """Durably append one replayable record; returns it."""
        record = {"kind": kind, "sequence": sequence, "payload": payload}
        record["sha256"] = _record_digest(record)
        line = json.dumps(record, sort_keys=True)
        created = not self.path.exists()
        fd = os.open(self.path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
            os.fsync(fd)
        finally:
            os.close(fd)
        if created:
            # A new directory entry is not durable until the directory
            # itself is synced; without this a power loss could forget
            # the whole file despite the fsynced append.
            _fsync_directory(self.path.parent)
        return record

    def records(self) -> tuple[list[dict], str | None]:
        """All intact records plus a note when a torn tail was discarded.

        The last line of the file may be a partial write from a crash
        mid-append; it is dropped (the commit never finished, so it was
        never acknowledged).  Any malformed record *before* the last
        line means acknowledged data was damaged and raises
        :class:`WarehouseCorruptError`.
        """
        if not self.path.exists():
            return [], None
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        # A record's newline is its last byte, written with the record
        # in one append: a partial (torn) write can therefore never end
        # in a newline.  A newline-terminated final record that fails
        # below is *complete but rotten* — acknowledged data — and
        # raises like any mid-file damage.
        ended_complete = raw.endswith(b"\n")
        torn: str | None = None
        if lines and lines[-1] == b"":
            lines.pop()
        records: list[dict] = []
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            problem = None
            record = None
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                problem = f"unparseable record: {exc}"
            if record is not None:
                if not isinstance(record, dict) or not {
                    "kind",
                    "sequence",
                    "payload",
                    "sha256",
                }.issubset(record):
                    problem = "record missing required fields"
                elif record["sha256"] != _record_digest(
                    {k: v for k, v in record.items() if k != "sha256"}
                ):
                    problem = "record checksum mismatch"
            if problem is not None:
                if index == last_index and not ended_complete:
                    torn = f"discarded torn WAL tail (line {index + 1}): {problem}"
                    break
                raise WarehouseCorruptError(
                    f"corrupt WAL record at line {index + 1} in {self.path}: {problem}"
                )
            records.append(record)
        return records, torn

    def replayable(self, after_sequence: int) -> tuple[list[dict], str | None]:
        """Records to replay on top of a snapshot at *after_sequence*.

        Records at or before the snapshot's sequence are skipped (they
        were already folded in — the compaction-crash case).  The
        remainder must be the contiguous run ``after_sequence + 1,
        after_sequence + 2, ...``; a gap means a durable commit went
        missing and raises :class:`WarehouseCorruptError`.
        """
        records, torn = self.records()
        keep = [r for r in records if r["sequence"] > after_sequence]
        for offset, record in enumerate(keep):
            expected = after_sequence + 1 + offset
            if record["sequence"] != expected:
                raise WarehouseCorruptError(
                    f"WAL sequence gap in {self.path}: expected {expected}, "
                    f"found {record['sequence']}"
                )
        return keep, torn

    def depth(self, after_sequence: int) -> int:
        """Number of records replay would apply past *after_sequence*."""
        records, _torn = self.records()
        return sum(1 for r in records if r["sequence"] > after_sequence)

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def reset(self) -> None:
        """Atomically empty the log (after its records were folded into
        a snapshot)."""
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        fd = os.open(tmp_path, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, self.path)
        _fsync_directory(self.path.parent)


def _record_digest(body: dict) -> str:
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _fsync_directory(path: Path) -> None:
    """Make directory-entry changes (creations, renames) durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
