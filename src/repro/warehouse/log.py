"""Append-only transaction log for the warehouse.

Every committed operation (update, simplification) appends one JSON
line recording what happened: the serialized transaction, the
confidence, the report counters, and the resulting document sequence
number.  The log supports the E8 benchmark's throughput accounting and
makes warehouse history auditable; it is *not* a redo log — commits are
atomic at the storage layer, so recovery never needs replay.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import WarehouseCorruptError

__all__ = ["TransactionLog"]

_LOG_FILE = "log.jsonl"


class TransactionLog:
    """A JSON-lines audit log stored next to the document."""

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / _LOG_FILE

    def append(self, kind: str, sequence: int, payload: dict) -> dict:
        """Append one entry; returns the full record written."""
        record = {
            "kind": kind,
            "sequence": sequence,
            "timestamp": time.time(),
            **payload,
        }
        line = json.dumps(record, sort_keys=True)
        fd = os.open(self.path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
            os.fsync(fd)
        finally:
            os.close(fd)
        return record

    def entries(self) -> list[dict]:
        """All log records, oldest first."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise WarehouseCorruptError(
                        f"corrupt log line {line_number} in {self.path}: {exc}"
                    ) from exc
        return records

    def last_sequence(self) -> int:
        entries = self.entries()
        return max((entry.get("sequence", 0) for entry in entries), default=0)
