"""Compact binary snapshot codec for fuzzy documents.

Shard cold-start is dominated by reparsing ``document.xml``:
tokenizing, label validation, condition parsing and the per-node cycle
checks of :meth:`Node.add_child` all run again for a tree the warehouse
itself wrote moments earlier.  This module encodes the same document as
a flat binary image — interned label and condition tables followed by
fixed-shape preorder node records — that decodes by direct slot
assignment, skipping every constructor-time check.  Integrity comes
from a trailing SHA-256 over the payload instead: the decoder verifies
the digest before trusting a single byte, and any damage raises
:class:`~repro.errors.WarehouseCorruptError` so :meth:`Warehouse.open`
can fall back to the XML snapshot.

Layout (all integers little-endian)::

    magic   b"RPBS"
    u16     format version (1)
    u64     snapshot sequence number
    u32     event count
            per event:  u32 name length + utf8 name, f64 probability
    u64     fresh-name counter
    u32     label count
            per label:  u32 length + utf8
    u32     condition count          (entry 0 is always TRUE)
            per condition: u16 literal count
            per literal:   u32 event-name index (into a name table
                           shared with the event table; names used only
                           in conditions are appended after the
                           declared events), u8 positive
    u32     extra condition-name count, then per name u32 len + utf8
            (events mentioned by conditions; normally zero because the
            event table declares them all — kept for forward safety)
    u32     value count
            per value: u32 length + utf8    (interned leaf text values)
    u32     node count
            per node (preorder, fixed width): u32 label id,
            u32 condition id, u32 child count, u32 value id + 1 (0 for
            no value)
    sha256  digest of every preceding byte

    The node records are fixed-width on purpose: the decoder unpacks
    the whole preorder array in one ``Struct.iter_unpack`` sweep
    instead of one bounds-checked read per field.

The decoder rebuilds :class:`FuzzyNode` instances via ``__new__`` and
writes their slots directly — the digest already guarantees the image
is exactly what :func:`save_binary` produced from a valid document, so
re-running label checks, cycle checks and :meth:`FuzzyTree.validate`
would only reverify invariants the encoder enforced.
"""

from __future__ import annotations

import hashlib
import struct

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.errors import WarehouseCorruptError
from repro.events.condition import TRUE, Condition
from repro.events.literal import Literal
from repro.events.table import EventTable

__all__ = ["FORMAT_VERSION", "MAGIC", "load_binary", "save_binary"]

MAGIC = b"RPBS"
FORMAT_VERSION = 1

_DIGEST_SIZE = hashlib.sha256().digest_size

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_NODE = struct.Struct("<IIII")  # label id, condition id, child count, value id+1
_LITERAL = struct.Struct("<IB")  # event-name index, positive flag


def save_binary(document: FuzzyTree, sequence: int) -> bytes:
    """Encode *document* (with its commit *sequence*) as a binary image."""
    out = bytearray()
    out += MAGIC
    out += _U16.pack(FORMAT_VERSION)
    out += _U64.pack(sequence)

    # Event table: declared names in insertion order, so the decoded
    # table iterates identically (serialized documents stay stable).
    event_names: list[str] = []
    event_index: dict[str, int] = {}
    events = document.events
    out += _U32.pack(len(events))
    for name, probability in events.items():
        event_index[name] = len(event_names)
        event_names.append(name)
        raw = name.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
        out += _F64.pack(probability)
    out += _U64.pack(events.fresh_counter)

    # Interning pass: labels and conditions repeat heavily across a
    # document, so each distinct one is written once and nodes carry
    # integer ids.
    labels: list[str] = []
    label_index: dict[str, int] = {}
    conditions: list[Condition] = [TRUE]
    condition_index: dict[Condition, int] = {TRUE: 0}
    extra_names: list[str] = []
    node_count = 0
    for node in document.root.iter():
        node_count += 1
        if node.label not in label_index:
            label_index[node.label] = len(labels)
            labels.append(node.label)
        condition = node.condition  # type: ignore[attr-defined]
        if condition not in condition_index:
            condition_index[condition] = len(conditions)
            conditions.append(condition)
            for literal in condition.literals:
                if literal.event not in event_index:
                    event_index[literal.event] = len(event_names) + len(extra_names)
                    extra_names.append(literal.event)

    out += _U32.pack(len(labels))
    for label in labels:
        raw = label.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw

    out += _U32.pack(len(conditions))
    for condition in conditions:
        # Sorted literal order keeps the encoding deterministic for a
        # given document (frozenset iteration order is not).
        literals = sorted(
            condition.literals, key=lambda lit: (lit.event, not lit.positive)
        )
        out += _U16.pack(len(literals))
        for literal in literals:
            out += _LITERAL.pack(event_index[literal.event], literal.positive)

    out += _U32.pack(len(extra_names))
    for name in extra_names:
        raw = name.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw

    values: list[str] = []
    value_index: dict[str, int] = {}
    records = bytearray()
    for node in document.root.iter():
        value = node.value
        if value is None:
            value_id = 0
        else:
            value_id = value_index.get(value)
            if value_id is None:
                value_index[value] = value_id = len(values) + 1
                values.append(value)
        records += _NODE.pack(
            label_index[node.label],
            condition_index[node.condition],  # type: ignore[attr-defined]
            len(node.children),
            value_id,
        )

    out += _U32.pack(len(values))
    for value in values:
        raw = value.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw

    out += _U32.pack(node_count)
    out += records

    out += hashlib.sha256(out).digest()
    return bytes(out)


class _Reader:
    """Bounds-checked cursor over the (already digest-verified) image."""

    __slots__ = ("data", "offset", "limit")

    def __init__(self, data: bytes, offset: int, limit: int) -> None:
        self.data = data
        self.offset = offset
        self.limit = limit

    def u8(self) -> int:
        return self._unpack(_U8)

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def _unpack(self, fmt: struct.Struct):
        end = self.offset + fmt.size
        if end > self.limit:
            raise WarehouseCorruptError("binary snapshot truncated")
        (value,) = fmt.unpack_from(self.data, self.offset)
        self.offset = end
        return value

    def text(self) -> str:
        length = self.u32()
        end = self.offset + length
        if end > self.limit:
            raise WarehouseCorruptError("binary snapshot truncated")
        try:
            value = self.data[self.offset : end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WarehouseCorruptError(
                f"binary snapshot holds invalid utf-8: {exc}"
            ) from exc
        self.offset = end
        return value


def load_binary(data: bytes) -> tuple[FuzzyTree, int]:
    """Decode an image into ``(document, sequence)``.

    Raises :class:`~repro.errors.WarehouseCorruptError` on any damage:
    bad magic, unknown version, digest mismatch, truncation or a
    structurally impossible record.
    """
    if len(data) < len(MAGIC) + _U16.size + _DIGEST_SIZE:
        raise WarehouseCorruptError("binary snapshot too short")
    if data[: len(MAGIC)] != MAGIC:
        raise WarehouseCorruptError("binary snapshot has a bad magic number")
    payload_end = len(data) - _DIGEST_SIZE
    digest = hashlib.sha256(data[:payload_end]).digest()
    if digest != data[payload_end:]:
        raise WarehouseCorruptError("binary snapshot failed its checksum")

    reader = _Reader(data, len(MAGIC), payload_end)
    version = reader.u16()
    if version != FORMAT_VERSION:
        raise WarehouseCorruptError(
            f"binary snapshot format version {version} is not supported"
        )
    sequence = reader.u64()

    event_count = reader.u32()
    event_names: list[str] = []
    probabilities: dict[str, float] = {}
    for _ in range(event_count):
        name = reader.text()
        probability = reader.f64()
        event_names.append(name)
        probabilities[name] = probability
    fresh_counter = reader.u64()

    label_count = reader.u32()
    labels = [reader.text() for _ in range(label_count)]

    # Conditions may reference extra (post-table) names; literal decode
    # is deferred until those names are read.
    condition_count = reader.u32()
    raw_conditions: list[list[tuple[int, int]]] = []
    for _ in range(condition_count):
        literal_count = reader.u16()
        raw_conditions.append(
            [(reader.u32(), reader.u8()) for _ in range(literal_count)]
        )
    extra_count = reader.u32()
    for _ in range(extra_count):
        event_names.append(reader.text())

    conditions: list[Condition] = []
    for raw in raw_conditions:
        if not raw:
            conditions.append(TRUE)
            continue
        try:
            literals = frozenset(
                Literal(event_names[index], bool(positive))
                for index, positive in raw
            )
        except IndexError:
            raise WarehouseCorruptError(
                "binary snapshot condition references an unknown event index"
            ) from None
        conditions.append(Condition(literals))

    value_count = reader.u32()
    values = [reader.text() for _ in range(value_count)]

    node_count = reader.u32()
    if node_count == 0:
        raise WarehouseCorruptError("binary snapshot has no nodes")
    records_end = reader.offset + node_count * _NODE.size
    if records_end > reader.limit:
        raise WarehouseCorruptError("binary snapshot truncated")

    # Preorder rebuild by direct slot writes; the digest vouches for
    # structural validity so constructor checks are skipped.  The whole
    # fixed-width record array is unpacked in one sweep.
    new_node = FuzzyNode.__new__
    root: FuzzyNode | None = None
    # Stack of [parent node, children still expected under it].
    stack: list[list] = []
    try:
        for label_id, condition_id, child_count, value_id in _NODE.iter_unpack(
            data[reader.offset : records_end]
        ):
            node = new_node(FuzzyNode)
            node.label = labels[label_id]
            node._value = values[value_id - 1] if value_id else None
            node._children = []
            node._condition = conditions[condition_id]
            if root is None:
                node._parent = None
                root = node
            else:
                if not stack:
                    raise WarehouseCorruptError(
                        "binary snapshot node count disagrees with child counts"
                    )
                top = stack[-1]
                parent = top[0]
                node._parent = parent
                parent._children.append(node)
                if top[1] == 1:
                    stack.pop()
                else:
                    top[1] -= 1
            if child_count:
                stack.append([node, child_count])
    except IndexError:
        raise WarehouseCorruptError(
            "binary snapshot node references an unknown label/condition/value"
        ) from None
    if stack:
        raise WarehouseCorruptError(
            "binary snapshot child counts exceed the node count"
        )
    assert root is not None

    events = EventTable()
    events._probabilities = probabilities
    events.advance_fresh_counter(fresh_counter)

    tree = FuzzyTree.__new__(FuzzyTree)
    tree.root = root
    tree.events = events
    return tree, sequence
