"""Filesystem storage for the probabilistic XML warehouse.

The paper's system stores fuzzy documents on the file system
(slide 16).  This layer provides the durability primitives the
warehouse needs:

* **atomic snapshots** — the document is written to a temporary file,
  fsynced, then renamed over the live copy, so a crash can never leave
  a half-written document;
* **integrity checking** — a sidecar metadata file records the SHA-256
  of the committed document; a mismatch on read raises
  :class:`~repro.errors.WarehouseCorruptError`;
* **single-writer locking** — a lock file holding the owner pid plus a
  process-identity token, created atomically with its payload via a
  hard link; a held lock raises
  :class:`~repro.errors.WarehouseLockedError`.

The stale-lock breaking rule is explicit: a lock is broken iff

1. its owner pid is dead, **or**
2. its owner pid is alive but its recorded process-start token differs
   from the live process's — the pid was recycled by an unrelated
   process (on Linux the token is the kernel's per-process start time
   from ``/proc/<pid>/stat``).

A live pid whose token matches — or cannot be compared (legacy integer
lock files, platforms without ``/proc``) — keeps the lock: when in
doubt, refuse to steal.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import WarehouseCorruptError, WarehouseError, WarehouseLockedError
from repro.warehouse.log import _fsync_directory

__all__ = ["Storage"]

_DOCUMENT_FILE = "document.xml"
_BINARY_FILE = "document.bin"
_META_FILE = "meta.json"
_LOCK_FILE = "lock"


class Storage:
    """Durable storage rooted at a warehouse directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock_fd: int | None = None

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def document_path(self) -> Path:
        return self.path / _DOCUMENT_FILE

    @property
    def binary_path(self) -> Path:
        return self.path / _BINARY_FILE

    @property
    def meta_path(self) -> Path:
        return self.path / _META_FILE

    @property
    def lock_path(self) -> Path:
        return self.path / _LOCK_FILE

    def initialize(self) -> None:
        """Create the warehouse directory (idempotent)."""
        self.path.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        return self.document_path.exists()

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def acquire_lock(self) -> None:
        """Take the single-writer lock, breaking stale locks (see module
        docstring for the explicit breaking rule).

        The lock file appears atomically *with* its pid/token payload
        (written to a staging file, then hard-linked into place): a
        concurrent acquirer can never observe a half-written lock and
        mistake a live owner for a stale one.  Breaking a stale lock is
        not atomic with re-acquiring it, so after linking the acquirer
        verifies the directory entry is still its own and backs off
        (``WarehouseLockedError``) when a concurrent breaker won the
        race; the unavoidable residue is the window between a breaker
        reading stale content and unlinking, which the verification
        narrows but plain files cannot fully close.
        """
        if self._lock_fd is not None:
            return
        self.initialize()
        payload = json.dumps(
            {"pid": os.getpid(), "token": _process_token(os.getpid())}
        ).encode("ascii")
        staging = self.path / f"{_LOCK_FILE}.{os.getpid()}.tmp"
        fd = os.open(staging, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            for _attempt in range(2):
                try:
                    os.link(staging, self.lock_path)
                except FileExistsError:
                    owner = self._lock_owner()
                    if owner is not None:
                        pid, token = owner
                        if _pid_alive(pid) and not _pid_was_recycled(pid, token):
                            raise WarehouseLockedError(
                                f"warehouse {self.path} is locked by pid {pid}"
                            ) from None
                    # Stale lock: the owner is gone (or the pid was
                    # reused by an unrelated process); break it and
                    # retry once.
                    try:
                        self.lock_path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                fd = os.open(self.lock_path, os.O_RDONLY)
                # Verify the directory entry is still *our* link: a
                # concurrent acquirer that observed the same stale lock
                # may have unlinked ours in the break window.  Losing
                # the race here means backing off, not stealing.
                if os.fstat(fd).st_ino != os.stat(staging).st_ino:
                    os.close(fd)
                    raise WarehouseLockedError(
                        f"lost the lock race on {self.path}"
                    )
                self._lock_fd = fd
                return
            raise WarehouseLockedError(f"could not acquire lock on {self.path}")
        finally:
            try:
                staging.unlink()
            except FileNotFoundError:
                pass

    def release_lock(self) -> None:
        if self._lock_fd is None:
            return
        os.close(self._lock_fd)
        self._lock_fd = None
        try:
            self.lock_path.unlink()
        except FileNotFoundError:
            pass

    def _lock_owner(self) -> tuple[int, str | None] | None:
        """The recorded (pid, process token); None when unreadable.

        Accepts both the JSON layout and legacy plain-integer lock
        files (which carry no token — their live owners are always
        respected).
        """
        try:
            text = self.lock_path.read_text(encoding="ascii").strip()
        except (FileNotFoundError, UnicodeDecodeError):
            return None
        if not text:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and isinstance(payload.get("pid"), int):
            token = payload.get("token")
            return payload["pid"], token if isinstance(token, str) else None
        try:
            return int(text), None
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Document I/O
    # ------------------------------------------------------------------

    def write_document(
        self,
        xml_text: str,
        sequence: int,
        extra_meta: dict | None = None,
        binary: bytes | None = None,
    ) -> None:
        """Atomically commit the document snapshot and its metadata.

        *extra_meta* entries (e.g. the event table's fresh-name counter,
        which WAL replay needs to re-mint identical event names) are
        merged into the metadata file.

        *binary* is the optional compact binary image of the same
        snapshot (see :mod:`repro.warehouse.snapshot_binary`): written
        alongside the XML with its own checksum recorded in the
        metadata, removed when None so a stale image can never outlive
        the XML snapshot it mirrored.  The XML stays the authoritative
        copy — readers fall back to it whenever the binary image is
        missing or damaged.
        """
        self.initialize()
        payload = xml_text.encode("utf-8")
        digest = hashlib.sha256(payload).hexdigest()
        _atomic_write(self.document_path, payload)
        meta = {
            "sha256": digest,
            "sequence": sequence,
            "bytes": len(payload),
            "format": "repro-probabilistic-xml-v1",
        }
        if binary is not None:
            _atomic_write(self.binary_path, binary)
            meta["binary"] = {
                "sha256": hashlib.sha256(binary).hexdigest(),
                "bytes": len(binary),
            }
        else:
            try:
                self.binary_path.unlink()
            except FileNotFoundError:
                pass
        if extra_meta:
            meta.update(extra_meta)
        _atomic_write(
            self.meta_path, json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")
        )

    def read_document(self) -> tuple[str, int]:
        """Read and verify the committed document; returns (xml, sequence)."""
        if not self.document_path.exists():
            raise WarehouseError(f"no document at {self.document_path}")
        payload = self.document_path.read_bytes()
        meta = self.read_meta()
        digest = hashlib.sha256(payload).hexdigest()
        if meta.get("sha256") != digest:
            raise WarehouseCorruptError(
                f"document checksum mismatch in {self.path} "
                f"(expected {meta.get('sha256')}, found {digest})"
            )
        return payload.decode("utf-8"), int(meta.get("sequence", 0))

    def read_binary(self) -> bytes | None:
        """The binary snapshot image, verified against its recorded
        checksum; None when no image was written with the snapshot.

        Raises :class:`~repro.errors.WarehouseCorruptError` when the
        metadata advertises an image that is missing or damaged — the
        caller decides whether to fall back to the XML copy.
        """
        meta = self.read_meta()
        recorded = meta.get("binary")
        if not isinstance(recorded, dict):
            return None
        try:
            payload = self.binary_path.read_bytes()
        except FileNotFoundError:
            raise WarehouseCorruptError(
                f"metadata records a binary snapshot but {self.binary_path} is missing"
            ) from None
        digest = hashlib.sha256(payload).hexdigest()
        if recorded.get("sha256") != digest:
            raise WarehouseCorruptError(
                f"binary snapshot checksum mismatch in {self.path} "
                f"(expected {recorded.get('sha256')}, found {digest})"
            )
        return payload

    def read_meta(self) -> dict:
        """The snapshot's metadata record."""
        try:
            return json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise WarehouseCorruptError(
                f"missing metadata file {self.meta_path}"
            ) from None
        except json.JSONDecodeError as exc:
            raise WarehouseCorruptError(f"corrupt metadata file: {exc}") from exc


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    fd = os.open(tmp_path, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, path)
    # The rename is not durable until the directory entry is synced.
    _fsync_directory(path.parent)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _process_token(pid: int) -> str | None:
    """A stable identity token for a live process (None when unavailable).

    On Linux this is the process start time (clock ticks since boot,
    field 22 of ``/proc/<pid>/stat``): two processes sharing a pid
    across a recycle necessarily differ in it.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_text(encoding="ascii", errors="replace")
    except OSError:
        return None
    # The comm field (2) may contain spaces/parens; fields resume after
    # the last ')'.  starttime is overall field 22 → index 19 there.
    _, _, tail = stat.rpartition(")")
    fields = tail.split()
    if len(fields) <= 19:
        return None
    return fields[19]


def _pid_was_recycled(pid: int, token: str | None) -> bool:
    """True when the live *pid* is provably a different process than the
    lock's recorder (recorded token present and differing from the live
    one); False when in doubt."""
    if token is None:
        return False
    live = _process_token(pid)
    if live is None:
        return False
    return live != token
