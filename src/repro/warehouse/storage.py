"""Filesystem storage for the probabilistic XML warehouse.

The paper's system stores fuzzy documents on the file system
(slide 16).  This layer provides the durability primitives the
warehouse needs:

* **atomic commits** — the document is written to a temporary file,
  fsynced, then renamed over the live copy, so a crash can never leave
  a half-written document;
* **integrity checking** — a sidecar metadata file records the SHA-256
  of the committed document; a mismatch on read raises
  :class:`~repro.errors.WarehouseCorruptError`;
* **single-writer locking** — an ``O_EXCL`` lock file holding the owner
  pid; a held lock raises :class:`~repro.errors.WarehouseLockedError`
  (stale locks from dead processes are broken automatically).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import WarehouseCorruptError, WarehouseError, WarehouseLockedError

__all__ = ["Storage"]

_DOCUMENT_FILE = "document.xml"
_META_FILE = "meta.json"
_LOCK_FILE = "lock"


class Storage:
    """Durable storage rooted at a warehouse directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock_fd: int | None = None

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def document_path(self) -> Path:
        return self.path / _DOCUMENT_FILE

    @property
    def meta_path(self) -> Path:
        return self.path / _META_FILE

    @property
    def lock_path(self) -> Path:
        return self.path / _LOCK_FILE

    def initialize(self) -> None:
        """Create the warehouse directory (idempotent)."""
        self.path.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        return self.document_path.exists()

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def acquire_lock(self) -> None:
        """Take the single-writer lock, breaking stale locks of dead pids."""
        if self._lock_fd is not None:
            return
        self.initialize()
        for _attempt in range(2):
            try:
                fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None and _pid_alive(owner):
                    raise WarehouseLockedError(
                        f"warehouse {self.path} is locked by pid {owner}"
                    ) from None
                # Stale lock: the owner is gone; break it and retry once.
                try:
                    self.lock_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.fsync(fd)
            self._lock_fd = fd
            return
        raise WarehouseLockedError(f"could not acquire lock on {self.path}")

    def release_lock(self) -> None:
        if self._lock_fd is None:
            return
        os.close(self._lock_fd)
        self._lock_fd = None
        try:
            self.lock_path.unlink()
        except FileNotFoundError:
            pass

    def _lock_owner(self) -> int | None:
        try:
            text = self.lock_path.read_text(encoding="ascii").strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Document I/O
    # ------------------------------------------------------------------

    def write_document(self, xml_text: str, sequence: int) -> None:
        """Atomically commit the document and its metadata."""
        self.initialize()
        payload = xml_text.encode("utf-8")
        digest = hashlib.sha256(payload).hexdigest()
        _atomic_write(self.document_path, payload)
        meta = {
            "sha256": digest,
            "sequence": sequence,
            "bytes": len(payload),
            "format": "repro-probabilistic-xml-v1",
        }
        _atomic_write(
            self.meta_path, json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")
        )

    def read_document(self) -> tuple[str, int]:
        """Read and verify the committed document; returns (xml, sequence)."""
        if not self.document_path.exists():
            raise WarehouseError(f"no document at {self.document_path}")
        payload = self.document_path.read_bytes()
        try:
            meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise WarehouseCorruptError(
                f"missing metadata file {self.meta_path}"
            ) from None
        except json.JSONDecodeError as exc:
            raise WarehouseCorruptError(f"corrupt metadata file: {exc}") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if meta.get("sha256") != digest:
            raise WarehouseCorruptError(
                f"document checksum mismatch in {self.path} "
                f"(expected {meta.get('sha256')}, found {digest})"
            )
        return payload.decode("utf-8"), int(meta.get("sequence", 0))


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    fd = os.open(tmp_path, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, path)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
