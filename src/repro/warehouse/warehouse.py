"""The probabilistic XML warehouse (paper, slide 3).

The warehouse is the system the paper's architecture diagram shows:
imprecise modules push *update transactions with a confidence* into a
probabilistic store; consumers pose *TPWJ queries* and receive answers
with confidences.  This class wires the fuzzy-tree engine to the
storage substrate:

* ``Warehouse.create(path, document)`` / ``Warehouse.open(path)``;
* :meth:`query` / :meth:`update` — deprecated shims over the shared
  query/commit paths; the public surface is the session facade
  (:func:`repro.connect` → :class:`~repro.api.session.Session`), which
  layers fluent builders, lazy streaming result sets and
  snapshot-isolated reads (:meth:`pin`) over this class;
* :meth:`update_many` / :meth:`begin_batch` — batched ingestion: many
  transactions applied in order, persisted as **one** commit (one WAL
  append, one fsync);
* :meth:`simplify` — on-demand fuzzy-data simplification (also
  triggered automatically when the document grows past
  ``auto_simplify_factor`` times its size at open);
* :meth:`stats` — document, log and WAL statistics.

Commits are incremental (the :class:`CommitPolicy`): instead of
serializing and fsyncing the whole document on every update, a commit
appends one checksummed record to the write-ahead log; the on-disk
``document.xml`` is a periodic *snapshot*, refreshed when the WAL grows
past the policy's thresholds (or on :meth:`compact` / :meth:`close`).
:meth:`open` recovers by replaying WAL records past the snapshot's
sequence.  ``CommitPolicy(snapshot_every=1)`` restores the historical
full-rewrite behaviour (every commit is its own snapshot).

A warehouse handle owns the single-writer lock from open to close; use
it as a context manager.

Thread safety (the serving layer's contract)
--------------------------------------------
One handle may be shared by many threads in a single-writer /
multi-reader shape:

* the **write path** (update, batch, simplify, compact, close) is
  serialized by a re-entrant in-process lock — concurrent writers
  queue, they never interleave a commit;
* **readers** pin a document generation (:meth:`pin`, taken by the
  session layer on every iteration) and then run lock-free on the
  pinned, frozen tree; pin acquisition briefly synchronizes with the
  write lock so a pin can never observe a half-applied in-place
  mutation;
* pin accounting is O(1) counters under a dedicated mutex (not the
  write lock), so releasing a pin never waits on a commit;
* the engine's caches carry their own locks (see
  :mod:`repro.engine`); when the last pin on a superseded generation
  is released the engine's per-root view for it is dropped eagerly.
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from time import perf_counter

from repro.analysis.metrics import fuzzy_stats
from repro.obs import default_observability
from repro.core.fuzzy_tree import FuzzyTree
from repro.engine import QueryEngine, StatsDelta
from repro.core.query import FuzzyAnswer, query_fuzzy_tree
from repro.core.simplify import SimplifyReport, simplify
from repro.core.update import UpdateReport, apply_update
from repro.errors import (
    ReproError,
    SessionClosedError,
    WarehouseCorruptError,
    WarehouseError,
)
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig
from repro.tpwj.parser import parse_pattern
from repro.tpwj.pattern import Pattern
from repro.updates.transaction import TransactionBatch, UpdateTransaction
from repro.warehouse.log import TransactionLog, WriteAheadLog
from repro.warehouse.snapshot_binary import load_binary, save_binary
from repro.warehouse.storage import Storage
from repro.xmlio.parse import fuzzy_from_string
from repro.xmlio.serialize import fuzzy_to_string
from repro.xmlio.xupdate import (
    batch_from_string,
    batch_to_string,
    transaction_from_string,
    transaction_to_string,
)

__all__ = [
    "CommitPolicy",
    "DocumentPin",
    "USE_DEFAULT_OBSERVABILITY",
    "Warehouse",
    "WarehouseBatch",
]

#: Sentinel default for ``observability=`` parameters: attach the
#: process-global panel (:func:`repro.obs.default_observability`).
#: Pass ``None`` explicitly to attach no instrumentation at all (the
#: benchmark baseline), or an :class:`~repro.obs.Observability` of your
#: own to scope this warehouse's metrics privately.
USE_DEFAULT_OBSERVABILITY = object()


def _resolve_observability(value):
    if value is USE_DEFAULT_OBSERVABILITY:
        return default_observability()
    return value


class CommitPolicy:
    """When the incremental commit pipeline folds the WAL into a snapshot.

    Parameters
    ----------
    snapshot_every:
        Take a fresh snapshot every N commits.  ``1`` disables the
        pipeline entirely: every commit rewrites the full document (the
        historical behaviour) and the WAL stays empty.
    wal_bytes_limit:
        Also snapshot whenever the WAL file grows past this many bytes,
        so a burst of large transactions cannot make recovery replay
        unboundedly expensive.
    compact_on_close:
        Fold any pending WAL records into a final snapshot when the
        handle closes, so a cleanly closed warehouse reopens without
        replay.
    """

    __slots__ = ("snapshot_every", "wal_bytes_limit", "compact_on_close")

    def __init__(
        self,
        snapshot_every: int = 64,
        wal_bytes_limit: int = 4 * 1024 * 1024,
        compact_on_close: bool = True,
    ) -> None:
        if not isinstance(snapshot_every, int) or snapshot_every < 1:
            raise WarehouseError(
                f"snapshot_every must be an int >= 1, got {snapshot_every!r}"
            )
        if not isinstance(wal_bytes_limit, int) or wal_bytes_limit < 1:
            raise WarehouseError(
                f"wal_bytes_limit must be an int >= 1, got {wal_bytes_limit!r}"
            )
        self.snapshot_every = snapshot_every
        self.wal_bytes_limit = wal_bytes_limit
        self.compact_on_close = compact_on_close

    @property
    def full_rewrite(self) -> bool:
        """True when every commit is its own snapshot (no WAL)."""
        return self.snapshot_every == 1

    def __repr__(self) -> str:
        if self.full_rewrite:
            return "CommitPolicy(full-rewrite)"
        return (
            f"CommitPolicy(snapshot_every={self.snapshot_every}, "
            f"wal_bytes_limit={self.wal_bytes_limit}, "
            f"compact_on_close={self.compact_on_close})"
        )


class DocumentPin:
    """A pinned, immutable view of the document at one commit sequence.

    Snapshot isolation for readers: :meth:`Warehouse.pin` hands out the
    *current* document object; the first commit that would mutate a
    pinned document swaps the live document for a clone first
    (copy-on-write), so the pinned object — tree and event table — is
    never touched again.  Pinning is therefore O(1); writers pay one
    clone per pinned generation, and only when they actually write.

    Release pins promptly (:meth:`release` or the session layer's
    snapshot context manager): every pinned generation a writer
    invalidates keeps a full document copy alive.
    """

    __slots__ = ("document", "sequence", "_warehouse")

    def __init__(self, warehouse: "Warehouse", document: FuzzyTree, sequence: int) -> None:
        self.document = document
        self.sequence = sequence
        self._warehouse = warehouse

    @property
    def released(self) -> bool:
        return self._warehouse is None

    def release(self) -> None:
        """Unpin; idempotent and thread-safe.  The warehouse stops
        copy-on-write for this generation once its last pin is gone."""
        warehouse = self._warehouse
        if warehouse is not None:
            # The warehouse clears self._warehouse under its pin mutex,
            # so two racing releases decrement the accounting once.
            warehouse._release_pin(self)

    def __repr__(self) -> str:
        state = "released" if self.released else f"seq={self.sequence}"
        return f"DocumentPin({state})"


class Warehouse:
    """A durable, lockable store for one fuzzy document."""

    def __init__(
        self,
        storage: Storage,
        document: FuzzyTree,
        sequence: int,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
        policy: CommitPolicy | None = None,
        observability=USE_DEFAULT_OBSERVABILITY,
    ) -> None:
        self._storage = storage
        self._document = document
        self._sequence = sequence
        self._log = TransactionLog(storage.path)
        self._wal = WriteAheadLog(storage.path)
        self._policy = policy or CommitPolicy()
        self._snapshot_sequence = sequence
        self._commits_since_snapshot = 0
        # Set when a failed WAL append may have left in-memory mutations
        # with no durable trace: the next commit must snapshot so the
        # on-disk state heals (the seed full-rewrite behaviour).
        self._snapshot_due = False
        self._match_config = match_config
        self._auto_simplify_factor = auto_simplify_factor
        self._baseline_size = document.size()
        self._closed = False
        # Single-writer serialization for this handle's threads: every
        # mutating operation (and pin acquisition, which must not
        # observe a half-applied in-place mutation) holds this lock.
        self._write_lock = threading.RLock()
        # Pin accounting (see DocumentPin): O(1) counters keyed by
        # document identity, guarded by a dedicated mutex so releasing
        # a pin never waits behind a commit.  The first mutation of a
        # pinned document generation clones it out from under the
        # readers (copy-on-write).
        self._pins_lock = threading.Lock()
        self._pin_counts: dict[int, int] = {}
        self._pin_total = 0
        # Instrument panel (metrics registry, tracer, slow-query log):
        # the process-global default unless the caller scoped one per
        # warehouse, or None for no instrumentation at all.
        self._obs = _resolve_observability(observability)
        # Cost-based query engine: plans are cached per (pattern
        # fingerprint, stats version); commits feed their structural
        # delta to the engine, which maintains the statistics in place
        # and bumps the version only when the document really changed —
        # so queries between (and across no-op) commits reuse plans.
        self._engine = QueryEngine(
            lambda: self._document.root, observability=self._obs
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        document: FuzzyTree,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
        policy: CommitPolicy | None = None,
        observability=USE_DEFAULT_OBSERVABILITY,
    ) -> "Warehouse":
        """Create a new warehouse at *path* holding *document*.

        Fails when a document already exists there (open it instead).
        """
        storage = Storage(path)
        storage.initialize()
        if storage.exists():
            raise WarehouseError(f"a warehouse already exists at {path}")
        storage.acquire_lock()
        try:
            warehouse = cls(
                storage,
                document.clone(),
                sequence=0,
                match_config=match_config,
                auto_simplify_factor=auto_simplify_factor,
                policy=policy,
                observability=observability,
            )
            warehouse._commit("create", {})
        except BaseException:
            storage.release_lock()
            raise
        return warehouse

    @classmethod
    def open(
        cls,
        path: str | Path,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
        policy: CommitPolicy | None = None,
        observability=USE_DEFAULT_OBSERVABILITY,
    ) -> "Warehouse":
        """Open an existing warehouse, taking the writer lock.

        Recovery: the snapshot is loaded, then every intact WAL record
        past the snapshot's sequence is replayed against it (a torn
        tail record — a crash mid-append — is discarded; corruption
        anywhere else raises
        :class:`~repro.errors.WarehouseCorruptError`).  Audit-log
        entries missing for replayed commits are reconstructed.

        When the snapshot carries a binary image
        (:mod:`repro.warehouse.snapshot_binary`) it is decoded instead
        of reparsing the XML — the cold-start fast path.  A damaged or
        stale image falls back to the XML snapshot silently (counted in
        ``warehouse.binary_snapshot_fallbacks``); only when the XML copy
        is *also* damaged does the open raise.
        """
        storage = Storage(path)
        if not storage.exists():
            raise WarehouseError(f"no warehouse at {path}")
        obs = _resolve_observability(observability)
        storage.acquire_lock()
        try:
            document, snapshot_sequence = cls._load_snapshot(storage, obs)
            meta = storage.read_meta()
            fresh_counter = meta.get("fresh_counter")
            if isinstance(fresh_counter, int):
                document.events.advance_fresh_counter(fresh_counter)
            wal = WriteAheadLog(storage.path)
            records, _torn = wal.replayable(snapshot_sequence)
            t_replay = perf_counter() if obs is not None else 0.0
            replayed = [
                (record, _replay_record(document, record, match_config))
                for record in records
            ]
            if obs is not None:
                obs.metrics.observe(
                    "warehouse.recovery_seconds", perf_counter() - t_replay
                )
                if records:
                    obs.metrics.incr(
                        "warehouse.recovery_replayed_records", len(records)
                    )
            sequence = records[-1]["sequence"] if records else snapshot_sequence
            warehouse = cls(
                storage,
                document,
                sequence,
                match_config=match_config,
                auto_simplify_factor=auto_simplify_factor,
                policy=policy,
                observability=obs,
            )
            warehouse._snapshot_sequence = snapshot_sequence
            warehouse._commits_since_snapshot = len(records)
            warehouse._reconcile_audit_log(replayed)
        except BaseException:
            storage.release_lock()
            raise
        return warehouse

    @classmethod
    def _load_snapshot(cls, storage: Storage, obs) -> tuple[FuzzyTree, int]:
        """Load the snapshot, preferring the binary image over the XML.

        The binary image must decode cleanly *and* carry the sequence
        the metadata records — anything else (damage, truncation, a
        stale image from an interrupted snapshot write) falls back to
        the authoritative XML copy.
        """
        fallback = False
        payload = None
        try:
            payload = storage.read_binary()
        except WarehouseCorruptError:
            fallback = True
        if payload is not None:
            try:
                document, binary_sequence = load_binary(payload)
            except WarehouseCorruptError:
                fallback = True
            else:
                meta = storage.read_meta()
                if binary_sequence == int(meta.get("sequence", 0)):
                    if obs is not None:
                        obs.metrics.incr("warehouse.binary_snapshot_loads")
                    return document, binary_sequence
                fallback = True
        if fallback and obs is not None:
            obs.metrics.incr("warehouse.binary_snapshot_fallbacks")
        xml_text, snapshot_sequence = storage.read_document()
        return fuzzy_from_string(xml_text), snapshot_sequence

    def close(self) -> None:
        """Fold pending WAL records into a final snapshot (per policy),
        release the lock; the handle becomes unusable.  Idempotent and
        safe to race: exactly one thread performs the shutdown."""
        with self._write_lock:
            if self._closed:
                return
            try:
                if (
                    self._policy.compact_on_close
                    and not self._policy.full_rewrite
                    and (self._commits_since_snapshot > 0 or self._snapshot_due)
                ):
                    self._write_snapshot()
            finally:
                self._storage.release_lock()
                self._closed = True

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("warehouse handle is closed")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def document(self) -> FuzzyTree:
        """The live fuzzy document (treat as read-only; use update())."""
        self._check_open()
        return self._document

    @property
    def sequence(self) -> int:
        """Commit sequence number (increments on every commit)."""
        return self._sequence

    @property
    def snapshot_sequence(self) -> int:
        """Sequence of the on-disk snapshot (commits past it live in the WAL)."""
        return self._snapshot_sequence

    @property
    def policy(self) -> CommitPolicy:
        """The commit pipeline's snapshot/compaction policy."""
        return self._policy

    @property
    def engine(self) -> QueryEngine:
        """The warehouse's cost-based query engine (stats + plan cache)."""
        self._check_open()
        return self._engine

    @property
    def observability(self):
        """The attached :class:`~repro.obs.Observability` panel (or None)."""
        return self._obs

    def _query_answers(
        self, pattern: str | Pattern, *, planner: bool = True
    ) -> list[FuzzyAnswer]:
        """Evaluate a TPWJ query; answers ranked by probability.

        Matching runs through the cost-based engine with the
        warehouse's plan cache (a handle's ``max_matches`` is pushed
        into the engine's streaming protocol, which stops the
        enumeration at the cap); ``planner=False`` falls back to the
        fixed-strategy matcher with the handle's :class:`MatchConfig`.

        Thread safety: the evaluation runs against a pinned generation
        (released on return), so a concurrent commit copies-on-write
        instead of mutating the tree under the matcher.
        """
        self._check_open()
        pattern = self._normalize_pattern(pattern)
        pin = self.pin()
        try:
            return query_fuzzy_tree(
                pin.document,
                pattern,
                self._match_config,
                engine=self._engine if planner else None,
            )
        finally:
            pin.release()

    def _normalize_pattern(self, pattern: str | Pattern) -> Pattern:
        if isinstance(pattern, str):
            return parse_pattern(pattern)
        return pattern

    def explain_plan(self, pattern: str | Pattern) -> str:
        """The engine's statistics and chosen plan for *pattern*, rendered."""
        self._check_open()
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        return self._engine.explain(pattern)

    def pin(self) -> DocumentPin:
        """Pin the current document generation for a snapshot reader.

        O(1): no copy happens here.  The first later commit that would
        mutate the pinned document clones the live document first, so
        the pin's view stays frozen at its commit sequence.  Callers
        must :meth:`DocumentPin.release` when done (the session API's
        ``snapshot()`` context manager and result-set iterators do).

        Thread safety: acquisition synchronizes with the write lock —
        a commit mutating the live document *in place* (no pins open at
        its start) must finish before a new pin can capture the tree,
        so a pin never observes a half-applied mutation.  Everything
        after acquisition is lock-free reads of the frozen generation.
        """
        with self._write_lock:
            self._check_open()
            with self._pins_lock:
                document = self._document
                pin = DocumentPin(self, document, self._sequence)
                key = id(document)
                self._pin_counts[key] = self._pin_counts.get(key, 0) + 1
                self._pin_total += 1
        return pin

    def _release_pin(self, pin: DocumentPin) -> None:
        with self._pins_lock:
            if pin._warehouse is None:
                return  # racing double-release: first caller won
            pin._warehouse = None
            key = id(pin.document)
            count = self._pin_counts.get(key, 0)
            generation_over = count <= 1
            if generation_over:
                self._pin_counts.pop(key, None)
            else:
                self._pin_counts[key] = count - 1
            self._pin_total -= 1
            superseded = pin.document is not self._document
        if generation_over and superseded and not self._closed:
            # Last pin on a copied-on-write generation: the engine's
            # per-root view for it can never be read again.
            self._engine.forget_root(pin.document.root)

    @property
    def read_sessions(self) -> int:
        """Number of snapshot pins currently open against this handle."""
        return self._pin_total

    def health(self) -> dict:
        """Cheap liveness probe: O(1) counters, no document walk.

        Unlike :meth:`stats` this never pins the document or takes the
        write lock, so a health poll cannot stall behind a long commit
        — exactly what the serving layer's ``/healthz`` needs.
        """
        return {
            "alive": not self._closed,
            "sequence": self._sequence,
            "wal_depth": self._commits_since_snapshot,
            "read_sessions": self._pin_total,
        }

    def stats(self) -> dict:
        """Document measurements plus commit/log/WAL counters.

        The O(n) document walk happens on a pinned generation *outside*
        the write lock, so a monitoring poll never stalls commits or
        new pins for the walk's duration.
        """
        pin = self.pin()  # also checks the handle is open
        try:
            info = fuzzy_stats(pin.document).as_dict()
            with self._write_lock:
                self._check_open()
                info["sequence"] = self._sequence
                info["log_entries"] = len(self._log.entries())
                info["snapshot_sequence"] = self._snapshot_sequence
                info["wal_depth"] = self._commits_since_snapshot
                info["wal_bytes"] = self._wal.size_bytes()
                # Exclude the pin this very call holds for its walk.
                info["read_sessions"] = self._pin_total - 1
        finally:
            pin.release()
        shannon = self._engine.shannon.stats()
        info["shannon_cache_entries"] = shannon["entries"]
        info["shannon_cache_misses"] = shannon["misses"]
        info["shannon_cache_hits"] = shannon["hits"]
        obs = self._obs
        if obs is not None:
            self._observe_gauges(obs)
            obs.metrics.set_gauge("warehouse.nodes", info.get("nodes", 0))
            obs.metrics.set_gauge(
                "warehouse.declared_events", info.get("declared_events", 0)
            )
        return info

    def history(self) -> list[dict]:
        """The audit log, oldest first."""
        with self._write_lock:
            self._check_open()
            return self._log.entries()

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def provenance(self, event: str) -> dict | None:
        """The log entry of the update whose confidence created *event*.

        Returns None for events that predate the warehouse (part of the
        initial document) or were not created by an update here.  For
        batched commits the matching per-transaction sub-record is
        returned, augmented with the batch entry's sequence and
        timestamp.
        """
        with self._write_lock:
            self._check_open()
            entries = self._log.entries()
        for entry in entries:
            kind = entry.get("kind")
            if kind == "update" and entry.get("confidence_event") == event:
                return entry
            if kind == "batch":
                for sub in entry.get("reports", ()):
                    if sub.get("confidence_event") == event:
                        merged = dict(sub)
                        merged.setdefault("kind", "batch")
                        merged.setdefault("sequence", entry.get("sequence"))
                        merged.setdefault("timestamp", entry.get("timestamp"))
                        return merged
        return None

    def explain(self, answer) -> list[dict]:
        """Why does this answer hold? One record per involved event.

        *answer* is a :class:`~repro.core.query.FuzzyAnswer` returned by
        :meth:`query`.  Each record carries the event name, its
        probability, and — when the event was minted by an update
        committed through this warehouse — the originating transaction's
        log entry.
        """
        self._check_open()
        records: list[dict] = []
        for event in sorted(answer.dnf.events()):
            records.append(
                {
                    "event": event,
                    "probability": self._document.events.probability(event),
                    "origin": self.provenance(event),
                }
            )
        return records

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _commit_update(
        self,
        transaction: UpdateTransaction | str,
        confidence: float | None = None,
    ) -> UpdateReport:
        """Apply a probabilistic update transaction and commit.

        *transaction* is an :class:`UpdateTransaction` or an XUpdate
        document string.  *confidence*, when given, overrides the
        transaction's own confidence (the paper's modules attach their
        confidence at submission time).
        """
        with self._write_lock:
            self._check_open()
            obs = self._obs
            span = (
                obs.tracer.start("commit", kind="update")
                if obs is not None and obs.tracer.enabled
                else None
            )
            try:
                return self._commit_update_locked(transaction, confidence, obs)
            finally:
                if span is not None:
                    obs.tracer.finish(span)

    def _commit_update_locked(self, transaction, confidence, obs) -> UpdateReport:
        tracing = obs is not None and obs.tracer.enabled
        transaction = self._normalize_transaction(transaction, confidence)
        delta = StatsDelta()
        t0 = perf_counter() if tracing else 0.0
        report = self._apply_in_place(
            lambda: apply_update(
                self._document, transaction, self._match_config, delta=delta
            )
        )
        if tracing:
            obs.tracer.emit("apply", perf_counter() - t0)
        serialized = transaction_to_string(transaction, indent=False)
        self._commit(
            "update",
            {
                "transaction": serialized,
                "confidence": transaction.confidence,
                "confidence_event": report.confidence_event,
                "matches": report.matches,
                "applied": report.applied,
                "inserted_nodes": report.inserted_nodes,
                "survivor_copies": report.survivor_copies,
            },
            wal_payload={
                "transaction": serialized,
                "confidence_event": report.confidence_event,
                **self._match_semantics(),
            },
            delta=delta,
        )
        self._maybe_auto_simplify()
        return report

    def update_many(
        self,
        transactions,
        confidence: float | None = None,
    ) -> list[UpdateReport]:
        """Apply a batch of transactions in order as **one** commit.

        Accepts an iterable of :class:`UpdateTransaction` / XUpdate
        strings or a :class:`TransactionBatch`.  Every member is
        applied against the live document (a later transaction sees
        what an earlier one inserted), but the whole batch is persisted
        with a single WAL append and fsync — the amortization that
        makes high-rate ingestion affordable.  An empty iterable is a
        no-op.
        """
        with self._write_lock:
            self._check_open()
            members = [
                self._normalize_transaction(transaction, confidence)
                for transaction in transactions
            ]
            if not members:
                return []
            obs = self._obs
            span = (
                obs.tracer.start("commit", kind="batch", transactions=len(members))
                if obs is not None and obs.tracer.enabled
                else None
            )
            try:
                return self._update_many_locked(members, obs)
            finally:
                if span is not None:
                    obs.tracer.finish(span)

    def _update_many_locked(self, members, obs) -> list[UpdateReport]:
        tracing = obs is not None and obs.tracer.enabled
        batch = TransactionBatch(members)
        delta = StatsDelta()
        t0 = perf_counter() if tracing else 0.0
        reports = self._apply_in_place(
            lambda: [
                apply_update(
                    self._document, transaction, self._match_config, delta=delta
                )
                for transaction in batch
            ]
        )
        if tracing:
            obs.tracer.emit("apply", perf_counter() - t0)
        self._commit(
            "batch",
            {
                "transactions": len(batch),
                "applied": sum(1 for r in reports if r.applied),
                "matches": sum(r.matches for r in reports),
                "inserted_nodes": sum(r.inserted_nodes for r in reports),
                "survivor_copies": sum(r.survivor_copies for r in reports),
                "reports": [
                    _batch_subrecord(transaction, report)
                    for transaction, report in zip(batch, reports)
                ],
            },
            wal_payload={
                "batch": batch_to_string(batch, indent=False),
                "confidence_events": [r.confidence_event for r in reports],
                **self._match_semantics(),
            },
            delta=delta,
        )
        self._maybe_auto_simplify()
        return reports

    def begin_batch(self) -> "WarehouseBatch":
        """A context manager buffering updates into one batched commit.

        ::

            with warehouse.begin_batch() as batch:
                batch.update(tx1)
                batch.update(tx2, confidence=0.8)
            # exiting commits both as a single WAL append
            reports = batch.reports
        """
        self._check_open()
        return WarehouseBatch(self)

    def simplify(self) -> SimplifyReport:
        """Run fuzzy-data simplification and commit the smaller document.

        Simplification rewrites the document wholesale, so its commit is
        always a fresh snapshot — a natural compaction point.
        """
        with self._write_lock:
            self._check_open()
            obs = self._obs
            tracing = obs is not None and obs.tracer.enabled
            span = obs.tracer.start("commit", kind="simplify") if tracing else None
            try:
                t0 = perf_counter() if tracing else 0.0
                report = self._apply_in_place(lambda: simplify(self._document))
                if tracing:
                    obs.tracer.emit("apply", perf_counter() - t0)
                self._commit(
                    "simplify",
                    {
                        "nodes_before": report.nodes_before,
                        "nodes_after": report.nodes_after,
                        "merged_siblings": report.merged_siblings,
                        "collected_events": report.collected_events,
                    },
                )
                self._baseline_size = max(1, self._document.size())
                return report
            finally:
                if span is not None:
                    obs.tracer.finish(span)

    def compact(self) -> dict:
        """Fold the WAL into a fresh snapshot now; returns a summary."""
        with self._write_lock:
            self._check_open()
            folded = self._commits_since_snapshot
            if (
                folded > 0
                or self._snapshot_due
                or self._snapshot_sequence != self._sequence
            ):
                self._write_snapshot()
            return {
                "sequence": self._sequence,
                "folded_records": folded,
                "wal_bytes": self._wal.size_bytes(),
            }

    def _apply_in_place(self, mutate):
        """Run an in-place document mutation, healing on failure.

        When the mutation raises partway (e.g. a batch member rejected
        after earlier members applied), the in-memory document may hold
        changes with no durable trace.  Later WAL records would then
        replay against a different base than they were written on —
        bricking recovery — so the next commit is forced to snapshot
        (folding whatever state the document is in, exactly as the seed
        full-rewrite path did) and the engine drops possibly-stale
        statistics.
        """
        self._detach_pinned_readers()
        try:
            # The engine guard serializes the mutation against a
            # concurrent reader's statistics recollection, which walks
            # the live root (see QueryEngine.mutating).
            with self._engine.mutating():
                return mutate()
        except BaseException:
            self._snapshot_due = True
            self._engine.invalidate()
            raise

    def _detach_pinned_readers(self) -> None:
        """Copy-on-write: clone the live document if snapshot pins hold it.

        Mutations edit the document in place, so a pinned reader would
        otherwise observe writes mid-iteration.  Swapping the live
        document for a clone *before* mutating leaves every pin's tree
        and event table frozen.  The clone is structurally identical,
        so the engine's statistics (and cached plans) stay valid; the
        executor's document walk re-keys itself off the new root
        identity on the next query.  Pins taken after the swap see the
        new generation — one clone per pinned generation, not per write.
        """
        with self._pins_lock:
            if self._pin_counts.get(id(self._document), 0):
                self._document = self._document.clone()

    def _match_semantics(self) -> dict:
        """The config fields that change *which* matches an update sees.

        Recorded in every WAL record: replay must apply the transaction
        under the semantics of the session that wrote it, whatever
        config the recovering handle opened with.
        """
        return {
            "max_matches": self._match_config.max_matches,
            "honor_negation": self._match_config.honor_negation,
        }

    def _normalize_transaction(
        self, transaction: UpdateTransaction | str, confidence: float | None
    ) -> UpdateTransaction:
        if isinstance(transaction, str):
            transaction = transaction_from_string(transaction)
        if confidence is not None:
            transaction = transaction.with_confidence(confidence)
        return transaction

    def _maybe_auto_simplify(self) -> None:
        if self._auto_simplify_factor is None:
            return
        if self._document.size() > self._auto_simplify_factor * self._baseline_size:
            self.simplify()

    def _commit(
        self,
        kind: str,
        payload: dict,
        wal_payload: dict | None = None,
        delta: StatsDelta | None = None,
    ) -> None:
        obs = self._obs
        tracing = obs is not None and obs.tracer.enabled
        t_commit = perf_counter() if obs is not None else 0.0
        self._sequence += 1
        try:
            if wal_payload is None or self._policy.full_rewrite or self._snapshot_due:
                # Non-replayable commits (create, simplify), the
                # full-rewrite policy, and healing after a failed append
                # snapshot directly.  The audit log needs its own fsync
                # here: the snapshot carries no replayable trace to
                # rebuild the entry from.
                try:
                    self._write_snapshot()
                except BaseException:
                    if self._snapshot_sequence != self._sequence:
                        # The snapshot never became durable: roll the
                        # sequence back (a later WAL append must not
                        # leave a gap) and keep the heal flag — the
                        # in-memory document still has mutations with
                        # no durable trace.  (A failure *after* the
                        # snapshot write — the WAL reset — leaves the
                        # commit durable; the sequence stands.)
                        self._sequence -= 1
                        self._snapshot_due = True
                    raise
                self._log.append(kind, self._sequence, payload, fsync=True)
            else:
                try:
                    t_wal = perf_counter() if obs is not None else 0.0
                    self._wal.append(kind, self._sequence, wal_payload)
                    if obs is not None:
                        appended = perf_counter() - t_wal
                        if tracing:
                            obs.tracer.emit("wal_append", appended)
                        obs.metrics.observe(
                            "warehouse.wal_append_seconds", appended
                        )
                except BaseException:
                    # The commit was not acknowledged: roll the sequence
                    # back (no WAL gap), but the in-memory document
                    # already mutated with no durable trace — force the
                    # next commit to snapshot.
                    self._sequence -= 1
                    self._snapshot_due = True
                    raise
                self._commits_since_snapshot += 1
                compacting = (
                    self._commits_since_snapshot >= self._policy.snapshot_every
                    or self._wal.size_bytes() >= self._policy.wal_bytes_limit
                )
                # Audit before any compaction: a threshold snapshot
                # resets the WAL, and a crash after that reset could
                # never rebuild a not-yet-written audit entry.  While
                # the record is still in the WAL the append can stay
                # un-fsynced (recovery reconstructs it); when this
                # commit folds the WAL away, the entry must hit disk
                # first.  Failures past this point leave the commit
                # durable in the WAL, so the sequence stands.
                self._log.append(kind, self._sequence, payload, fsync=compacting)
                if compacting:
                    self._write_snapshot()
            if obs is not None:
                obs.metrics.incr("warehouse.commits")
                obs.metrics.incr(f"warehouse.commits.{kind}")
                obs.metrics.observe(
                    "warehouse.commit_seconds", perf_counter() - t_commit
                )
                self._observe_gauges(obs)
        finally:
            # Feed the commit's structural delta to the engine even on
            # failure paths: the delta describes the in-memory mutation,
            # which happened whether or not persistence succeeded, and a
            # stale cached walk would serve wrong query results.
            self._engine.apply_delta(delta)

    def _write_snapshot(self) -> None:
        obs = self._obs
        t0 = perf_counter() if obs is not None else 0.0
        self._storage.write_document(
            fuzzy_to_string(self._document),
            self._sequence,
            extra_meta={"fresh_counter": self._document.events.fresh_counter},
            binary=save_binary(self._document, self._sequence),
        )
        # The snapshot is durable from here: update the bookkeeping
        # before resetting the WAL, so a reset failure cannot make a
        # caller believe nothing durable happened for this sequence
        # (stale WAL records at or below the snapshot sequence are
        # skipped by recovery anyway).
        self._snapshot_sequence = self._sequence
        self._commits_since_snapshot = 0
        self._snapshot_due = False
        self._wal.reset()
        if obs is not None:
            written = perf_counter() - t0
            if obs.tracer.enabled:
                obs.tracer.emit("snapshot", written)
            obs.metrics.observe("warehouse.snapshot_seconds", written)

    def _observe_gauges(self, obs) -> None:
        """Refresh the cheap warehouse gauges (called after each commit
        and before exports; the O(n) node count only on stats())."""
        metrics = obs.metrics
        metrics.set_gauge("warehouse.sequence", self._sequence)
        metrics.set_gauge("warehouse.wal_depth", self._commits_since_snapshot)
        metrics.set_gauge("warehouse.wal_bytes", self._wal.size_bytes())
        metrics.set_gauge("warehouse.read_sessions", self._pin_total)

    def _reconcile_audit_log(self, replayed: list[tuple[dict, list]]) -> None:
        """Reconstruct audit entries lost with the un-fsynced tail.

        Under the WAL pipeline the audit log is best-effort; after a
        crash its tail may lag the WAL.  Replay knows everything the
        audit entry records, so recovery appends the missing entries
        (marked ``"replayed": true``).
        """
        # The audit log is not fsynced under the WAL pipeline, so a
        # crash commonly tears its last line; drop it before reading
        # (the entry is rebuilt below if its commit survived in the WAL).
        self._log.discard_torn_tail()
        if not replayed:
            return
        last_logged = self._log.last_sequence()
        for record, outcomes in replayed:
            if record["sequence"] <= last_logged:
                continue
            if record["kind"] == "update":
                serialized, confidence, report = outcomes[0]
                entry = {
                    "transaction": serialized,
                    "confidence": confidence,
                    "confidence_event": report.confidence_event,
                    "matches": report.matches,
                    "applied": report.applied,
                    "inserted_nodes": report.inserted_nodes,
                    "survivor_copies": report.survivor_copies,
                    "replayed": True,
                }
            else:  # batch
                entry = {
                    "transactions": len(outcomes),
                    "applied": sum(1 for _, _, r in outcomes if r.applied),
                    "matches": sum(r.matches for _, _, r in outcomes),
                    "inserted_nodes": sum(r.inserted_nodes for _, _, r in outcomes),
                    "survivor_copies": sum(r.survivor_copies for _, _, r in outcomes),
                    "reports": [
                        _batch_subrecord_serialized(serialized, confidence, report)
                        for serialized, confidence, report in outcomes
                    ],
                    "replayed": True,
                }
            self._log.append(record["kind"], record["sequence"], entry, fsync=False)

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"seq={self._sequence}"
        return f"Warehouse({self._storage.path}, {state})"


class WarehouseBatch:
    """Buffers update transactions for one batched commit (see
    :meth:`Warehouse.begin_batch`)."""

    def __init__(self, warehouse: Warehouse) -> None:
        self._warehouse = warehouse
        self._pending: list[UpdateTransaction] = []
        #: The per-transaction reports, populated when the batch commits.
        self.reports: list[UpdateReport] | None = None

    def update(
        self,
        transaction: UpdateTransaction | str,
        confidence: float | None = None,
    ) -> None:
        """Buffer a transaction (validated now, applied at commit)."""
        self._pending.append(
            self._warehouse._normalize_transaction(transaction, confidence)
        )

    def __len__(self) -> int:
        return len(self._pending)

    def __enter__(self) -> "WarehouseBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._pending:
            self.reports = self._warehouse.update_many(self._pending)
            self._pending = []


def _batch_subrecord(transaction: UpdateTransaction, report: UpdateReport) -> dict:
    return _batch_subrecord_serialized(
        transaction_to_string(transaction, indent=False),
        transaction.confidence,
        report,
    )


def _batch_subrecord_serialized(
    serialized: str, confidence: float, report: UpdateReport
) -> dict:
    return {
        "transaction": serialized,
        "confidence": confidence,
        "confidence_event": report.confidence_event,
        "matches": report.matches,
        "applied": report.applied,
        "inserted_nodes": report.inserted_nodes,
        "survivor_copies": report.survivor_copies,
    }


def _replay_record(
    document: FuzzyTree, record: dict, match_config: MatchConfig
) -> list[tuple]:
    """Re-apply one WAL record to *document*; returns (serialized tx,
    report) pairs.

    Replay must reproduce the original commit bit for bit; in
    particular the confidence events it mints must carry the names the
    original session recorded (downstream conditions reference them).
    A divergence means the snapshot/WAL pair does not describe the same
    history and raises :class:`WarehouseCorruptError` rather than
    silently building a different document.
    """
    sequence = record["sequence"]
    payload = record.get("payload") or {}
    kind = record["kind"]
    # Replay under the match semantics of the session that wrote the
    # record, not the recovering handle's (a different max_matches or
    # negation setting would silently rebuild a different document).
    if "max_matches" in payload or "honor_negation" in payload:
        match_config = dataclasses.replace(
            match_config,
            max_matches=payload.get("max_matches"),
            honor_negation=payload.get("honor_negation", True),
        )
    try:
        if kind == "update":
            serialized = payload["transaction"]
            expected = [payload.get("confidence_event")]
            transactions = [transaction_from_string(serialized)]
            serializeds = [serialized]
        elif kind == "batch":
            batch = batch_from_string(payload["batch"])
            transactions = list(batch)
            serializeds = [
                transaction_to_string(transaction, indent=False)
                for transaction in batch
            ]
            expected = list(payload.get("confidence_events") or [None] * len(batch))
            if len(expected) != len(transactions):
                raise WarehouseCorruptError(
                    f"WAL record {sequence} confidence_events/batch length mismatch"
                )
        else:
            raise WarehouseCorruptError(
                f"unreplayable WAL record kind {kind!r} at sequence {sequence}"
            )
        outcomes: list[tuple] = []
        for serialized, transaction, expected_event in zip(
            serializeds, transactions, expected
        ):
            report = apply_update(document, transaction, match_config)
            if report.confidence_event != expected_event:
                raise WarehouseCorruptError(
                    f"WAL replay diverged at sequence {sequence}: minted "
                    f"confidence event {report.confidence_event!r}, the "
                    f"original commit recorded {expected_event!r}"
                )
            outcomes.append((serialized, transaction.confidence, report))
        return outcomes
    except WarehouseCorruptError:
        raise
    except (ReproError, KeyError, TypeError) as exc:
        raise WarehouseCorruptError(
            f"WAL replay failed at sequence {sequence}: {exc}"
        ) from exc
