"""The probabilistic XML warehouse (paper, slide 3).

The warehouse is the system the paper's architecture diagram shows:
imprecise modules push *update transactions with a confidence* into a
probabilistic store; consumers pose *TPWJ queries* and receive answers
with confidences.  This class wires the fuzzy-tree engine to the
storage substrate:

* ``Warehouse.create(path, document)`` / ``Warehouse.open(path)``;
* :meth:`query` — text or :class:`~repro.tpwj.pattern.Pattern` in,
  probability-ranked answers out;
* :meth:`update` — an :class:`~repro.updates.transaction.UpdateTransaction`
  or an XUpdate document string in; the update is applied to the fuzzy
  document, committed atomically and logged;
* :meth:`simplify` — on-demand fuzzy-data simplification (also
  triggered automatically when the document grows past
  ``auto_simplify_factor`` times its size at open);
* :meth:`stats` — document and log statistics.

A warehouse handle owns the single-writer lock from open to close; use
it as a context manager.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.metrics import fuzzy_stats
from repro.core.fuzzy_tree import FuzzyTree
from repro.engine import QueryEngine
from repro.core.query import FuzzyAnswer, query_fuzzy_tree
from repro.core.simplify import SimplifyReport, simplify
from repro.core.update import UpdateReport, apply_update
from repro.errors import WarehouseError
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig
from repro.tpwj.parser import parse_pattern
from repro.tpwj.pattern import Pattern
from repro.updates.transaction import UpdateTransaction
from repro.warehouse.log import TransactionLog
from repro.warehouse.storage import Storage
from repro.xmlio.parse import fuzzy_from_string
from repro.xmlio.serialize import fuzzy_to_string
from repro.xmlio.xupdate import transaction_from_string, transaction_to_string

__all__ = ["Warehouse"]


class Warehouse:
    """A durable, lockable store for one fuzzy document."""

    def __init__(
        self,
        storage: Storage,
        document: FuzzyTree,
        sequence: int,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
    ) -> None:
        self._storage = storage
        self._document = document
        self._sequence = sequence
        self._log = TransactionLog(storage.path)
        self._match_config = match_config
        self._auto_simplify_factor = auto_simplify_factor
        self._baseline_size = document.size()
        self._closed = False
        # Cost-based query engine: plans are cached per (pattern
        # fingerprint, stats version); every commit invalidates the
        # stats, so repeated queries between commits reuse their plan.
        self._engine = QueryEngine(lambda: self._document.root)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        document: FuzzyTree,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
    ) -> "Warehouse":
        """Create a new warehouse at *path* holding *document*.

        Fails when a document already exists there (open it instead).
        """
        storage = Storage(path)
        storage.initialize()
        if storage.exists():
            raise WarehouseError(f"a warehouse already exists at {path}")
        storage.acquire_lock()
        try:
            warehouse = cls(
                storage,
                document.clone(),
                sequence=0,
                match_config=match_config,
                auto_simplify_factor=auto_simplify_factor,
            )
            warehouse._commit("create", {})
        except BaseException:
            storage.release_lock()
            raise
        return warehouse

    @classmethod
    def open(
        cls,
        path: str | Path,
        match_config: MatchConfig = DEFAULT_CONFIG,
        auto_simplify_factor: float | None = None,
    ) -> "Warehouse":
        """Open an existing warehouse, taking the writer lock."""
        storage = Storage(path)
        if not storage.exists():
            raise WarehouseError(f"no warehouse at {path}")
        storage.acquire_lock()
        try:
            xml_text, sequence = storage.read_document()
            document = fuzzy_from_string(xml_text)
        except BaseException:
            storage.release_lock()
            raise
        return cls(
            storage,
            document,
            sequence,
            match_config=match_config,
            auto_simplify_factor=auto_simplify_factor,
        )

    def close(self) -> None:
        """Release the lock; the handle becomes unusable."""
        if not self._closed:
            self._storage.release_lock()
            self._closed = True

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise WarehouseError("warehouse handle is closed")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def document(self) -> FuzzyTree:
        """The live fuzzy document (treat as read-only; use update())."""
        self._check_open()
        return self._document

    @property
    def sequence(self) -> int:
        """Commit sequence number (increments on every commit)."""
        return self._sequence

    @property
    def engine(self) -> QueryEngine:
        """The warehouse's cost-based query engine (stats + plan cache)."""
        self._check_open()
        return self._engine

    def query(
        self, pattern: str | Pattern, planner: bool = True
    ) -> list[FuzzyAnswer]:
        """Evaluate a TPWJ query; answers ranked by probability.

        By default matching runs through the cost-based engine with the
        warehouse's plan cache; ``planner=False`` falls back to the
        fixed-strategy matcher with the handle's :class:`MatchConfig`.
        A handle opened with ``max_matches`` set always uses the fixed
        matcher: a truncated enumeration must return the documented
        deterministic pre-order subset, not a plan-order-dependent one.
        """
        self._check_open()
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        use_planner = planner and self._match_config.max_matches is None
        return query_fuzzy_tree(
            self._document,
            pattern,
            self._match_config,
            engine=self._engine if use_planner else None,
        )

    def explain_plan(self, pattern: str | Pattern) -> str:
        """The engine's statistics and chosen plan for *pattern*, rendered."""
        self._check_open()
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        return self._engine.explain(pattern)

    def stats(self) -> dict:
        """Document measurements plus commit/log counters."""
        self._check_open()
        info = fuzzy_stats(self._document).as_dict()
        info["sequence"] = self._sequence
        info["log_entries"] = len(self._log.entries())
        return info

    def history(self) -> list[dict]:
        """The audit log, oldest first."""
        self._check_open()
        return self._log.entries()

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def provenance(self, event: str) -> dict | None:
        """The log entry of the update whose confidence created *event*.

        Returns None for events that predate the warehouse (part of the
        initial document) or were not created by an update here.
        """
        self._check_open()
        for entry in self._log.entries():
            if entry.get("kind") == "update" and entry.get("confidence_event") == event:
                return entry
        return None

    def explain(self, answer) -> list[dict]:
        """Why does this answer hold? One record per involved event.

        *answer* is a :class:`~repro.core.query.FuzzyAnswer` returned by
        :meth:`query`.  Each record carries the event name, its
        probability, and — when the event was minted by an update
        committed through this warehouse — the originating transaction's
        log entry.
        """
        self._check_open()
        records: list[dict] = []
        for event in sorted(answer.dnf.events()):
            records.append(
                {
                    "event": event,
                    "probability": self._document.events.probability(event),
                    "origin": self.provenance(event),
                }
            )
        return records

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def update(
        self,
        transaction: UpdateTransaction | str,
        confidence: float | None = None,
    ) -> UpdateReport:
        """Apply a probabilistic update transaction and commit.

        *transaction* is an :class:`UpdateTransaction` or an XUpdate
        document string.  *confidence*, when given, overrides the
        transaction's own confidence (the paper's modules attach their
        confidence at submission time).
        """
        self._check_open()
        if isinstance(transaction, str):
            transaction = transaction_from_string(transaction)
        if confidence is not None:
            transaction = transaction.with_confidence(confidence)
        report = apply_update(self._document, transaction, self._match_config)
        self._commit(
            "update",
            {
                "transaction": transaction_to_string(transaction, indent=False),
                "confidence": transaction.confidence,
                "confidence_event": report.confidence_event,
                "matches": report.matches,
                "applied": report.applied,
                "inserted_nodes": report.inserted_nodes,
                "survivor_copies": report.survivor_copies,
            },
        )
        self._maybe_auto_simplify()
        return report

    def simplify(self) -> SimplifyReport:
        """Run fuzzy-data simplification and commit the smaller document."""
        self._check_open()
        report = simplify(self._document)
        self._commit(
            "simplify",
            {
                "nodes_before": report.nodes_before,
                "nodes_after": report.nodes_after,
                "merged_siblings": report.merged_siblings,
                "collected_events": report.collected_events,
            },
        )
        self._baseline_size = max(1, self._document.size())
        return report

    def _maybe_auto_simplify(self) -> None:
        if self._auto_simplify_factor is None:
            return
        if self._document.size() > self._auto_simplify_factor * self._baseline_size:
            self.simplify()

    def _commit(self, kind: str, payload: dict) -> None:
        self._sequence += 1
        self._storage.write_document(
            fuzzy_to_string(self._document), self._sequence
        )
        self._log.append(kind, self._sequence, payload)
        # Every commit may have changed the document: age out the
        # statistics (and with them any cached plans priced on them).
        self._engine.invalidate()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"seq={self._sequence}"
        return f"Warehouse({self._storage.path}, {state})"
