"""Instrumentation and metrics — substrate S10 (slide 19, complexity analysis)."""

from repro.analysis.complexity import (
    Fit,
    classify_growth,
    fit_exponential,
    fit_power_law,
    measure,
)
from repro.analysis.instrumentation import Counters, counters
from repro.analysis.metrics import (
    FuzzyStats,
    distribution_entropy,
    fuzzy_stats,
    tree_stats,
)

__all__ = [
    "Counters",
    "counters",
    "FuzzyStats",
    "fuzzy_stats",
    "tree_stats",
    "distribution_entropy",
    "Fit",
    "fit_power_law",
    "fit_exponential",
    "classify_growth",
    "measure",
]
