"""Empirical complexity estimation (paper, slide 19: "complexity analysis").

The paper lists complexity analysis of queries, updates and
simplification as a perspective.  This module provides the measurement
half: run an operation over a parameter sweep, fit the measurements to
power-law (``t ≈ c·n^k``, slope ``k`` in log-log space) and exponential
(``t ≈ c·2^(k·n)``, slope in lin-log space) models, and report which
fits better.  Benchmarks use it to *check shapes*: fuzzy query time
should fit a small polynomial in the document size, while naive
possible-worlds evaluation should fit an exponential in the event
count.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["Fit", "fit_power_law", "fit_exponential", "measure", "classify_growth"]


@dataclass(slots=True)
class Fit:
    """A least-squares fit of a growth model.

    ``exponent`` is ``k`` in ``c·n^k`` (power law) or ``c·2^(k·n)``
    (exponential); ``r_squared`` is the coefficient of determination in
    the fitted space.
    """

    model: str
    exponent: float
    constant: float
    r_squared: float

    def __str__(self) -> str:
        if self.model == "power":
            return f"t ≈ {self.constant:.3g}·n^{self.exponent:.2f} (R²={self.r_squared:.3f})"
        return f"t ≈ {self.constant:.3g}·2^({self.exponent:.2f}·n) (R²={self.r_squared:.3f})"


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Slope, intercept and R² of a 1-D least-squares line."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0.0:
        raise ValueError("degenerate sweep: all x values equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in ys)
    ss_residual = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 - ss_residual / ss_total if ss_total > 0 else 1.0
    return slope, intercept, r_squared


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> Fit:
    """Fit ``t ≈ c·n^k`` by regressing log t on log n."""
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-12)) for t in times]
    slope, intercept, r_squared = _least_squares(xs, ys)
    return Fit("power", slope, math.exp(intercept), r_squared)


def fit_exponential(sizes: Sequence[float], times: Sequence[float]) -> Fit:
    """Fit ``t ≈ c·2^(k·n)`` by regressing log2 t on n."""
    ys = [math.log2(max(t, 1e-12)) for t in times]
    slope, intercept, r_squared = _least_squares(list(sizes), ys)
    return Fit("exponential", slope, 2.0**intercept, r_squared)


def classify_growth(sizes: Sequence[float], times: Sequence[float]) -> Fit:
    """The better of the power-law and exponential fits (by R²)."""
    power = fit_power_law(sizes, times)
    exponential = fit_exponential(sizes, times)
    return power if power.r_squared >= exponential.r_squared else exponential


def measure(
    operation: Callable[[int], object],
    sizes: Sequence[int],
    repeats: int = 3,
) -> list[float]:
    """Median wall-clock seconds of ``operation(size)`` per size."""
    results: list[float] = []
    for size in sizes:
        samples: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            operation(size)
            samples.append(time.perf_counter() - start)
        samples.sort()
        results.append(samples[len(samples) // 2])
    return results
