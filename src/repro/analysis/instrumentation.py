"""Lightweight global counters and timers.

The "complexity analysis" perspective of the paper (slide 19) is served
by instrumenting the hot paths: the TPWJ matcher counts candidates and
partial assignments, the update engine counts survivor copies, the
semantics module counts enumerated worlds.  Benchmarks snapshot and
reset these counters around measured sections (E5, E9).

A single process-global :data:`counters` instance keeps the hot-path
cost to one dictionary increment; everything is explicit — no decorators
or import-time magic.

Instrumentation can be switched off entirely (:meth:`Counters.disable`
or the :meth:`Counters.disabled` context manager): :meth:`Counters.incr`
then returns before touching the dictionary, and the hottest loops
(matching, the per-match probability pipeline) read the
:attr:`Counters.enabled` flag **once per query** and skip the calls
altogether — timing-sensitive benchmarks measure the algorithms, not
the bookkeeping.

Counter updates are serialized by an internal lock: the serving layer
increments them from concurrent reader threads (plan-cache hits, match
counts), and an unlocked read-modify-write would silently lose
increments.  The lock is uncontended in single-threaded benchmarking
and skipped entirely when instrumentation is disabled.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Counters", "counters"]


class Counters:
    """A named-counter registry with stopwatch support."""

    __slots__ = ("_values", "_lock", "enabled")

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()
        #: When False, :meth:`incr` is a no-op.  Hot loops may hoist
        #: this flag into a local at the top of a query instead of
        #: paying an attribute read plus a call per iteration.
        self.enabled = True

    def incr(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def enable(self) -> None:
        """Turn instrumentation on (the default)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumentation off; :meth:`incr` becomes a no-op."""
        self.enabled = False

    @contextmanager
    def disabled(self):
        """Context manager: instrumentation off inside the body."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous

    def get(self, name: str) -> float:
        return self._values.get(name, 0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def snapshot(self) -> dict[str, float]:
        """A point-in-time copy of all counters."""
        with self._lock:
            return dict(self._values)

    def prefixed(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with *prefix* (sorted by name).

        The engine's planner counters live under ``engine.`` —
        ``engine.stats_collected``, ``engine.plans_built``,
        ``engine.plans_executed``, ``engine.plan_cache_hits`` /
        ``..._misses`` / ``..._evictions``,
        ``engine.estimated_candidates`` and
        ``engine.actual_candidates`` — so ``prefixed("engine.")``
        returns the planner's whole dashboard in one call.
        """
        # Snapshot under the lock: a concurrent incr inserting a new
        # key mid-iteration would otherwise raise "dictionary changed
        # size during iteration" in a serving-thread dashboard read.
        with self._lock:
            values = dict(self._values)
        return {
            name: value
            for name, value in sorted(values.items())
            if name.startswith(prefix)
        }

    @contextmanager
    def timed(self, name: str):
        """Accumulate wall-clock seconds spent in the body under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.incr(name, time.perf_counter() - start)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.snapshot().items()))
        return f"Counters({body})"


#: Process-global counter registry used by the matcher, the update
#: engine and the possible-worlds semantics.
counters = Counters()
