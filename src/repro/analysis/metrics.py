"""Size and complexity metrics for fuzzy documents and world sets.

These feed the growth/simplification benchmarks (E5, E7) and the
warehouse statistics endpoint.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.core.fuzzy_tree import FuzzyTree
    from repro.pworlds.worlds import PossibleWorlds
    from repro.trees.node import Node

__all__ = ["FuzzyStats", "fuzzy_stats", "tree_stats", "distribution_entropy"]


@dataclass(slots=True)
class FuzzyStats:
    """Aggregate measurements of a fuzzy document."""

    nodes: int
    height: int
    declared_events: int
    used_events: int
    condition_literals: int
    max_condition_size: int
    conditioned_nodes: int

    def as_dict(self) -> dict[str, int]:
        return {
            "nodes": self.nodes,
            "height": self.height,
            "declared_events": self.declared_events,
            "used_events": self.used_events,
            "condition_literals": self.condition_literals,
            "max_condition_size": self.max_condition_size,
            "conditioned_nodes": self.conditioned_nodes,
        }


def fuzzy_stats(fuzzy: "FuzzyTree") -> FuzzyStats:
    """Measure a fuzzy document (nodes, events, condition sizes)."""
    literals = 0
    max_condition = 0
    conditioned = 0
    for node in fuzzy.iter_nodes():
        size = len(node.condition)
        literals += size
        max_condition = max(max_condition, size)
        if size:
            conditioned += 1
    return FuzzyStats(
        nodes=fuzzy.size(),
        height=fuzzy.root.height(),
        declared_events=len(fuzzy.events),
        used_events=len(fuzzy.used_events()),
        condition_literals=literals,
        max_condition_size=max_condition,
        conditioned_nodes=conditioned,
    )


def tree_stats(root: "Node") -> dict[str, object]:
    """Basic shape statistics of an ordinary data tree."""
    sizes = Counter(node.label for node in root.iter())
    leaves = sum(1 for _ in root.leaves())
    return {
        "nodes": root.size(),
        "height": root.height(),
        "leaves": leaves,
        "labels": dict(sizes),
    }


def distribution_entropy(worlds: "PossibleWorlds") -> float:
    """Shannon entropy (bits) of a normalized world distribution."""
    total = worlds.total_probability()
    if total <= 0.0:
        return 0.0
    entropy = 0.0
    for world in worlds:
        p = world.probability / total
        if p > 0.0:
            entropy -= p * math.log2(p)
    return entropy
