"""Elementary update operations (paper, slide 7).

An update transaction bundles a TPWJ query with a set of elementary
operations anchored at the query's pattern nodes (through their
variables):

* :class:`InsertOperation` — insert a copy of a subtree under the data
  node bound by an anchor variable;
* :class:`DeleteOperation` — delete the subtree rooted at the data node
  bound by a target variable.
"""

from __future__ import annotations

from repro.errors import UpdateError
from repro.trees.node import Node

__all__ = ["InsertOperation", "DeleteOperation", "UpdateOperation"]


class InsertOperation:
    """Insert a clone of *subtree* under the node bound by ``$anchor``."""

    __slots__ = ("anchor", "subtree")

    def __init__(self, anchor: str, subtree: Node) -> None:
        if not isinstance(anchor, str) or not anchor:
            raise UpdateError(f"insert anchor must be a variable name, got {anchor!r}")
        if not isinstance(subtree, Node):
            raise UpdateError(f"insert subtree must be a Node, got {type(subtree).__name__}")
        self.anchor = anchor
        # Clone defensively: the operation owns an immutable template.
        self.subtree = subtree.clone()

    def __repr__(self) -> str:
        return f"InsertOperation(anchor=${self.anchor}, subtree={self.subtree.label!r})"


class DeleteOperation:
    """Delete the subtree rooted at the node bound by ``$target``."""

    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        if not isinstance(target, str) or not target:
            raise UpdateError(f"delete target must be a variable name, got {target!r}")
        self.target = target

    def __repr__(self) -> str:
        return f"DeleteOperation(target=${self.target})"


#: Union alias for type hints.
UpdateOperation = InsertOperation | DeleteOperation
