"""Probabilistic update transactions (paper, slides 7 and 10).

A transaction is a TPWJ query plus elementary operations stating where
to insert and delete, and a *confidence* ``c``: the probability that the
update actually holds.  Its possible-worlds semantics (slide 10) splits
every selected world ``(t, p)`` into ``(τ(t), p·c)`` and ``(t, p·(1-c))``,
where ``τ`` applies **all** operations for **all** matches of the query
in ``t``.

:func:`apply_deterministic` implements ``τ`` on ordinary trees.  Its
operation order is: all insertions first (one per match per insert
operation), then all deletions (deepest targets first; deleting a node
whose subtree was already removed is a no-op).  Inserting under a node
that the same transaction deletes is therefore absorbed by the
deletion — the fuzzy-tree executor mirrors exactly this order.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import UpdateError
from repro.tpwj.match import DEFAULT_CONFIG, Match, MatchConfig, find_matches
from repro.tpwj.pattern import Pattern
from repro.updates.operations import DeleteOperation, InsertOperation, UpdateOperation
from repro.trees.node import Node

__all__ = ["UpdateTransaction", "TransactionBatch", "apply_deterministic"]


class UpdateTransaction:
    """A TPWJ query, elementary operations, and a confidence."""

    __slots__ = ("query", "operations", "confidence")

    def __init__(
        self,
        query: Pattern,
        operations: Iterable[UpdateOperation],
        confidence: float = 1.0,
    ) -> None:
        if not isinstance(query, Pattern):
            raise UpdateError(f"transaction query must be a Pattern, got {type(query).__name__}")
        ops = tuple(operations)
        if not ops:
            raise UpdateError("transaction has no operations")
        for op in ops:
            if not isinstance(op, (InsertOperation, DeleteOperation)):
                raise UpdateError(f"unsupported operation type: {type(op).__name__}")
        if isinstance(confidence, bool) or not isinstance(confidence, (int, float)):
            raise UpdateError(f"confidence must be a number in [0, 1], got {confidence!r}")
        confidence = float(confidence)
        if not 0.0 <= confidence <= 1.0 or math.isnan(confidence):
            raise UpdateError(f"confidence must lie in [0, 1], got {confidence}")
        self.query = query
        self.operations = ops
        self.confidence = confidence
        self._check_variables()

    def _check_variables(self) -> None:
        """Every anchor/target must be a uniquely-bound query variable."""
        for op in self.operations:
            variable = op.anchor if isinstance(op, InsertOperation) else op.target
            self.query.node_for_variable(variable)  # raises QueryError on misuse

    @property
    def insertions(self) -> tuple[InsertOperation, ...]:
        return tuple(op for op in self.operations if isinstance(op, InsertOperation))

    @property
    def deletions(self) -> tuple[DeleteOperation, ...]:
        return tuple(op for op in self.operations if isinstance(op, DeleteOperation))

    def with_confidence(self, confidence: float) -> "UpdateTransaction":
        """A copy of this transaction carrying a different confidence."""
        return UpdateTransaction(self.query, self.operations, confidence)

    def __repr__(self) -> str:
        return (
            f"UpdateTransaction(query={str(self.query)!r}, "
            f"{len(self.operations)} ops, confidence={self.confidence})"
        )


class TransactionBatch:
    """An ordered batch of update transactions committed as one unit.

    The warehouse's batched write path
    (:meth:`~repro.warehouse.warehouse.Warehouse.update_many`) applies
    the member transactions in order against the live document but
    persists them as a single commit — one log append, one fsync —
    which is where batched ingestion gets its throughput.  Semantically
    a batch is exactly the sequential application of its members: a
    later transaction sees (and may match) what an earlier one
    inserted.
    """

    __slots__ = ("transactions",)

    def __init__(self, transactions: Iterable[UpdateTransaction]) -> None:
        members = tuple(transactions)
        if not members:
            raise UpdateError("transaction batch is empty")
        for member in members:
            if not isinstance(member, UpdateTransaction):
                raise UpdateError(
                    f"batch members must be UpdateTransaction, got {type(member).__name__}"
                )
        self.transactions = members

    def __iter__(self):
        return iter(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def __getitem__(self, index: int) -> UpdateTransaction:
        return self.transactions[index]

    def with_confidence(self, confidence: float) -> "TransactionBatch":
        """A copy with every member carrying *confidence*."""
        return TransactionBatch(
            member.with_confidence(confidence) for member in self.transactions
        )

    def __repr__(self) -> str:
        return f"TransactionBatch({len(self.transactions)} transactions)"


def apply_deterministic(
    transaction: UpdateTransaction,
    root: Node,
    matches: Sequence[Match] | None = None,
    config: MatchConfig = DEFAULT_CONFIG,
) -> Node:
    """Apply ``τ`` — all operations for all matches — returning a new tree.

    The input tree is not modified.  When *matches* is None they are
    computed on a clone of *root*; callers that already matched must
    have matched against *root* itself and accept that the returned
    tree is built by cloning (matches are transferred positionally).
    """
    clone = root.clone()
    if matches is None:
        own_matches = find_matches(transaction.query, clone, config)
    else:
        own_matches = _transfer_matches(matches, root, clone, transaction.query)

    # Insertions first: one clone of the template per (match, operation).
    # An anchor that is a valued leaf cannot take children ("no mixed
    # content"); such insertions are defined as no-ops.  Values are a
    # static property of a node, so this skip is world-independent and
    # the fuzzy executor mirrors it exactly.
    for match in own_matches:
        for op in transaction.insertions:
            anchor = match.node_for(op.anchor)
            if anchor.value is not None:
                continue
            anchor.add_child(op.subtree.clone())

    # Deletions: deepest targets first so nested deletions stay no-ops.
    targets: list[Node] = []
    seen: set[int] = set()
    for match in own_matches:
        for op in transaction.deletions:
            target = match.node_for(op.target)
            if target is clone:
                raise UpdateError("cannot delete the document root")
            if id(target) not in seen:
                seen.add(id(target))
                targets.append(target)
    targets.sort(key=lambda node: node.depth(), reverse=True)
    for target in targets:
        if target.root() is clone:  # still attached
            target.detach()
    return clone


def _transfer_matches(
    matches: Sequence[Match], original: Node, clone: Node, query: Pattern
) -> list[Match]:
    """Rebuild matches found on *original* as matches on *clone*."""
    from repro.tpwj.match import Match as MatchType
    from repro.trees.algorithms import node_at_path, node_path

    transferred: list[MatchType] = []
    for match in matches:
        mapping = {
            pattern_node: node_at_path(clone, node_path(data_node))
            for pattern_node, data_node in match.mapping.items()
        }
        transferred.append(MatchType(query, mapping))
    return transferred
