"""Update transactions — substrate S5 (paper, slide 7).

* :class:`InsertOperation` / :class:`DeleteOperation` — elementary ops;
* :class:`UpdateTransaction` — TPWJ query + operations + confidence;
* :func:`apply_deterministic` — the ``τ`` of the possible-worlds
  update semantics (all ops for all matches, on an ordinary tree).
"""

from repro.updates.operations import DeleteOperation, InsertOperation, UpdateOperation
from repro.updates.transaction import (
    TransactionBatch,
    UpdateTransaction,
    apply_deterministic,
)

__all__ = [
    "InsertOperation",
    "DeleteOperation",
    "UpdateOperation",
    "UpdateTransaction",
    "TransactionBatch",
    "apply_deterministic",
]
