"""World assignments: truth valuations of the probabilistic events.

The possible-worlds semantics of a fuzzy tree (slide 12) enumerates all
``2^n`` truth assignments of its ``n`` events; each assignment selects a
world (the nodes whose conditions hold) with probability equal to the
product of the per-event probabilities.  This module provides that
enumeration plus weighted random sampling (used by the Monte-Carlo
estimator).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Mapping

from repro.events.table import EventTable

__all__ = ["enumerate_assignments", "assignment_weight", "sample_assignment"]


def enumerate_assignments(
    events: Iterable[str],
) -> Iterator[dict[str, bool]]:
    """All truth assignments over *events*, in a deterministic order.

    The order fixes event ``i`` faster than event ``i+1`` (binary
    counting over the event list), so runs are reproducible.  Yields
    fresh dicts safe for callers to keep.
    """
    names = list(events)
    if len(set(names)) != len(names):
        raise ValueError("duplicate event names")
    total = 1 << len(names)
    for mask in range(total):
        yield {name: bool(mask >> bit & 1) for bit, name in enumerate(names)}


def assignment_weight(assignment: Mapping[str, bool], table: EventTable) -> float:
    """Probability of a full assignment: product of per-event factors."""
    weight = 1.0
    for name, truth in assignment.items():
        p = table.probability(name)
        weight *= p if truth else 1.0 - p
    return weight


def sample_assignment(
    table: EventTable, rng: random.Random, events: Iterable[str] | None = None
) -> dict[str, bool]:
    """Draw one assignment from the product distribution of the table."""
    names = table.names() if events is None else tuple(events)
    return {name: rng.random() < table.probability(name) for name in names}
