"""Disjunctions of conjunctive conditions (DNF) and exact probability.

Two places in the model need more than a single conjunction:

1. **Query answers.**  Several matches of a TPWJ query may produce the
   same answer tree; the answer's probability is the probability of the
   *disjunction* of the per-match conjunctions (slide 13 defines the
   per-match probability; combining equal answers is how the possible-
   worlds normalization manifests on the fuzzy side).

2. **Deletions.**  A node survives a probabilistic deletion when *no*
   deleting match fires: the complement of a disjunction of
   conjunctions.  Conditions are conjunctive only, so the complement
   must be rewritten as a *disjoint* union of conjunctions — this is the
   decomposition that makes slide 15's example produce two ``C`` copies
   and drives the exponential growth of slide 14.

Both computations use Shannon expansion over the events mentioned by the
DNF, with memoisation, so the cost is exponential only in the number of
*distinct events involved*, never in the document size.  Three
optimizations keep the expansion off the per-answer critical path (the
probability fast path of E12):

* the DNF is first split into **event-disjoint connected components**
  and the per-component probabilities are combined directly
  (``P(¬(A ∨ B)) = P(¬A) · P(¬B)`` when A and B share no event), so the
  expansion depth follows the largest component, not the whole DNF;
* the event-frequency counts that drive branch selection are maintained
  **incrementally** across cofactor steps instead of being recounted
  from every term at every recursion level;
* the memo table can be an engine-owned :class:`ShannonCache` shared
  across calls — repeated and overlapping answers within a query, and
  across queries in a session, stop re-expanding shared subproblems.
  Entries are keyed by (event-table generation, interned term set), so
  a probability change (see :attr:`EventTable.generation`) retires
  stale entries without an explicit flush.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence

from repro.events.condition import TRUE, Condition
from repro.events.literal import Literal
from repro.events.table import EventTable

__all__ = [
    "Dnf",
    "ShannonCache",
    "dnf_probability",
    "complement_as_disjoint_conditions",
]


class Dnf:
    """An immutable disjunction of conjunctive :class:`Condition` terms.

    The empty disjunction is *false*; a disjunction containing the empty
    condition is *true*.  Terms subsumed by weaker terms are pruned
    (``w1 ∧ w2`` is absorbed by ``w1``), keeping the structure minimal
    without changing its semantics.

    Absorption processes the candidate terms **sorted by literal
    count**: a term can only be absorbed by a strictly smaller one (an
    equal-size absorber would be an equal set, removed by
    deduplication), so each candidate is checked only against already
    kept terms — and only against those sharing one of its literals,
    via a per-literal bucket index — never rescanned afterwards.  The
    quadratic full-set scans the naive two-way subsumption pays on the
    large disjunctions deletion complements build are gone; the kept
    term *set* (the unique minimal antichain) is unchanged.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[Condition] = ()) -> None:
        candidates: list[Condition] = []
        seen: set[Condition] = set()
        for term in terms:
            if not isinstance(term, Condition):
                raise TypeError(f"expected Condition, got {type(term).__name__}")
            if not term.is_consistent or term in seen:
                continue
            if term.is_true:
                self._terms = (TRUE,)
                return
            seen.add(term)
            candidates.append(term)
        if len(candidates) > 1:
            candidates.sort(key=len)
            kept: list[Condition] = []
            # Each kept term is registered under one of its literals, so
            # any absorber of a later term is found through one of that
            # term's own literal buckets.
            buckets: dict[Literal, list[Condition]] = {}
            for term in candidates:
                literals = term.literals
                for literal in literals:
                    bucket = buckets.get(literal)
                    if bucket is not None and any(
                        kept_term.literals <= literals for kept_term in bucket
                    ):
                        break  # absorbed by a smaller kept term
                else:
                    kept.append(term)
                    anchor = min(literals, key=_literal_key)
                    buckets.setdefault(anchor, []).append(term)
            candidates = kept
        self._terms = tuple(candidates)

    @property
    def terms(self) -> tuple[Condition, ...]:
        return self._terms

    @property
    def is_false(self) -> bool:
        return not self._terms

    @property
    def is_true(self) -> bool:
        return any(term.is_true for term in self._terms)

    def events(self) -> frozenset[str]:
        names: set[str] = set()
        for term in self._terms:
            names |= term.events()
        return frozenset(names)

    def or_(self, other: "Dnf | Condition") -> "Dnf":
        if isinstance(other, Condition):
            other = Dnf([other])
        return Dnf(self._terms + other._terms)

    def satisfied_by(self, assignment) -> bool:
        return any(term.satisfied_by(assignment) for term in self._terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dnf):
            return NotImplemented
        return frozenset(self._terms) == frozenset(other._terms)

    def __hash__(self) -> int:
        return hash(frozenset(self._terms))

    def __str__(self) -> str:
        if not self._terms:
            return "false"
        return " | ".join(f"({term})" for term in self._terms)

    def __repr__(self) -> str:
        return f"Dnf([{', '.join(repr(t) for t in self._terms)}])"


def _literal_key(literal: Literal) -> tuple[str, bool]:
    return (literal.event, literal.positive)


class ShannonCache:
    """A bounded, shareable memo table for Shannon expansions.

    Entries map (event-table generation, frozenset of interned
    :class:`Condition` terms) to the exact probability of the
    disjunction of those terms.  Such an entry can never go stale: the
    probability of a fixed term set under a fixed probability
    assignment is a constant, and any change to the assignment retires
    the generation (see :attr:`EventTable.generation`).  Bounding is
    therefore purely a memory policy — eviction is oldest-first.

    :class:`~repro.engine.QueryEngine` owns one per document and hands
    it to every probability computation it routes, so overlapping
    answers within a query — and repeated queries in a session — share
    their subexpansions.  ``capacity=0`` means unbounded (used for the
    per-call ephemeral memo when no shared cache is supplied).

    Thread safety: every operation is serialized by an internal lock,
    so one cache can back concurrent reader threads (the serving
    layer's shape).  Values are plain floats keyed by immutable
    tuples; two threads racing to fill the same key compute the same
    constant, so last-write-wins is harmless.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> float | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: tuple, value: float) -> None:
        with self._lock:
            entries = self._entries
            if self.capacity and len(entries) >= self.capacity:
                entries.pop(next(iter(entries)))
            entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:
        return (
            f"ShannonCache({len(self._entries)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def dnf_probability(
    dnf: Dnf | Sequence[Condition],
    table: EventTable,
    *,
    cache: ShannonCache | None = None,
) -> float:
    """Exact probability of a DNF under the independent-event table.

    The DNF is split into event-disjoint connected components whose
    complement probabilities multiply; each component is solved by
    Shannon expansion — condition on an event being true/false, recurse,
    combine with the event's probability — branching on the event
    mentioned by the most terms.  *cache*, when given, is a shared
    :class:`ShannonCache` memo; otherwise a per-call memo is used.
    """
    if not isinstance(dnf, Dnf):
        dnf = Dnf(dnf)
    terms = dnf.terms
    if not terms:
        return 0.0
    if terms[0].is_true:  # Dnf collapses a true disjunction to (TRUE,)
        return 1.0
    if cache is None:
        cache = ShannonCache(capacity=0)
    generation = table.generation

    # Whole-set memo first: a repeated answer (the common case under a
    # shared engine cache) skips factorization and recounting entirely.
    key = (generation, frozenset(terms))
    cached = cache.get(key)
    if cached is not None:
        return cached

    if len(terms) == 1:
        result = _solve(key[1], _event_counts(terms), table, cache, generation)
        return result
    missing_all = 1.0
    for component in _split_components(terms):
        p = _solve(
            frozenset(component), _event_counts(component), table, cache, generation
        )
        missing_all *= 1.0 - p
    result = 1.0 - missing_all
    cache.put(key, result)
    return result


def _event_counts(terms: Iterable[Condition]) -> dict[str, int]:
    """How many terms mention each event (the branch-selection counts)."""
    counts: dict[str, int] = {}
    for term in terms:
        for literal in term.literals:
            event = literal.event
            counts[event] = counts.get(event, 0) + 1
    return counts


def _split_components(terms: Sequence[Condition]) -> list[list[Condition]]:
    """Partition terms into event-disjoint connected components.

    Two terms are connected when they share an event (transitively).
    Terms in different components are independent — they are functions
    of disjoint sets of independent events — so their disjunction
    probabilities combine multiplicatively on the complement side.
    """
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:  # path compression
            parent[name], name = root, parent[name]
        return root

    for term in terms:
        first: str | None = None
        for literal in term.literals:
            event = literal.event
            if event not in parent:
                parent[event] = event
            if first is None:
                first = event
            else:
                parent[find(event)] = find(first)

    groups: dict[str, list[Condition]] = {}
    for term in terms:
        # Consistent non-true terms always mention at least one event.
        anchor = find(next(iter(term.literals)).event)
        groups.setdefault(anchor, []).append(term)
    return list(groups.values())


def _solve(
    terms: frozenset[Condition],
    counts: dict[str, int],
    table: EventTable,
    cache: ShannonCache,
    generation: int,
) -> float:
    """Shannon expansion of one (connected) term set.

    *counts* maps each live event to the number of terms mentioning it
    and is maintained incrementally: every cofactor step adjusts a copy
    for exactly the terms it touches instead of recounting the whole
    set per recursion level.  The invariant (counts describe *terms*)
    only feeds branch selection — dedup collapses after restriction
    decrement the collapsed term's remaining literals too.
    """
    if not terms:
        return 0.0
    key = (generation, terms)
    cached = cache.get(key)
    if cached is not None:
        return cached

    # Branch on the most frequent event; ties go to the smallest name
    # (the historical deterministic order).
    event = ""
    best = 0
    for name in sorted(counts):
        count = counts[name]
        if count > best:
            event, best = name, count
    p = table.probability(event)

    result = 0.0
    for truth, weight in ((True, p), (False, 1.0 - p)):
        if weight == 0.0:
            continue
        branch: set[Condition] = set()
        branch_counts = dict(counts)
        certain = False
        for term in terms:
            polarity = term.polarity(event)
            if polarity is None:
                survivor = term
            elif polarity != truth:
                _drop_counts(branch_counts, term)
                continue
            else:
                survivor = term.without_events((event,))
                if survivor.is_true:
                    certain = True
                    break
            if survivor in branch:
                # Collapsed duplicate: the surviving copy's literals are
                # already counted once; retire this term's contribution.
                _drop_counts(branch_counts, term)
            else:
                branch.add(survivor)
                if survivor is not term:
                    count = branch_counts[event] - 1
                    if count:
                        branch_counts[event] = count
                    else:
                        del branch_counts[event]
        if certain:
            result += weight
        elif branch:
            result += weight * _solve(
                frozenset(branch), branch_counts, table, cache, generation
            )
    cache.put(key, result)
    return result


def _drop_counts(counts: dict[str, int], term: Condition) -> None:
    """Retire a dropped term's contribution to the event counts."""
    for literal in term.literals:
        event = literal.event
        count = counts[event] - 1
        if count:
            counts[event] = count
        else:
            del counts[event]


def complement_as_disjoint_conditions(
    conditions: Sequence[Condition],
    order: Sequence[str] | None = None,
) -> list[Condition]:
    """Rewrite ``¬(c1 ∨ … ∨ ck)`` as a disjoint union of conjunctions.

    Returns conjunctive conditions that are pairwise inconsistent and
    whose union is exactly the complement of the input disjunction.
    For a single condition ``ℓ1 ∧ … ∧ ℓk`` (with *order* following the
    literal order) this is the "first failing literal" decomposition
    ``¬ℓ1 ∪ ℓ1¬ℓ2 ∪ … ∪ ℓ1…ℓk-1¬ℓk`` — exactly the shape of slide 15.

    Parameters
    ----------
    conditions:
        The disjuncts being complemented.  Inconsistent disjuncts are
        ignored (they cover nothing).
    order:
        Optional event branching order; defaults to a deterministic
        order that branches on literals of the first live disjunct
        first, which keeps the output small in the common cases.
    """
    dnf = Dnf(conditions)
    if dnf.is_true:
        return []
    if dnf.is_false:
        return [TRUE]

    fixed_order = list(order) if order is not None else None
    output: list[Condition] = []

    def explore(terms: tuple[Condition, ...], prefix: list[Literal]) -> None:
        if not terms:
            output.append(Condition(prefix))
            return
        if any(term.is_true for term in terms):
            return  # this branch is covered by the disjunction: nothing survives
        event = _pick_event(terms, fixed_order, prefix)
        for truth in (True, False):
            branch = tuple(
                restricted
                for term in terms
                if (restricted := term.restrict(event, truth)) is not None
            )
            explore(branch, prefix + [Literal(event, truth)])

    explore(dnf.terms, [])
    return output


def _pick_event(
    terms: tuple[Condition, ...],
    fixed_order: list[str] | None,
    prefix: list[Literal],
) -> str:
    assigned = {literal.event for literal in prefix}
    if fixed_order is not None:
        for name in fixed_order:
            if name in assigned:
                continue
            if any(name in term.events() for term in terms):
                return name
    # Default: branch on the smallest live term's events, in sorted order,
    # which reproduces the first-failing-literal decomposition for a
    # single condition and keeps branching shallow in general.
    smallest = min(terms, key=lambda term: (len(term), sorted(term.events())))
    for name in sorted(smallest.events()):
        if name not in assigned:
            return name
    # All of the smallest term's events assigned but the term survived
    # restriction — cannot happen: restrict() removes assigned events.
    raise AssertionError("unreachable: live term with no unassigned events")
