"""Disjunctions of conjunctive conditions (DNF) and exact probability.

Two places in the model need more than a single conjunction:

1. **Query answers.**  Several matches of a TPWJ query may produce the
   same answer tree; the answer's probability is the probability of the
   *disjunction* of the per-match conjunctions (slide 13 defines the
   per-match probability; combining equal answers is how the possible-
   worlds normalization manifests on the fuzzy side).

2. **Deletions.**  A node survives a probabilistic deletion when *no*
   deleting match fires: the complement of a disjunction of
   conjunctions.  Conditions are conjunctive only, so the complement
   must be rewritten as a *disjoint* union of conjunctions — this is the
   decomposition that makes slide 15's example produce two ``C`` copies
   and drives the exponential growth of slide 14.

Both computations use Shannon expansion over the events mentioned by the
DNF, with memoisation, so the cost is exponential only in the number of
*distinct events involved*, never in the document size.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.events.condition import TRUE, Condition
from repro.events.literal import Literal
from repro.events.table import EventTable

__all__ = ["Dnf", "dnf_probability", "complement_as_disjoint_conditions"]


class Dnf:
    """An immutable disjunction of conjunctive :class:`Condition` terms.

    The empty disjunction is *false*; a disjunction containing the empty
    condition is *true*.  Terms subsumed by weaker terms are pruned
    (``w1 ∧ w2`` is absorbed by ``w1``), keeping the structure minimal
    without changing its semantics.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[Condition] = ()) -> None:
        kept: list[Condition] = []
        for term in terms:
            if not isinstance(term, Condition):
                raise TypeError(f"expected Condition, got {type(term).__name__}")
            if not term.is_consistent:
                continue
            if any(term.implies(existing) for existing in kept):
                continue  # absorbed by a weaker existing term
            kept = [existing for existing in kept if not existing.implies(term)]
            kept.append(term)
        self._terms = tuple(kept)

    @property
    def terms(self) -> tuple[Condition, ...]:
        return self._terms

    @property
    def is_false(self) -> bool:
        return not self._terms

    @property
    def is_true(self) -> bool:
        return any(term.is_true for term in self._terms)

    def events(self) -> frozenset[str]:
        names: set[str] = set()
        for term in self._terms:
            names |= term.events()
        return frozenset(names)

    def or_(self, other: "Dnf | Condition") -> "Dnf":
        if isinstance(other, Condition):
            other = Dnf([other])
        return Dnf(self._terms + other._terms)

    def satisfied_by(self, assignment) -> bool:
        return any(term.satisfied_by(assignment) for term in self._terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dnf):
            return NotImplemented
        return frozenset(self._terms) == frozenset(other._terms)

    def __hash__(self) -> int:
        return hash(frozenset(self._terms))

    def __str__(self) -> str:
        if not self._terms:
            return "false"
        return " | ".join(f"({term})" for term in self._terms)

    def __repr__(self) -> str:
        return f"Dnf([{', '.join(repr(t) for t in self._terms)}])"


def dnf_probability(dnf: Dnf | Sequence[Condition], table: EventTable) -> float:
    """Exact probability of a DNF under the independent-event table.

    Shannon expansion: pick an event mentioned by the DNF, condition on
    it being true/false, recurse, and combine with the event's
    probability.  Memoised on the conditioned term set.
    """
    if not isinstance(dnf, Dnf):
        dnf = Dnf(dnf)
    cache: dict[frozenset[Condition], float] = {}

    def solve(terms: frozenset[Condition]) -> float:
        if not terms:
            return 0.0
        if any(term.is_true for term in terms):
            return 1.0
        cached = cache.get(terms)
        if cached is not None:
            return cached
        # Branch on the most frequent event for better sharing.
        counts: dict[str, int] = {}
        for term in terms:
            for event in term.events():
                counts[event] = counts.get(event, 0) + 1
        event = max(sorted(counts), key=lambda name: counts[name])
        p = table.probability(event)
        result = 0.0
        for truth, weight in ((True, p), (False, 1.0 - p)):
            if weight == 0.0:
                continue
            branch = frozenset(
                restricted
                for term in terms
                if (restricted := term.restrict(event, truth)) is not None
            )
            result += weight * solve(branch)
        cache[terms] = result
        return result

    return solve(frozenset(dnf.terms))


def complement_as_disjoint_conditions(
    conditions: Sequence[Condition],
    order: Sequence[str] | None = None,
) -> list[Condition]:
    """Rewrite ``¬(c1 ∨ … ∨ ck)`` as a disjoint union of conjunctions.

    Returns conjunctive conditions that are pairwise inconsistent and
    whose union is exactly the complement of the input disjunction.
    For a single condition ``ℓ1 ∧ … ∧ ℓk`` (with *order* following the
    literal order) this is the "first failing literal" decomposition
    ``¬ℓ1 ∪ ℓ1¬ℓ2 ∪ … ∪ ℓ1…ℓk-1¬ℓk`` — exactly the shape of slide 15.

    Parameters
    ----------
    conditions:
        The disjuncts being complemented.  Inconsistent disjuncts are
        ignored (they cover nothing).
    order:
        Optional event branching order; defaults to a deterministic
        order that branches on literals of the first live disjunct
        first, which keeps the output small in the common cases.
    """
    dnf = Dnf(conditions)
    if dnf.is_true:
        return []
    if dnf.is_false:
        return [TRUE]

    fixed_order = list(order) if order is not None else None
    output: list[Condition] = []

    def explore(terms: tuple[Condition, ...], prefix: list[Literal]) -> None:
        if not terms:
            output.append(Condition(prefix))
            return
        if any(term.is_true for term in terms):
            return  # this branch is covered by the disjunction: nothing survives
        event = _pick_event(terms, fixed_order, prefix)
        for truth in (True, False):
            branch = tuple(
                restricted
                for term in terms
                if (restricted := term.restrict(event, truth)) is not None
            )
            explore(branch, prefix + [Literal(event, truth)])

    explore(dnf.terms, [])
    return output


def _pick_event(
    terms: tuple[Condition, ...],
    fixed_order: list[str] | None,
    prefix: list[Literal],
) -> str:
    assigned = {literal.event for literal in prefix}
    if fixed_order is not None:
        for name in fixed_order:
            if name in assigned:
                continue
            if any(name in term.events() for term in terms):
                return name
    # Default: branch on the smallest live term's events, in sorted order,
    # which reproduces the first-failing-literal decomposition for a
    # single condition and keeps branching shallow in general.
    smallest = min(terms, key=lambda term: (len(term), sorted(term.events())))
    for name in sorted(smallest.events()):
        if name not in assigned:
            return name
    # All of the smallest term's events assigned but the term survived
    # restriction — cannot happen: restrict() removes assigned events.
    raise AssertionError("unreachable: live term with no unassigned events")
