"""Probabilistic event literals (paper, slide 12).

A *probabilistic event* is a named boolean random variable (``w1``,
``w2``, ...), independent of all other events, whose probability of
being true is recorded in an :class:`~repro.events.table.EventTable`.
A :class:`Literal` is an event or its negation; fuzzy-tree node
conditions are conjunctions of literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EventError

__all__ = ["Literal", "parse_literal"]

#: Characters accepted in event names (kept simple so names round-trip
#: through the XML and text syntaxes).
_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


def check_event_name(name: str) -> str:
    """Validate an event name, returning it unchanged."""
    if not isinstance(name, str) or not name:
        raise EventError(f"event name must be a non-empty string, got {name!r}")
    if name[0] in "0123456789" or any(ch not in _NAME_OK for ch in name):
        raise EventError(
            f"invalid event name {name!r}: must start with a letter/underscore and "
            "contain only letters, digits, '_', '.', '-'"
        )
    return name


@dataclass(frozen=True, slots=True)
class Literal:
    """An event occurrence ``w`` or its negation ``¬w``."""

    event: str
    positive: bool = True

    def __post_init__(self) -> None:
        check_event_name(self.event)

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.event, not self.positive)

    def __str__(self) -> str:
        return self.event if self.positive else f"!{self.event}"

    def pretty(self) -> str:
        """Unicode rendering matching the paper's notation (``¬w``)."""
        return self.event if self.positive else f"¬{self.event}"


def parse_literal(text: str) -> Literal:
    """Parse ``"w1"``, ``"!w1"`` or ``"¬w1"`` into a :class:`Literal`."""
    text = text.strip()
    if not text:
        raise EventError("empty literal")
    if text.startswith("!") or text.startswith("¬"):
        return Literal(text[1:].strip(), positive=False)
    return Literal(text, positive=True)
