"""Probabilistic event literals (paper, slide 12).

A *probabilistic event* is a named boolean random variable (``w1``,
``w2``, ...), independent of all other events, whose probability of
being true is recorded in an :class:`~repro.events.table.EventTable`.
A :class:`Literal` is an event or its negation; fuzzy-tree node
conditions are conjunctions of literals.

Literals are **interned**: constructing ``Literal("w1")`` twice returns
the same object, the hash is computed once, and equality checks compare
by pointer first.  Conditions, DNF absorption and Shannon-expansion
memo tables do frozenset algebra over literals in their hot loops, so
pointer-fast hashing and equality is what makes those set operations
cheap (the probability fast path of E12).
"""

from __future__ import annotations

from repro.errors import EventError

__all__ = ["Literal", "parse_literal"]

#: Characters accepted in event names (kept simple so names round-trip
#: through the XML and text syntaxes).
_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


def check_event_name(name: str) -> str:
    """Validate an event name, returning it unchanged."""
    if not isinstance(name, str) or not name:
        raise EventError(f"event name must be a non-empty string, got {name!r}")
    if name[0] in "0123456789" or any(ch not in _NAME_OK for ch in name):
        raise EventError(
            f"invalid event name {name!r}: must start with a letter/underscore and "
            "contain only letters, digits, '_', '.', '-'"
        )
    return name


#: Interned literals, keyed by (event, positive).  Distinct event names
#: are bounded by the documents a process touches, but long-running
#: processes (and the randomized test suites) can mint many: past the
#: limit the table is dropped wholesale.  Clearing is always safe —
#: equality falls back to field comparison when identities differ.
_INTERNED: dict[tuple[str, bool], "Literal"] = {}
_INTERN_LIMIT = 1 << 16


class Literal:
    """An event occurrence ``w`` or its negation ``¬w`` (interned)."""

    __slots__ = ("event", "positive", "_hash")

    def __new__(cls, event: str, positive: bool = True) -> "Literal":
        positive = bool(positive)
        key = (event, positive)
        cached = _INTERNED.get(key)
        if cached is not None:
            return cached
        check_event_name(event)
        self = super().__new__(cls)
        object.__setattr__(self, "event", event)
        object.__setattr__(self, "positive", positive)
        object.__setattr__(self, "_hash", hash(key))
        if len(_INTERNED) >= _INTERN_LIMIT:
            _INTERNED.clear()
        _INTERNED[key] = self
        return self

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"Literal is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Literal is immutable (cannot delete {name!r})")

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.event, not self.positive)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Literal):
            return NotImplemented
        return self.event == other.event and self.positive == other.positive

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.event if self.positive else f"!{self.event}"

    def pretty(self) -> str:
        """Unicode rendering matching the paper's notation (``¬w``)."""
        return self.event if self.positive else f"¬{self.event}"

    def __repr__(self) -> str:
        return f"Literal(event={self.event!r}, positive={self.positive})"


def parse_literal(text: str) -> Literal:
    """Parse ``"w1"``, ``"!w1"`` or ``"¬w1"`` into a :class:`Literal`."""
    text = text.strip()
    if not text:
        raise EventError("empty literal")
    if text.startswith("!") or text.startswith("¬"):
        return Literal(text[1:].strip(), positive=False)
    return Literal(text, positive=True)
