"""Conjunctive event conditions (paper, slide 12).

A fuzzy-tree node is guarded by a *condition*: a conjunction of event
literals (events or negated events).  :class:`Condition` is an immutable
set of literals with the conjunction-specific operations the model
needs: consistency checking, conjunction, satisfaction under a world
assignment, implication, and literal removal (used by simplification).

The empty condition is ``TRUE`` (always satisfied).  A condition that
contains both ``w`` and ``¬w`` is *inconsistent*; constructing one
raises :class:`~repro.errors.InconsistentConditionError` unless
``allow_inconsistent=True`` is passed (the update engine builds and then
discards inconsistent survivor candidates).

Conditions are **interned** on their literal set: constructing the same
conjunction twice returns the same object, with the hash and the
consistency verdict computed once.  The probability pipeline builds the
same conditions over and over (per-match ancestor closures, DNF
absorption, Shannon cofactors), so pointer-identity equality and cached
hashing are what keep those set operations and memo lookups cheap.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import EventError, InconsistentConditionError
from repro.events.literal import Literal, parse_literal

__all__ = ["Condition", "TRUE"]

#: Interned conditions, keyed by their literal frozenset.  Dropped
#: wholesale past the limit: equality falls back to set comparison when
#: identities differ, so clearing is always safe.
_INTERNED: dict[frozenset, "Condition"] = {}
_INTERN_LIMIT = 1 << 16


def _inconsistency_message(literals: frozenset) -> str:
    by_event: dict[str, bool] = {}
    for literal in literals:
        if by_event.setdefault(literal.event, literal.positive) != literal.positive:
            return f"condition requires both {literal.event} and its negation"
    return "condition requires an event and its negation"


class Condition:
    """An immutable, interned conjunction of event literals."""

    __slots__ = ("_literals", "_hash", "_consistent")

    def __new__(
        cls, literals: Iterable[Literal] = (), *, allow_inconsistent: bool = False
    ) -> "Condition":
        frozen = (
            literals if type(literals) is frozenset else frozenset(literals)
        )
        cached = _INTERNED.get(frozen)
        if cached is not None:
            if not (allow_inconsistent or cached._consistent):
                raise InconsistentConditionError(
                    _inconsistency_message(frozen)
                )
            return cached
        for literal in frozen:
            if not isinstance(literal, Literal):
                raise EventError(f"expected Literal, got {type(literal).__name__}")
        by_event: dict[str, bool] = {}
        consistent = True
        for literal in frozen:
            if by_event.setdefault(literal.event, literal.positive) != literal.positive:
                consistent = False
                break
        if not (consistent or allow_inconsistent):
            raise InconsistentConditionError(_inconsistency_message(frozen))
        self = super().__new__(cls)
        self._literals = frozen
        self._hash = hash(frozen)
        self._consistent = consistent
        if len(_INTERNED) >= _INTERN_LIMIT:
            _INTERNED.clear()
        _INTERNED[frozen] = self
        return self

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *specs: str | Literal) -> "Condition":
        """Build a condition from literal specs: ``Condition.of("w1", "!w2")``."""
        literals = [
            spec if isinstance(spec, Literal) else parse_literal(spec) for spec in specs
        ]
        return cls(literals)

    @classmethod
    def parse(cls, text: str) -> "Condition":
        """Parse a whitespace- or comma-separated conjunction: ``"w1 !w2"``."""
        text = text.strip()
        if not text:
            return TRUE
        parts = [part for chunk in text.split(",") for part in chunk.split()]
        return cls(parse_literal(part) for part in parts)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def literals(self) -> frozenset[Literal]:
        return self._literals

    @property
    def is_true(self) -> bool:
        """True for the empty conjunction (always satisfied)."""
        return not self._literals

    @property
    def is_consistent(self) -> bool:
        return self._consistent

    def events(self) -> frozenset[str]:
        """Names of the events mentioned by this condition."""
        return frozenset(literal.event for literal in self._literals)

    def polarity(self, event: str) -> bool | None:
        """True/False if the event occurs positively/negatively, else None."""
        for literal in self._literals:
            if literal.event == event:
                return literal.positive
        return None

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def conjoin(self, other: "Condition", *, allow_inconsistent: bool = False) -> "Condition":
        """The conjunction of the two conditions."""
        return Condition(
            self._literals | other._literals, allow_inconsistent=allow_inconsistent
        )

    def with_literal(self, literal: Literal, *, allow_inconsistent: bool = False) -> "Condition":
        return Condition(
            self._literals | {literal}, allow_inconsistent=allow_inconsistent
        )

    def without_events(self, events: Iterable[str]) -> "Condition":
        """Drop every literal over the given events (simplification)."""
        drop = set(events)
        return Condition(
            frozenset(lit for lit in self._literals if lit.event not in drop)
        )

    def without_literals(self, literals: Iterable[Literal]) -> "Condition":
        drop = set(literals)
        return Condition(
            frozenset(lit for lit in self._literals if lit not in drop)
        )

    def restrict(self, event: str, truth: bool) -> "Condition | None":
        """Condition after fixing *event* to *truth* (Shannon cofactor).

        Returns None when the condition becomes unsatisfiable (it
        required the opposite polarity), otherwise the condition with
        literals over *event* removed.
        """
        polarity = self.polarity(event)
        if polarity is None:
            return self
        if polarity != truth:
            return None
        return self.without_events((event,))

    def implies(self, other: "Condition") -> bool:
        """Conjunction implication: self ⇒ other iff other's literals ⊆ self's."""
        return other is self or other._literals <= self._literals

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a (total, for the mentioned events) assignment."""
        for literal in self._literals:
            try:
                truth = assignment[literal.event]
            except KeyError:
                raise EventError(
                    f"assignment does not cover event {literal.event!r}"
                ) from None
            if truth != literal.positive:
                return False
        return True

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Condition):
            return NotImplemented
        return self._literals == other._literals

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self):
        return iter(sorted(self._literals, key=lambda lit: (lit.event, not lit.positive)))

    def __str__(self) -> str:
        if not self._literals:
            return "true"
        return " ".join(str(lit) for lit in self)

    def pretty(self) -> str:
        """Paper-style rendering: ``w1, ¬w2``."""
        if not self._literals:
            return "⊤"
        return ", ".join(lit.pretty() for lit in self)

    def __repr__(self) -> str:
        return f"Condition.parse({str(self)!r})"


#: The always-true (empty) condition.
TRUE = Condition()
