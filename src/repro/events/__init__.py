"""Probabilistic event algebra — substrate S2 (paper, slide 12).

Events are independent boolean random variables; node conditions are
conjunctions of event literals; a document's event table assigns each
event its probability.  :mod:`repro.events.dnf` adds disjunctions with
exact probability (Shannon expansion) and the disjoint complement
decomposition used by probabilistic deletions.
"""

from repro.events.assignment import (
    assignment_weight,
    enumerate_assignments,
    sample_assignment,
)
from repro.events.condition import TRUE, Condition
from repro.events.dnf import (
    Dnf,
    ShannonCache,
    complement_as_disjoint_conditions,
    dnf_probability,
)
from repro.events.literal import Literal, parse_literal
from repro.events.table import EventTable

__all__ = [
    "Literal",
    "parse_literal",
    "Condition",
    "TRUE",
    "EventTable",
    "enumerate_assignments",
    "assignment_weight",
    "sample_assignment",
    "Dnf",
    "ShannonCache",
    "dnf_probability",
    "complement_as_disjoint_conditions",
]
