"""Event tables: the probability assignment of a fuzzy document.

Slide 12 of the paper shows a fuzzy tree alongside a table ``w1: 0.8,
w2: 0.7``.  :class:`EventTable` is that table: a mapping from event
names to independent probabilities, plus the bookkeeping the update
engine needs (allocation of fresh events for update confidences) and
the probability computations for conjunctive conditions.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import EventError, InvalidProbabilityError, UnknownEventError
from repro.events.condition import Condition
from repro.events.literal import Literal, check_event_name

__all__ = ["EventTable"]

#: Process-global allocator of probability-assignment generations.
#: Every :class:`EventTable` instance draws a unique stamp at creation
#: and draws a fresh one whenever an *existing* event's probability can
#: change (removal — the only mutation that can invalidate a previously
#: computed probability; re-declaring after a removal changes the value
#: behind the same name).  Probability caches key their entries by this
#: stamp, so a stale entry can never be served after such a change.
_GENERATIONS = itertools.count(1)


class EventTable:
    """A registry of independent probabilistic events.

    The table preserves insertion order (deterministic iteration keeps
    benchmarks and serialized documents stable across runs).
    """

    __slots__ = ("_probabilities", "_fresh_counter", "_generation")

    def __init__(self, probabilities: Mapping[str, float] | None = None) -> None:
        self._probabilities: dict[str, float] = {}
        self._fresh_counter = 0
        self._generation = next(_GENERATIONS)
        if probabilities:
            for name, probability in probabilities.items():
                self.declare(name, probability)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def declare(self, name: str, probability: float) -> str:
        """Register event *name* with the given probability.

        Re-declaring an event with the same probability is a no-op;
        changing the probability of an existing event raises
        :class:`~repro.errors.EventError` (event identities are global
        to a document and must not silently drift).
        """
        check_event_name(name)
        probability = _check_probability(probability)
        existing = self._probabilities.get(name)
        if existing is not None and not math.isclose(
            existing, probability, rel_tol=0.0, abs_tol=1e-12
        ):
            raise EventError(
                f"event {name!r} already declared with probability {existing}, "
                f"cannot redeclare with {probability}"
            )
        self._probabilities[name] = probability
        return name

    def fresh(self, probability: float, prefix: str = "w") -> str:
        """Allocate a new event name not yet in the table and declare it.

        Update application calls this to materialise an update's
        confidence as a new independent event (slide 15's ``w3``).
        """
        probability = _check_probability(probability)
        while True:
            self._fresh_counter += 1
            name = f"{prefix}{self._fresh_counter}"
            if name not in self._probabilities:
                self._probabilities[name] = probability
                return name

    def remove(self, name: str) -> None:
        """Drop an event (used by simplification's unused-event GC).

        Bumps :attr:`generation`: once a name is free it can be
        re-declared with a *different* probability, so every cached
        probability computed against this table must stop being served.
        """
        if name not in self._probabilities:
            raise UnknownEventError(name)
        del self._probabilities[name]
        self._generation = next(_GENERATIONS)

    @property
    def generation(self) -> int:
        """Version stamp of the probability assignment.

        Unique per table instance and refreshed whenever an existing
        event's probability may have changed (see :meth:`remove`).
        Declaring a *new* event keeps the stamp: it cannot alter the
        probability of any condition previously computable against this
        table (such a condition could not have mentioned the event).
        Probability caches (:class:`~repro.events.dnf.ShannonCache`)
        key entries by this stamp.
        """
        return self._generation

    @property
    def fresh_counter(self) -> int:
        """The state of the fresh-name allocator (persisted by the warehouse).

        Removing an event (simplification GC) does not rewind the
        counter, so the set of declared names alone does not determine
        the next :meth:`fresh` name.  Durable stores record the counter
        alongside the document so that replaying logged updates mints
        exactly the names the original session minted.
        """
        return self._fresh_counter

    def advance_fresh_counter(self, value: int) -> None:
        """Fast-forward the fresh-name allocator to at least *value*."""
        if not isinstance(value, int) or value < 0:
            raise EventError(f"fresh counter must be a non-negative int, got {value!r}")
        if value > self._fresh_counter:
            self._fresh_counter = value

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def probability(self, name: str) -> float:
        try:
            return self._probabilities[name]
        except KeyError:
            raise UnknownEventError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._probabilities

    def __len__(self) -> int:
        return len(self._probabilities)

    def __iter__(self) -> Iterator[str]:
        return iter(self._probabilities)

    def names(self) -> tuple[str, ...]:
        return tuple(self._probabilities)

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(self._probabilities.items())

    # ------------------------------------------------------------------
    # Probability computations
    # ------------------------------------------------------------------

    def literal_probability(self, literal: Literal) -> float:
        p = self.probability(literal.event)
        return p if literal.positive else 1.0 - p

    def condition_probability(self, condition: Condition) -> float:
        """P(conjunction) — product over literals (events are independent)."""
        if not condition.is_consistent:
            return 0.0
        result = 1.0
        for literal in condition.literals:
            result *= self.literal_probability(literal)
        return result

    def check_condition(self, condition: Condition) -> None:
        """Raise :class:`UnknownEventError` if a literal uses an unknown event."""
        for event in condition.events():
            if event not in self._probabilities:
                raise UnknownEventError(event)

    # ------------------------------------------------------------------
    # Copies and views
    # ------------------------------------------------------------------

    def copy(self) -> "EventTable":
        """An independent copy carrying the *same* generation stamp.

        The copy assigns every event the same probability, so any
        cached probability keyed by this table's generation is equally
        valid against the copy — preserving the stamp keeps shared
        probability memos warm across the warehouse's copy-on-write
        document clones.  A later :meth:`remove` on either table draws
        a fresh stamp from the process-global allocator, so the two
        tables can never alias after diverging.
        """
        clone = EventTable()
        clone._probabilities = dict(self._probabilities)
        clone._fresh_counter = self._fresh_counter
        clone._generation = self._generation
        return clone

    def as_dict(self) -> dict[str, float]:
        return dict(self._probabilities)

    def restrict_to(self, names: Iterable[str]) -> "EventTable":
        """A copy containing only the given events (must all exist)."""
        keep = set(names)
        clone = EventTable()
        for name, probability in self._probabilities.items():
            if name in keep:
                clone._probabilities[name] = probability
                keep.discard(name)
        if keep:
            raise UnknownEventError(sorted(keep)[0])
        clone._fresh_counter = self._fresh_counter
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventTable):
            return NotImplemented
        return self._probabilities == other._probabilities

    def __repr__(self) -> str:
        body = ", ".join(f"{name}: {p}" for name, p in self._probabilities.items())
        return f"EventTable({{{body}}})"


def _check_probability(value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidProbabilityError(value)
    value = float(value)
    if not 0.0 <= value <= 1.0 or math.isnan(value):
        raise InvalidProbabilityError(value)
    return value
