"""Hierarchical span tracing with a bounded ring buffer of traces.

A :class:`Span` is one timed phase of work; spans nest (a ``query``
span contains ``plan_cache_lookup``, ``view_build``,
``match_enumeration``, …) and completed **root** spans land in the
tracer's ring buffer (``deque(maxlen=capacity)``) — the process keeps
the last N traces, nothing more, however long it serves.

Two recording styles, chosen by cost:

* :meth:`Tracer.start` / :meth:`Tracer.finish` (or the
  :meth:`Tracer.span` context manager) open a live span: it is pushed
  on the *current thread's* span stack, so spans opened or emitted
  meanwhile become its children.  Used at coarse boundaries (query,
  commit, fan-out).
* :meth:`Tracer.emit` attaches an **already-measured** duration as a
  completed child of the current span — the per-phase instrumentation
  inside the engine and the commit pipeline, two ``perf_counter()``
  reads and one call.  Consecutive attribute-less emits with the same
  name are merged (duration accumulated, ``count`` incremented), so a
  per-row phase like ``probability_evaluation`` stays one child per
  span instead of one per row.

The enabled flag follows the hoisted-flag idiom of
:class:`~repro.analysis.instrumentation.Counters`: call sites read
``tracer.enabled`` once per operation into a local and skip every call
when it is False — the disabled path costs one attribute read.

Caveats (diagnostic tool, not an accounting ledger): a query span stays
open across the consumer's pulls, so its duration includes consumer
think time, and two streams interleaved on one thread nest under each
other.  Span completion is identity-based (a span removes *itself*
from the stack it was opened on), so a stream finalized by the garbage
collector on another thread cannot corrupt the nesting of unrelated
traces.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from time import perf_counter

__all__ = ["Span", "Tracer", "render_span", "render_trace"]

#: Children beyond this per-span bound are dropped (counted in
#: :attr:`Span.dropped`): a runaway enumeration must not turn one
#: trace into an unbounded tree.
MAX_CHILDREN = 128


class Span:
    """One timed phase: name, attributes, duration, nested children."""

    __slots__ = (
        "name",
        "attributes",
        "duration",
        "count",
        "children",
        "dropped",
        "timestamp",
        "_t0",
        "_stack",
    )

    def __init__(self, name: str, attributes: dict | None = None) -> None:
        self.name = name
        self.attributes = attributes or {}
        #: Wall-clock seconds; filled at finish (or given to record()).
        self.duration = 0.0
        #: Number of merged observations (>1 for accumulated emits).
        self.count = 1
        self.children: list[Span] = []
        self.dropped = 0
        #: Unix time the span started — only stamped on root spans.
        self.timestamp: float | None = None
        self._t0 = 0.0
        self._stack: list | None = None

    def record(self, name: str, duration: float, **attributes) -> "Span | None":
        """Attach a completed child span of *duration* seconds.

        Attribute-less emits repeating the previous child's name merge
        into it instead of appending (the per-row accumulation case).
        Returns the child, or None when the child bound dropped it.
        """
        children = self.children
        if not attributes and children:
            last = children[-1]
            if last.name == name and not last.children:
                last.duration += duration
                last.count += 1
                return last
        if len(children) >= MAX_CHILDREN:
            self.dropped += 1
            return None
        child = Span(name, attributes)
        child.duration = duration
        children.append(child)
        return child

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first) named *name*; None if absent."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def phase_seconds(self) -> dict[str, float]:
        """Direct children folded to {name: total seconds}."""
        phases: dict[str, float] = {}
        for child in self.children:
            phases[child.name] = phases.get(child.name, 0.0) + child.duration
        return phases

    def as_dict(self) -> dict:
        """JSON-friendly rendering (attributes stringified)."""
        payload: dict = {
            "name": self.name,
            "duration_us": round(self.duration * 1e6, 3),
        }
        if self.timestamp is not None:
            payload["timestamp"] = self.timestamp
        if self.count > 1:
            payload["count"] = self.count
        if self.attributes:
            payload["attributes"] = {
                key: value if isinstance(value, (int, float, bool, str))
                else str(value)
                for key, value in self.attributes.items()
            }
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        if self.dropped:
            payload["dropped_children"] = self.dropped
        return payload

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e6:.1f}us, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Per-thread span stacks feeding a bounded ring buffer of traces."""

    __slots__ = ("enabled", "capacity", "_traces", "_local")

    def __init__(self, capacity: int = 64) -> None:
        #: Hoist into a local once per operation (see module docs).
        self.enabled = True
        self.capacity = capacity
        # deque.append/popleft are GIL-atomic; no extra lock needed for
        # the ring buffer itself.
        self._traces: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def start(self, name: str, **attributes) -> Span:
        """Open a span: children attach to it until :meth:`finish`."""
        span = Span(name, attributes)
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if len(parent.children) < MAX_CHILDREN:
                parent.children.append(span)
            else:
                parent.dropped += 1
        else:
            span.timestamp = time.time()
        span._stack = stack
        span._t0 = perf_counter()
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close *span*; completed root spans enter the ring buffer.

        Identity-based and thread-robust: the span removes itself from
        the stack it was opened on (wherever it sits — an out-of-order
        close cannot orphan the stack), even when finish() runs on a
        different thread (GC finalization of an abandoned stream).
        """
        span.duration = perf_counter() - span._t0
        stack = span._stack
        span._stack = None
        if stack is not None:
            try:
                stack.remove(span)
            except ValueError:
                pass
        if span.timestamp is not None:
            self._traces.append(span)

    def span(self, name: str, **attributes):
        """Context manager over :meth:`start`/:meth:`finish`."""
        return _SpanContext(self, name, attributes)

    def emit(self, name: str, duration: float, **attributes) -> None:
        """Attach an already-measured phase to the current span (no-op
        without one)."""
        parent = self.current()
        if parent is not None:
            parent.record(name, duration, **attributes)

    # ------------------------------------------------------------------
    # Enable / disable / reading
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def recent(self, n: int | None = None) -> list[Span]:
        """The last *n* completed traces (all, by default), oldest first."""
        traces = list(self._traces)
        if n is not None and n >= 0:
            traces = traces[-n:]
        return traces

    def clear(self) -> None:
        self._traces.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({len(self._traces)}/{self.capacity} traces, {state})"


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: Tracer, name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, **self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            self._tracer.finish(self._span)
            self._span = None


def render_span(span: Span, indent: int = 0) -> list[str]:
    """Indented text lines for one span subtree."""
    parts = [f"{'  ' * indent}{span.name}  {span.duration * 1e6:.1f} us"]
    if span.count > 1:
        parts.append(f"(x{span.count})")
    for key, value in span.attributes.items():
        parts.append(f"{key}={value}")
    if span.dropped:
        parts.append(f"dropped_children={span.dropped}")
    lines = ["  ".join(parts)]
    for child in span.children:
        lines.extend(render_span(child, indent + 1))
    return lines


def render_trace(span: Span) -> str:
    """One completed trace rendered as an indented tree."""
    header = ""
    if span.timestamp is not None:
        stamp = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(span.timestamp)
        )
        header = f"trace @ {stamp}\n"
    return header + "\n".join(render_span(span))
