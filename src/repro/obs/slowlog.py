"""The slow-query log: a bounded deque of queries past a threshold.

Every session query that takes at least
:attr:`SlowQueryLog.threshold` seconds from iteration start to
exhaustion (or close) is captured: the pattern text, the plan the
engine chose (rendered through the existing ``explain`` machinery —
the plan comes from the cache, so capturing it is a lookup, not a
re-plan), the row count and the per-phase timings the trace layer
accumulated.  The deque is bounded (``capacity`` entries, oldest
evicted), so the log is safe to leave on in a long-lived server.

The threshold comparison is inclusive (``duration >= threshold``): a
threshold of 0 therefore logs *every* query, the debugging mode.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


class SlowQueryEntry:
    """One captured slow query."""

    __slots__ = ("pattern", "duration", "rows", "phases", "plan", "timestamp")

    def __init__(
        self,
        pattern: str,
        duration: float,
        rows: int,
        phases: dict[str, float],
        plan: str | None,
    ) -> None:
        self.pattern = pattern
        self.duration = duration
        self.rows = rows
        #: Per-phase seconds (e.g. ``{"match_enumeration": 0.004}``).
        self.phases = phases
        #: The chosen plan rendered by ``Plan.explain()`` (None when the
        #: query bypassed the planner).
        self.plan = plan
        self.timestamp = time.time()

    def as_dict(self) -> dict:
        return {
            "pattern": self.pattern,
            "duration_ms": round(self.duration * 1e3, 3),
            "rows": self.rows,
            "phases_ms": {
                name: round(seconds * 1e3, 3)
                for name, seconds in self.phases.items()
            },
            "plan": self.plan,
            "timestamp": self.timestamp,
        }

    def __repr__(self) -> str:
        return (
            f"SlowQueryEntry({self.pattern!r}, {self.duration * 1e3:.1f}ms, "
            f"{self.rows} rows)"
        )


class SlowQueryLog:
    """Bounded capture of queries meeting the latency threshold."""

    __slots__ = ("threshold", "_entries", "_lock")

    def __init__(self, threshold: float = 0.1, capacity: int = 128) -> None:
        #: Seconds; queries with ``duration >= threshold`` are logged.
        #: Settable at runtime (``session.observability.slowlog
        #: .threshold = 0.01``).
        self.threshold = threshold
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def should_record(self, duration: float) -> bool:
        return duration >= self.threshold

    def record(
        self,
        pattern: str,
        duration: float,
        rows: int,
        phases: dict[str, float] | None = None,
        plan: str | None = None,
    ) -> SlowQueryEntry | None:
        """Capture the query if it meets the threshold; returns the
        entry (None when below)."""
        if duration < self.threshold:
            return None
        entry = SlowQueryEntry(pattern, duration, rows, dict(phases or {}), plan)
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQueryEntry]:
        """Captured entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(threshold={self.threshold}, "
            f"{len(self)} entries)"
        )
