"""End-to-end observability: metrics, span traces, slow-query log.

The paper's warehouse is a continuously-updated *service*; this package
is its instrument panel, one facade over three bounded-memory pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe counters,
  gauges and fixed-bucket latency histograms (p50/p95/p99 estimated
  from bucket counts, no per-sample storage);
* :class:`~repro.obs.trace.Tracer` — hierarchical span traces of the
  real phase boundaries (query → plan-cache lookup / plan build / view
  build / match enumeration / probability evaluation; commit → WAL
  append / snapshot / stats delta / condition-index patch; fan-out →
  per-shard queue wait / execute / merge), the last N kept in a ring
  buffer;
* :class:`~repro.obs.slowlog.SlowQueryLog` — queries past a threshold
  captured with pattern, chosen plan, row count, per-phase timings.

Scoping: every :class:`~repro.warehouse.warehouse.Warehouse` carries an
:class:`Observability` — by default the **process-global** one
(:func:`default_observability`), whose registry bridges the historical
flat :data:`~repro.analysis.instrumentation.counters` so ``engine.*`` /
``core.query.*`` names keep flowing into exports.  Pass
``observability=Observability()`` to :func:`repro.connect` to scope a
warehouse's metrics privately, or ``observability=None`` to run with no
instrumentation attached at all (the benchmark baseline).

Overhead contract (benchmark E14): with everything enabled the query
path pays ≤5% over the uninstrumented baseline; disabled, ≤1% — call
sites hoist the enabled flags into locals once per operation, the same
idiom as :class:`~repro.analysis.instrumentation.Counters`.
"""

from __future__ import annotations

from repro.analysis.instrumentation import counters as _global_counters
from repro.obs.export import prometheus_name, render_json, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_CATALOG,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import Span, Tracer, render_span, render_trace

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_CATALOG",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Tracer",
    "default_observability",
    "prometheus_name",
    "render_json",
    "render_prometheus",
    "render_span",
    "render_trace",
]


class Observability:
    """One warehouse's (or the process's) instrument panel.

    Bundles a metrics registry, a tracer and a slow-query log; the
    pieces can be passed in (to share or customize) or default to fresh
    ones.  :meth:`enable`/:meth:`disable` toggle metrics and tracing
    together; the slow-query log follows the metrics flag (its capture
    runs inside the metrics-guarded path).
    """

    __slots__ = ("metrics", "tracer", "slowlog")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slowlog: SlowQueryLog | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.slowlog = slowlog if slowlog is not None else SlowQueryLog()

    @property
    def enabled(self) -> bool:
        """True when any instrumentation (metrics or tracing) is on."""
        return self.metrics.enabled or self.tracer.enabled

    def enable(self) -> None:
        self.metrics.enable()
        self.tracer.enable()

    def disable(self) -> None:
        self.metrics.disable()
        self.tracer.disable()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state}, {self.metrics!r}, {self.tracer!r})"


_default: Observability | None = None


def default_observability() -> Observability:
    """The process-global panel every warehouse shares by default.

    Its registry bridges the flat global
    :data:`~repro.analysis.instrumentation.counters`, so the historical
    ``engine.*`` / ``core.query.*`` counter names appear in every
    export without double bookkeeping.
    """
    global _default
    if _default is None:
        _default = Observability(
            metrics=MetricsRegistry(bridge=_global_counters)
        )
    return _default
