"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The :class:`MetricsRegistry` is the numeric half of the observability
layer (:mod:`repro.obs`): named counters and gauges plus latency
histograms with **fixed bucket bounds** — quantiles (p50/p95/p99) are
estimated from cumulative bucket counts, so recording an observation is
O(log buckets) and the registry never stores per-sample data, no matter
how long the process serves.

A registry can *bridge* an existing
:class:`~repro.analysis.instrumentation.Counters` instance: the hot
paths keep incrementing the flat global counters exactly as before
(``engine.plan_cache_hits``, ``core.query.matches``, …) and the bridge
folds them into every snapshot/export, so the historical names keep
working without double bookkeeping.

Like ``Counters``, a registry has an :attr:`MetricsRegistry.enabled`
flag that hot paths hoist into a local once per operation; when it is
False, :meth:`incr`/:meth:`observe`/:meth:`set_gauge` return before
taking any lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_CATALOG",
    "Histogram",
    "MetricsRegistry",
]

#: Default latency bucket upper bounds, in seconds: log-spaced from
#: 50 µs to 10 s, wide enough for a plan-cache lookup and a compaction
#: alike.  Observations past the last bound land in the overflow
#: (+Inf) bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The standard metric families every :class:`MetricsRegistry` exposes
#: from birth (zero-valued until first touched), so an export always
#: covers the engine, warehouse and serving surfaces even in a process
#: that has not exercised them yet.  ``kind`` is the Prometheus type.
METRIC_CATALOG: tuple[tuple[str, str, str], ...] = (
    # engine (the flat global Counters feed these through the bridge)
    ("engine.plan_cache_hits", "counter", "Plan cache hits"),
    ("engine.plan_cache_misses", "counter", "Plan cache misses"),
    ("engine.plan_cache_evictions", "counter", "Plan cache LRU evictions"),
    ("engine.plans_built", "counter", "Plans built by the cost-based planner"),
    ("engine.plan_build_seconds", "histogram", "Time to build one query plan"),
    ("engine.view_build_seconds", "histogram",
     "Time to build a per-root document walk (+ condition index)"),
    # core query path
    ("core.query.matches", "counter", "Matches enumerated by queries"),
    ("query.probability_seconds", "histogram",
     "Time to price one streamed row's probability (lazy, first access)"),
    # api layer
    ("api.queries", "counter", "Query executions started through the api layer"),
    ("api.rows_streamed", "counter", "Rows streamed through session result sets"),
    ("api.first_row_seconds", "histogram",
     "Latency from iteration start to the first streamed row"),
    ("api.query_seconds", "histogram",
     "Latency from iteration start to stream exhaustion/close"),
    ("api.slow_queries", "counter", "Queries captured by the slow-query log"),
    # warehouse / commit pipeline
    ("warehouse.commits", "counter", "Committed operations (all kinds)"),
    ("warehouse.commit_seconds", "histogram", "End-to-end commit latency"),
    ("warehouse.wal_append_seconds", "histogram",
     "WAL append + fsync latency inside a commit"),
    ("warehouse.snapshot_seconds", "histogram",
     "Snapshot write (document serialization + WAL reset) latency"),
    ("warehouse.recovery_seconds", "histogram",
     "WAL replay time during Warehouse.open"),
    ("warehouse.recovery_replayed_records", "counter",
     "WAL records replayed by recovery"),
    ("warehouse.sequence", "gauge", "Commit sequence number"),
    ("warehouse.wal_depth", "gauge", "Commits in the WAL past the snapshot"),
    ("warehouse.wal_bytes", "gauge", "WAL file size in bytes"),
    ("warehouse.read_sessions", "gauge", "Open snapshot pins"),
    ("warehouse.nodes", "gauge", "Document node count (refreshed on stats/export)"),
    ("warehouse.binary_snapshot_loads", "counter",
     "Warehouse.open cold-starts served from the binary snapshot codec"),
    ("warehouse.binary_snapshot_fallbacks", "counter",
     "Binary snapshot load failures that fell back to the XML snapshot"),
    # serving layer
    ("serve.queue_wait_seconds", "histogram",
     "Pool queue wait: submit to worker pickup"),
    ("serve.execute_seconds", "histogram", "Pool task execution time"),
    ("serve.shard_seconds", "histogram", "Per-shard fan-out query execution"),
    ("serve.fanout_seconds", "histogram",
     "Collection fan-out: submit to merged-stream exhaustion"),
    ("serve.fanout_queries", "counter", "Collection fan-out query executions"),
    # process-per-shard cluster (repro serve --shard-processes)
    ("cluster.workers", "gauge", "Live worker processes in the cluster"),
    ("cluster.requests", "counter", "Requests routed to worker processes"),
    ("cluster.respawns", "counter", "Worker processes respawned after death"),
    ("cluster.worker_failures", "counter",
     "Requests failed by a dead/dying worker (retryable)"),
    ("cluster.migrations", "counter",
     "Documents migrated between workers on ring changes"),
    ("cluster.ipc_roundtrip_seconds", "histogram",
     "Supervisor-side request/response round trip over the worker pipe"),
    ("cluster.retries", "counter",
     "Backoff retries of cluster reads inside the deadline budget"),
    ("cluster.failovers", "counter",
     "Reads served by a replica after the primary failed"),
    ("cluster.resyncs", "counter",
     "Replica copies healed from a primary snapshot handoff"),
    ("cluster.resync_bytes", "counter",
     "Bytes shipped by replica resync handoffs"),
    ("cluster.stale_replicas", "gauge",
     "Replica copies currently awaiting resync"),
    ("cluster.replica_lag", "gauge",
     "Max commit-sequence lag across synced replicas"),
    # HTTP front end (repro serve)
    ("http.requests", "counter", "HTTP requests answered (any status)"),
    ("http.request_seconds", "histogram",
     "HTTP request latency: parsed to response written"),
    ("http.query_seconds", "histogram",
     "POST /query latency: admission to response body ready"),
    ("http.shed_requests", "counter",
     "Requests rejected with 429 by admission control"),
    ("http.deadline_timeouts", "counter",
     "Queries cancelled by a per-request deadline (504)"),
    ("http.error_responses", "counter", "HTTP responses with status >= 400"),
    ("http.inflight_requests", "gauge",
     "Requests admitted and not yet answered"),
    ("http.connections", "counter", "TCP connections accepted"),
)


class Histogram:
    """A fixed-bucket latency histogram (no per-sample storage).

    ``boundaries`` are the inclusive upper bounds of the finite
    buckets; one extra overflow bucket catches everything beyond the
    last bound.  Quantiles are estimated by linear interpolation inside
    the bucket containing the target rank — the estimate for a value in
    the overflow bucket is the last finite bound (a conservative lower
    bound, exactly like Prometheus's ``histogram_quantile``).
    """

    __slots__ = ("name", "boundaries", "_counts", "_sum", "_lock")

    def __init__(
        self, name: str, boundaries: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.boundaries = tuple(sorted(float(b) for b in boundaries))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        # One slot per finite bucket plus the overflow bucket.
        self._counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds, by convention)."""
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                if index >= len(self.boundaries):
                    # Overflow bucket: the true value is beyond the last
                    # finite bound; report that bound (lower bound).
                    return self.boundaries[-1]
                lower = self.boundaries[index - 1] if index > 0 else 0.0
                upper = self.boundaries[index]
                fraction = (target - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
        return self.boundaries[-1]

    def snapshot(self) -> dict:
        """Counts, sum and estimated p50/p95/p99 plus cumulative buckets."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
        buckets: list[tuple[float, int]] = []
        cumulative = 0
        for boundary, count in zip(self.boundaries, counts):
            cumulative += count
            buckets.append((boundary, cumulative))
        total = cumulative + counts[-1]
        return {
            "count": total,
            "sum": total_sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named counters, gauges and histograms behind one thread-safe scope.

    Parameters
    ----------
    bridge:
        An optional :class:`~repro.analysis.instrumentation.Counters`
        whose values are merged into every :meth:`snapshot` as counters
        — the compatibility shim that keeps the historical flat counter
        names (``engine.*``, ``core.query.*``) flowing into exports.
    preregister:
        Seed the registry with :data:`METRIC_CATALOG` (the default), so
        exports always cover the full metric surface.
    """

    __slots__ = (
        "enabled",
        "_bridge",
        "_lock",
        "_counters",
        "_gauges",
        "_histograms",
        "_help",
    )

    def __init__(self, bridge=None, *, preregister: bool = True) -> None:
        #: Hot paths hoist this flag into a local once per operation
        #: (the same idiom as :class:`Counters.enabled`).
        self.enabled = True
        self._bridge = bridge
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._help: dict[str, str] = {}
        if preregister:
            for name, kind, help_text in METRIC_CATALOG:
                self.describe(name, kind, help_text)

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------

    def describe(self, name: str, kind: str, help_text: str) -> None:
        """Declare a metric (zero-valued until first touched) with help
        text for exports."""
        with self._lock:
            self._help[name] = help_text
            if kind == "counter":
                self._counters.setdefault(name, 0.0)
            elif kind == "gauge":
                self._gauges.setdefault(name, 0.0)
            elif kind == "histogram":
                if name not in self._histograms:
                    self._histograms[name] = Histogram(name)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def help_text(self, name: str) -> str | None:
        return self._help.get(name)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (creating the histogram on
        first use)."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Enable / disable
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current counter value, bridge included."""
        with self._lock:
            value = self._counters.get(name, 0.0)
        if self._bridge is not None:
            value += self._bridge.get(name)
        return value

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty if missing)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    def snapshot(self) -> dict:
        """Point-in-time copy: counters (bridge merged), gauges,
        histogram summaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        if self._bridge is not None:
            for name, value in self._bridge.snapshot().items():
                counters[name] = counters.get(name, 0.0) + value
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Zero every metric (histograms are recreated empty); the
        bridged Counters instance is left alone."""
        with self._lock:
            for name in self._counters:
                self._counters[name] = 0.0
            for name in self._gauges:
                self._gauges[name] = 0.0
            self._histograms = {
                name: Histogram(name, histogram.boundaries)
                for name, histogram in self._histograms.items()
            }

    def __repr__(self) -> str:
        with self._lock:
            shape = (
                f"{len(self._counters)} counters, {len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms"
            )
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({shape}, {state})"
