"""Prometheus text-format and JSON renderers over a MetricsRegistry.

:func:`render_prometheus` emits the text exposition format a scraper
expects (``# HELP`` / ``# TYPE`` headers, ``_total``-suffixed
counters, cumulative ``_bucket{le=...}`` series plus ``_sum`` /
``_count`` per histogram).  Metric names are mangled to the Prometheus
charset: ``repro_`` prefix, dots and dashes to underscores —
``engine.plan_cache_hits`` becomes
``repro_engine_plan_cache_hits_total``.

:func:`render_json` is the structured sibling for scripts and tests:
the registry snapshot (counters with the Counters bridge folded in,
gauges, histogram summaries with p50/p95/p99) plus, when given an
:class:`~repro.obs.Observability`, the slow-query log and recent
traces.

The future ``repro serve --port N`` front-end mounts these verbatim as
``/metrics`` (Prometheus) and ``/metrics.json``.
"""

from __future__ import annotations

import json
import re

__all__ = ["prometheus_name", "render_json", "render_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, *, counter: bool = False) -> str:
    """The Prometheus-legal series name for a registry metric name."""
    mangled = "repro_" + _NAME_SANITIZER.sub("_", name)
    if counter and not mangled.endswith("_total"):
        mangled += "_total"
    return mangled


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    snapshot = registry.snapshot()
    lines: list[str] = []

    for name, value in snapshot["counters"].items():
        series = prometheus_name(name, counter=True)
        help_text = registry.help_text(name)
        if help_text:
            lines.append(f"# HELP {series} {help_text}")
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_format_value(value)}")

    for name, value in snapshot["gauges"].items():
        series = prometheus_name(name)
        help_text = registry.help_text(name)
        if help_text:
            lines.append(f"# HELP {series} {help_text}")
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_format_value(value)}")

    for name, summary in snapshot["histograms"].items():
        series = prometheus_name(name)
        help_text = registry.help_text(name)
        if help_text:
            lines.append(f"# HELP {series} {help_text}")
        lines.append(f"# TYPE {series} histogram")
        for boundary, cumulative in summary["buckets"]:
            lines.append(
                f'{series}_bucket{{le="{_format_le(boundary)}"}} {cumulative}'
            )
        lines.append(f'{series}_bucket{{le="+Inf"}} {summary["count"]}')
        lines.append(f"{series}_sum {_format_value(summary['sum'])}")
        lines.append(f"{series}_count {summary['count']}")

    return "\n".join(lines) + "\n"


def _format_le(boundary: float) -> str:
    # Prometheus bucket labels conventionally render without exponent
    # noise; repr keeps them exact and parseable.
    if boundary == int(boundary):
        return str(float(boundary))
    return repr(boundary)


def render_json(registry, observability=None, *, indent: int | None = 2) -> str:
    """The registry snapshot as JSON; with *observability*, the slow-query
    log and recent traces ride along."""
    payload: dict = registry.snapshot()
    if observability is not None:
        payload["slow_queries"] = [
            entry.as_dict() for entry in observability.slowlog.entries()
        ]
        payload["traces"] = [
            span.as_dict() for span in observability.tracer.recent()
        ]
    return json.dumps(payload, indent=indent, sort_keys=False)
