"""Unordered data trees (paper, slide 5).

The paper's data model is a finite, *unordered*, labelled tree:

* no distinction between attribute and element nodes;
* no mixed content — a node carries either a text value (leaf) or
  children, never both;
* sibling order is irrelevant: two trees are equal when they are
  isomorphic as unordered trees.

:class:`Node` is the single building block.  A "tree" is simply its root
node.  Nodes are mutable (updates attach and detach subtrees) and carry a
parent pointer so ancestor walks — needed by the minimal-subtree answer
construction of TPWJ queries — are O(depth).

Unordered equality and hashing go through :meth:`Node.canonical`, a
canonical string encoding in which child encodings are sorted.  Computing
it is O(n log n) over the subtree; it is *not* cached because nodes
mutate (see DESIGN.md §6.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import TreeError

__all__ = ["Node"]


def _check_label(label: str) -> str:
    if not isinstance(label, str) or not label:
        raise TreeError(f"node label must be a non-empty string, got {label!r}")
    if any(ch in label for ch in "(){}[]<>,\"'/ \t\n"):
        raise TreeError(f"node label contains a reserved character: {label!r}")
    return label


class Node:
    """A node of an unordered data tree.

    Parameters
    ----------
    label:
        Element name.  Non-empty; must not contain structural characters
        (brackets, quotes, whitespace) so labels round-trip through the
        text syntaxes unambiguously.
    value:
        Optional text value.  Only leaves may carry a value ("no mixed
        content"); attaching a child to a valued node raises
        :class:`~repro.errors.TreeError`.
    children:
        Initial children, attached in order of iteration (order is not
        semantically meaningful).
    """

    __slots__ = ("label", "_value", "_children", "_parent")

    def __init__(
        self,
        label: str,
        value: str | None = None,
        children: Iterable["Node"] = (),
    ) -> None:
        self.label = _check_label(label)
        if value is not None and not isinstance(value, str):
            raise TreeError(f"node value must be a string or None, got {value!r}")
        self._value = value
        self._children: list[Node] = []
        self._parent: Node | None = None
        for child in children:
            self.add_child(child)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def value(self) -> str | None:
        """The text value, or None for an internal or empty node."""
        return self._value

    @value.setter
    def value(self, new_value: str | None) -> None:
        if new_value is not None:
            if not isinstance(new_value, str):
                raise TreeError(f"node value must be a string or None, got {new_value!r}")
            if self._children:
                raise TreeError(
                    f"cannot set a value on node {self.label!r}: it has children "
                    "(no mixed content)"
                )
        self._value = new_value

    @property
    def children(self) -> tuple["Node", ...]:
        """The children as a tuple (mutate via add_child / remove_child)."""
        return tuple(self._children)

    @property
    def parent(self) -> "Node | None":
        """The parent node, or None for a root."""
        return self._parent

    @property
    def is_leaf(self) -> bool:
        return not self._children

    @property
    def is_root(self) -> bool:
        return self._parent is None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_child(self, child: "Node") -> "Node":
        """Attach *child* under this node and return it.

        The child must be a detached root, this node must not carry a
        value, and the attachment must not create a cycle.
        """
        if not isinstance(child, Node):
            raise TreeError(f"child must be a Node, got {type(child).__name__}")
        if self._value is not None:
            raise TreeError(
                f"cannot attach a child to valued node {self.label!r} (no mixed content)"
            )
        if child._parent is not None:
            raise TreeError(
                f"node {child.label!r} already has a parent; detach it first"
            )
        ancestor: Node | None = self
        while ancestor is not None:
            if ancestor is child:
                raise TreeError("attaching this child would create a cycle")
            ancestor = ancestor._parent
        self._children.append(child)
        child._parent = self
        return child

    def remove_child(self, child: "Node") -> "Node":
        """Detach *child* (matched by identity) from this node and return it."""
        for index, existing in enumerate(self._children):
            if existing is child:
                del self._children[index]
                child._parent = None
                return child
        raise TreeError(f"node {child.label!r} is not a child of {self.label!r}")

    def detach(self) -> "Node":
        """Detach this node from its parent (no-op on roots); return self."""
        if self._parent is not None:
            self._parent.remove_child(self)
        return self

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so traversal visits children in attachment order.
            stack.extend(reversed(node._children))

    __iter__ = iter

    def leaves(self) -> Iterator["Node"]:
        """All leaves of this subtree, in pre-order."""
        for node in self.iter():
            if node.is_leaf:
                yield node

    def ancestors(self, include_self: bool = False) -> Iterator["Node"]:
        """Walk from (optionally) this node up to the root."""
        node: Node | None = self if include_self else self._parent
        while node is not None:
            yield node
            node = node._parent

    def root(self) -> "Node":
        """The root of the tree containing this node."""
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    def depth(self) -> int:
        """Number of edges from the root to this node (root: 0)."""
        return sum(1 for _ in self.ancestors())

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return sum(1 for _ in self.iter())

    def height(self) -> int:
        """Number of edges on the longest downward path from this node."""
        if not self._children:
            return 0
        return 1 + max(child.height() for child in self._children)

    # ------------------------------------------------------------------
    # Unordered equality
    # ------------------------------------------------------------------

    def canonical(self) -> str:
        """Canonical string encoding of this subtree.

        Two subtrees have equal encodings iff they are isomorphic as
        unordered labelled trees (same label, same value, same multiset
        of child subtrees).  Labels cannot contain the structural
        characters used here, so the encoding is injective.
        """
        if self._value is not None:
            own = f"{self.label}={self._value!r}"
        else:
            own = self.label
        if not self._children:
            return own
        parts = sorted(child.canonical() for child in self._children)
        return f"{own}({','.join(parts)})"

    def equals(self, other: "Node") -> bool:
        """Unordered tree equality (isomorphism of labelled trees)."""
        if not isinstance(other, Node):
            return NotImplemented
        return self.canonical() == other.canonical()

    # Note: ``==`` stays identity-based on purpose.  Matching and update
    # application address nodes by *position* in a specific tree, and a
    # value-based ``__eq__`` would silently merge distinct positions in
    # sets and dict keys.  Use :meth:`equals` / :meth:`canonical` for
    # value comparison.

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def clone(self) -> "Node":
        """Deep copy of this subtree, detached from any parent."""
        copy = Node(self.label, self._value)
        for child in self._children:
            copy.add_child(child.clone())
        return copy

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        if self._value is not None:
            return f"Node({self.label!r}, value={self._value!r})"
        return f"Node({self.label!r}, {len(self._children)} children)"

    def pretty(self, indent: str = "  ") -> str:
        """Multi-line ASCII rendering of the subtree (children indented)."""
        lines: list[str] = []

        def visit(node: Node, level: int) -> None:
            suffix = f" = {node.value!r}" if node.value is not None else ""
            lines.append(f"{indent * level}{node.label}{suffix}")
            for child in node._children:
                visit(child, level + 1)

        visit(self, 0)
        return "\n".join(lines)
