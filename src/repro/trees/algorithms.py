"""Tree algorithms shared by the query engine, updates and semantics.

The central operation is :func:`minimal_subtree`: the answer to a TPWJ
query is "the minimal subtree containing all the nodes mapped by the
query" (paper, slide 6).  For a rooted tree this is the union of the
root-paths of the mapped nodes; we materialise it as a fresh tree
restricted to those nodes and their ancestors.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import TreeError
from repro.trees.node import Node

__all__ = [
    "minimal_subtree",
    "restrict",
    "label_counts",
    "label_index",
    "find_all",
    "find_first",
    "lowest_common_ancestor",
    "same_tree",
    "multiset_equal",
    "node_path",
    "node_at_path",
]


def minimal_subtree(root: Node, targets: Iterable[Node]) -> Node:
    """The minimal subtree of *root* containing every node in *targets*.

    Returns a fresh tree (a restricted copy).  Every target must belong
    to the tree rooted at *root*.  The result always includes *root*
    itself, matching the paper's convention that an answer is a subtree
    of the document (hence rooted at the document root).
    """
    keep: set[int] = {id(root)}
    target_list = list(targets)
    for target in target_list:
        walk: Node | None = target
        while walk is not None and id(walk) not in keep:
            keep.add(id(walk))
            walk = walk.parent
        # Verify the walk reached a node already kept (ultimately root).
    # Membership check: every target's root must be *root*.
    for target in target_list:
        if target.root() is not root:
            raise TreeError("target node does not belong to the given tree")
    return restrict(root, keep)


def restrict(root: Node, keep_ids: set[int]) -> Node:
    """Copy of *root* keeping exactly the nodes whose id() is in *keep_ids*.

    A kept node whose parent is not kept is dropped along with its
    subtree (subtrees must be connected to the root to survive).  The
    root must be kept.
    """
    if id(root) not in keep_ids:
        raise TreeError("the root itself must be kept")

    def copy(node: Node) -> Node:
        fresh = Node(node.label, node.value)
        for child in node.children:
            if id(child) in keep_ids:
                fresh.add_child(copy(child))
        return fresh

    return copy(root)


def label_counts(root: Node) -> Counter:
    """Multiset of labels in the subtree (used by workload stats)."""
    return Counter(node.label for node in root.iter())


def label_index(root: Node) -> dict[str, list[Node]]:
    """Map label -> nodes with that label, in pre-order.

    The TPWJ matcher uses this to enumerate candidates per pattern node
    instead of scanning the whole document for every pattern node.
    """
    index: dict[str, list[Node]] = {}
    for node in root.iter():
        index.setdefault(node.label, []).append(node)
    return index


def find_all(root: Node, label: str) -> list[Node]:
    """All nodes of the subtree with the given label, in pre-order."""
    return [node for node in root.iter() if node.label == label]


def find_first(root: Node, label: str) -> Node | None:
    """First node (pre-order) with the given label, or None."""
    for node in root.iter():
        if node.label == label:
            return node
    return None


def lowest_common_ancestor(first: Node, second: Node) -> Node:
    """LCA of two nodes of the same tree."""
    seen = {id(node) for node in first.ancestors(include_self=True)}
    for node in second.ancestors(include_self=True):
        if id(node) in seen:
            return node
    raise TreeError("nodes do not belong to the same tree")


def same_tree(first: Node, second: Node) -> bool:
    """True when both nodes belong to the same tree instance."""
    return first.root() is second.root()


def multiset_equal(first: Iterable[Node], second: Iterable[Node]) -> bool:
    """Compare two collections of trees as multisets (unordered equality)."""
    return Counter(node.canonical() for node in first) == Counter(
        node.canonical() for node in second
    )


def node_path(node: Node) -> tuple[int, ...]:
    """Positional path of *node* from its root (child indexes, top-down).

    Positions refer to the current attachment order; they are stable as
    long as the tree is not mutated, which is how the update executor
    transfers match positions onto cloned trees.
    """
    path: list[int] = []
    walk = node
    while walk.parent is not None:
        parent = walk.parent
        for index, child in enumerate(parent.children):
            if child is walk:
                path.append(index)
                break
        else:  # pragma: no cover - defensive; parent links are maintained by Node
            raise TreeError("corrupt parent link")
        walk = parent
    path.reverse()
    return tuple(path)


def node_at_path(root: Node, path: tuple[int, ...]) -> Node:
    """Inverse of :func:`node_path` relative to *root*."""
    node = root
    for index in path:
        children = node.children
        if index >= len(children):
            raise TreeError(f"path {path!r} does not exist in this tree")
        node = children[index]
    return node
