"""Random data-tree generation.

Used by the property tests (as a seed-driven complement to hypothesis
strategies) and by the workload generators.  All randomness flows through
an explicit :class:`random.Random` instance so every benchmark run is
reproducible from its seed.
"""

from __future__ import annotations

import random
import string

from repro.trees.node import Node

__all__ = ["RandomTreeConfig", "random_tree", "random_labels"]


class RandomTreeConfig:
    """Shape parameters for :func:`random_tree`.

    Parameters
    ----------
    max_nodes:
        Upper bound on the number of nodes generated.
    max_children:
        Maximum branching factor.
    max_depth:
        Maximum depth (root at depth 0).
    labels:
        Label alphabet to draw from.
    value_probability:
        Probability that a leaf carries a text value.
    values:
        Value alphabet for leaves.
    """

    def __init__(
        self,
        max_nodes: int = 30,
        max_children: int = 4,
        max_depth: int = 6,
        labels: tuple[str, ...] = ("A", "B", "C", "D", "E", "F"),
        value_probability: float = 0.5,
        values: tuple[str, ...] = ("foo", "bar", "nee", "qux"),
        min_nodes: int = 1,
    ) -> None:
        if max_nodes < 1:
            raise ValueError("max_nodes must be at least 1")
        if max_children < 1:
            raise ValueError("max_children must be at least 1")
        if not labels:
            raise ValueError("labels must be non-empty")
        if not 1 <= min_nodes <= max_nodes:
            raise ValueError("min_nodes must lie in [1, max_nodes]")
        self.max_nodes = max_nodes
        self.max_children = max_children
        self.max_depth = max_depth
        self.labels = labels
        self.value_probability = value_probability
        self.values = values
        self.min_nodes = min_nodes


def random_tree(rng: random.Random, config: RandomTreeConfig | None = None) -> Node:
    """Generate a random unordered data tree.

    The generator grows the tree breadth-first, spending a node budget of
    ``config.max_nodes``; leaves receive a value with probability
    ``config.value_probability``.  When the random growth stalls below
    ``config.min_nodes`` (every frontier node drew zero children early),
    the draw is retried — deterministically, from the same RNG stream —
    so sweeps over sizes measure what they claim to.
    """
    config = config or RandomTreeConfig()
    for _attempt in range(100):
        root = _grow(rng, config)
        if root.size() >= config.min_nodes:
            return root
    return root  # pathological configs: return the last attempt


def _grow(rng: random.Random, config: RandomTreeConfig) -> Node:
    root = Node(rng.choice(config.labels))
    budget = config.max_nodes - 1
    frontier: list[tuple[Node, int]] = [(root, 0)]
    while frontier and budget > 0:
        index = rng.randrange(len(frontier))
        node, depth = frontier.pop(index)
        if depth >= config.max_depth:
            continue
        n_children = rng.randint(0, min(config.max_children, budget))
        for _ in range(n_children):
            child = Node(rng.choice(config.labels))
            node.add_child(child)
            budget -= 1
            frontier.append((child, depth + 1))
    # Assign values to a random subset of leaves.
    for leaf in list(root.leaves()):
        if config.values and rng.random() < config.value_probability:
            leaf.value = rng.choice(config.values)
    return root


def random_labels(rng: random.Random, count: int, length: int = 3) -> list[str]:
    """Generate *count* distinct random uppercase labels."""
    seen: set[str] = set()
    labels: list[str] = []
    while len(labels) < count:
        label = "".join(rng.choice(string.ascii_uppercase) for _ in range(length))
        if label not in seen:
            seen.add(label)
            labels.append(label)
    return labels
