"""Concise construction helpers for data trees.

The tests, examples and benchmarks build many small trees; writing nested
:class:`~repro.trees.node.Node` constructors is noisy.  :func:`tree`
provides a compact literal syntax::

    from repro.trees import tree as t

    doc = t("A",
            t("B", "foo"),          # leaf with a value
            t("B", "foo"),
            t("E", t("C", "bar")),  # internal node
            t("D", t("F", "nee")))

which is the example document from slide 5 of the paper.

:func:`from_spec` builds a tree from a plain nested structure (label,
value-or-children) — convenient for table-driven tests and for workload
generators that assemble specs programmatically.
"""

from __future__ import annotations

from repro.errors import TreeError
from repro.trees.node import Node

__all__ = ["tree", "from_spec", "to_spec"]


def tree(label: str, *parts: "Node | str") -> Node:
    """Build a node from a label and a mix of child nodes / a text value.

    String arguments set the node's value; node arguments become
    children.  Supplying both, several strings, or a string alongside
    children violates the "no mixed content" rule and raises
    :class:`~repro.errors.TreeError`.
    """
    value: str | None = None
    children: list[Node] = []
    for part in parts:
        if isinstance(part, Node):
            children.append(part)
        elif isinstance(part, str):
            if value is not None:
                raise TreeError(f"node {label!r} given two text values")
            value = part
        else:
            raise TreeError(
                f"tree() arguments must be Node or str, got {type(part).__name__}"
            )
    if value is not None and children:
        raise TreeError(f"node {label!r} given both a value and children (no mixed content)")
    return Node(label, value=value, children=children)


def from_spec(spec: object) -> Node:
    """Build a tree from a nested plain-Python specification.

    Accepted forms::

        "A"                          -> leaf labelled A, no value
        ("A", "foo")                 -> leaf labelled A with value "foo"
        ("A", [child_spec, ...])     -> internal node labelled A

    Children are given as a list of specs of the same shape.
    """
    if isinstance(spec, str):
        return Node(spec)
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        label, payload = spec
        if payload is None:
            return Node(label)
        if isinstance(payload, str):
            return Node(label, value=payload)
        if isinstance(payload, list):
            return Node(label, children=[from_spec(child) for child in payload])
    raise TreeError(f"invalid tree spec: {spec!r}")


def to_spec(node: Node) -> object:
    """Inverse of :func:`from_spec` (children in attachment order)."""
    if node.value is not None:
        return (node.label, node.value)
    if node.is_leaf:
        return node.label
    return (node.label, [to_spec(child) for child in node.children])
