"""Unordered data trees — substrate S1 (paper, slide 5).

Public surface:

* :class:`Node` — the tree building block (a tree is its root node);
* :func:`tree` / :func:`from_spec` / :func:`to_spec` — concise literals;
* algorithms: :func:`minimal_subtree`, :func:`label_index`,
  :func:`find_all`, :func:`find_first`, :func:`lowest_common_ancestor`,
  :func:`multiset_equal`, :func:`node_path`, :func:`node_at_path`;
* :func:`random_tree` with :class:`RandomTreeConfig` for seeded generation.
"""

from repro.trees.algorithms import (
    find_all,
    find_first,
    label_counts,
    label_index,
    lowest_common_ancestor,
    minimal_subtree,
    multiset_equal,
    node_at_path,
    node_path,
    restrict,
    same_tree,
)
from repro.trees.builder import from_spec, to_spec, tree
from repro.trees.node import Node
from repro.trees.random import RandomTreeConfig, random_labels, random_tree
from repro.trees.schema import NodeRule, Schema, Violation

__all__ = [
    "Node",
    "tree",
    "from_spec",
    "to_spec",
    "minimal_subtree",
    "restrict",
    "label_counts",
    "label_index",
    "find_all",
    "find_first",
    "lowest_common_ancestor",
    "same_tree",
    "multiset_equal",
    "node_path",
    "node_at_path",
    "RandomTreeConfig",
    "random_tree",
    "random_labels",
    "Schema",
    "NodeRule",
    "Violation",
]
