"""Schema validation for data trees (a warehouse input-checking substrate).

A light, DTD-flavoured schema: per-label rules constraining the allowed
child labels and the presence of text values.  The constraint language
is deliberately *monotone* — removing nodes can never introduce a
violation — which yields a useful property for probabilistic documents:

    if the **underlying** tree of a fuzzy document satisfies a schema,
    then **every possible world** does too,

because each world is a restriction of the underlying tree (nodes only
disappear) and labels/values are static.  Checking the underlying tree
is therefore sound for all worlds; the test suite verifies this world
by world.  (This is also why the rule set has no "required child"
constraint: it would be non-monotone.)
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import TreeError
from repro.trees.node import Node

__all__ = ["ValuePolicy", "NodeRule", "Schema", "Violation"]

#: Accepted value policies for :class:`NodeRule`.
ValuePolicy = str
_VALUE_POLICIES = ("forbidden", "optional", "required")


@dataclass(frozen=True, slots=True)
class NodeRule:
    """Constraints on the nodes carrying one label.

    Parameters
    ----------
    children:
        Allowed child labels, or None for "any".  An empty set means
        the node must be a leaf.
    value:
        ``"forbidden"`` (internal/empty nodes only), ``"optional"``
        (default) or ``"required"`` (must be a valued leaf).
    """

    children: frozenset[str] | None = None
    value: ValuePolicy = "optional"

    def __post_init__(self) -> None:
        if self.value not in _VALUE_POLICIES:
            raise TreeError(
                f"value policy must be one of {_VALUE_POLICIES}, got {self.value!r}"
            )
        if self.children is not None and not isinstance(self.children, frozenset):
            object.__setattr__(self, "children", frozenset(self.children))
        if self.value == "required" and self.children:
            raise TreeError("a value-required label cannot also allow children")


@dataclass(frozen=True, slots=True)
class Violation:
    """One schema violation, with enough context to locate it."""

    label: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.label}: {self.kind} — {self.detail}"


class Schema:
    """A label-indexed rule set for data trees.

    Parameters
    ----------
    rules:
        Map from label to :class:`NodeRule`.
    root_label:
        When given, the document root must carry this label.
    allow_unknown_labels:
        When False, any label without a rule is itself a violation
        (a "closed" schema).
    """

    __slots__ = ("rules", "root_label", "allow_unknown_labels")

    def __init__(
        self,
        rules: Mapping[str, NodeRule] | None = None,
        root_label: str | None = None,
        allow_unknown_labels: bool = True,
    ) -> None:
        self.rules = dict(rules or {})
        for label, rule in self.rules.items():
            if not isinstance(rule, NodeRule):
                raise TreeError(f"rule for {label!r} must be a NodeRule")
        self.root_label = root_label
        self.allow_unknown_labels = bool(allow_unknown_labels)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def violations(self, root: Node) -> list[Violation]:
        """All violations of this schema in the tree rooted at *root*."""
        found: list[Violation] = []
        if self.root_label is not None and root.label != self.root_label:
            found.append(
                Violation(
                    root.label,
                    "root-label",
                    f"expected root {self.root_label!r}",
                )
            )
        for node in root.iter():
            rule = self.rules.get(node.label)
            if rule is None:
                if not self.allow_unknown_labels:
                    found.append(
                        Violation(node.label, "unknown-label", "no rule in a closed schema")
                    )
                continue
            if rule.children is not None:
                for child in node.children:
                    if child.label not in rule.children:
                        found.append(
                            Violation(
                                node.label,
                                "child-label",
                                f"child {child.label!r} not among "
                                f"{sorted(rule.children)}",
                            )
                        )
            if rule.value == "forbidden" and node.value is not None:
                found.append(
                    Violation(node.label, "value-forbidden", f"carries {node.value!r}")
                )
            if rule.value == "required" and node.value is None:
                found.append(
                    Violation(node.label, "value-required", "carries no value")
                )
        return found

    def is_valid(self, root: Node) -> bool:
        return not self.violations(root)

    def check(self, root: Node) -> None:
        """Raise :class:`~repro.errors.TreeError` on the first violations."""
        found = self.violations(root)
        if found:
            summary = "; ".join(str(v) for v in found[:5])
            more = f" (+{len(found) - 5} more)" if len(found) > 5 else ""
            raise TreeError(f"schema violations: {summary}{more}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: Mapping[str, Iterable[str] | None], **kwargs) -> "Schema":
        """Build a schema from ``{label: allowed-child-labels}``.

        A None entry allows any children; ``"#text"`` in the child list
        marks the label as value-required (and leaf), mirroring DTD
        ``#PCDATA``.
        """
        rules: dict[str, NodeRule] = {}
        for label, children in spec.items():
            if children is None:
                rules[label] = NodeRule()
            else:
                names = set(children)
                if "#text" in names:
                    names.discard("#text")
                    if names:
                        raise TreeError(
                            f"label {label!r}: '#text' cannot mix with child labels "
                            "(no mixed content)"
                        )
                    rules[label] = NodeRule(children=frozenset(), value="required")
                else:
                    rules[label] = NodeRule(children=frozenset(names), value="forbidden")
        return cls(rules, **kwargs)

    def __repr__(self) -> str:
        return (
            f"Schema({len(self.rules)} rules, root={self.root_label!r}, "
            f"{'open' if self.allow_unknown_labels else 'closed'})"
        )
