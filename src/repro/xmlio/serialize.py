"""Serialization of fuzzy documents to the probabilistic XML dialect.

The paper's implementation stores fuzzy trees as XML files (slide 16).
This reproduction uses an equivalent dialect built on
:mod:`xml.etree.ElementTree`:

* every data node becomes an element of the same name;
* a leaf value becomes the element's text;
* a node condition is carried in a ``p:cond`` attribute holding the
  literal conjunction (``"w1 !w2"``);
* the event table is a ``<p:events>`` header of ``<p:event name=".."
  prob=".."/>`` entries, and the whole document is wrapped in
  ``<p:document>``.

``p:`` attributes use an explicit XML namespace so probabilistic
metadata can never collide with data labels.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.trees.node import Node

__all__ = [
    "NAMESPACE",
    "fuzzy_to_element",
    "fuzzy_to_string",
    "plain_to_element",
    "plain_to_string",
]

#: Namespace of the probabilistic annotations.
NAMESPACE = "urn:repro:probabilistic-xml"
_COND = f"{{{NAMESPACE}}}cond"
_DOCUMENT = f"{{{NAMESPACE}}}document"
_EVENTS = f"{{{NAMESPACE}}}events"
_EVENT = f"{{{NAMESPACE}}}event"

ET.register_namespace("p", NAMESPACE)


def fuzzy_to_element(fuzzy: FuzzyTree) -> ET.Element:
    """Serialize a fuzzy document into a ``<p:document>`` element tree."""
    document = ET.Element(_DOCUMENT)
    events = ET.SubElement(document, _EVENTS)
    for name, probability in fuzzy.events.items():
        ET.SubElement(events, _EVENT, {"name": name, "prob": repr(probability)})
    document.append(_node_to_element(fuzzy.root))
    return document


def _node_to_element(node: Node) -> ET.Element:
    element = ET.Element(node.label)
    if isinstance(node, FuzzyNode) and not node.condition.is_true:
        element.set(_COND, str(node.condition))
    if node.value is not None:
        element.text = node.value
    for child in node.children:
        element.append(_node_to_element(child))
    return element


def fuzzy_to_string(fuzzy: FuzzyTree, indent: bool = True) -> str:
    """Serialize a fuzzy document to an XML string."""
    element = fuzzy_to_element(fuzzy)
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def plain_to_element(root: Node) -> ET.Element:
    """Serialize an ordinary data tree (e.g. a query answer) to XML."""
    return _node_to_element(root)


def plain_to_string(root: Node, indent: bool = True) -> str:
    element = plain_to_element(root)
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")
