"""XML input/output — substrate S7 (paper, slide 16).

* :mod:`repro.xmlio.serialize` / :mod:`repro.xmlio.parse` — the
  probabilistic XML dialect for fuzzy documents and plain trees;
* :mod:`repro.xmlio.xupdate` — XUpdate-style transaction documents.
"""

from repro.xmlio.parse import (
    fuzzy_from_element,
    fuzzy_from_string,
    plain_from_element,
    plain_from_string,
)
from repro.xmlio.serialize import (
    NAMESPACE,
    fuzzy_to_element,
    fuzzy_to_string,
    plain_to_element,
    plain_to_string,
)
from repro.xmlio.xupdate import (
    XUPDATE_NAMESPACE,
    batch_from_string,
    batch_to_string,
    transaction_from_string,
    transaction_to_string,
    updates_from_string,
)

__all__ = [
    "NAMESPACE",
    "XUPDATE_NAMESPACE",
    "fuzzy_to_element",
    "fuzzy_to_string",
    "fuzzy_from_element",
    "fuzzy_from_string",
    "plain_to_element",
    "plain_to_string",
    "plain_from_element",
    "plain_from_string",
    "transaction_to_string",
    "transaction_from_string",
    "batch_to_string",
    "batch_from_string",
    "updates_from_string",
]
