"""Parsing of the probabilistic XML dialect back into fuzzy documents.

Inverse of :mod:`repro.xmlio.serialize`; every structural rule of the
data model is enforced at parse time with precise
:class:`~repro.errors.XMLFormatError` messages (mixed content, unknown
events, malformed probabilities), so a corrupted warehouse file cannot
produce a silently-wrong document.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import EventError, TreeError, XMLFormatError
from repro.events.condition import Condition
from repro.events.table import EventTable
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.trees.node import Node
from repro.xmlio.serialize import NAMESPACE

__all__ = ["fuzzy_from_element", "fuzzy_from_string", "plain_from_element", "plain_from_string"]

_COND = f"{{{NAMESPACE}}}cond"
_DOCUMENT = f"{{{NAMESPACE}}}document"
_EVENTS = f"{{{NAMESPACE}}}events"
_EVENT = f"{{{NAMESPACE}}}event"


def fuzzy_from_string(text: str) -> FuzzyTree:
    """Parse a serialized fuzzy document."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLFormatError(f"not well-formed XML: {exc}") from exc
    return fuzzy_from_element(element)


def fuzzy_from_element(document: ET.Element) -> FuzzyTree:
    if document.tag != _DOCUMENT:
        raise XMLFormatError(
            f"expected root element p:document, got {document.tag!r}"
        )
    children = list(document)
    if len(children) != 2 or children[0].tag != _EVENTS:
        raise XMLFormatError(
            "p:document must contain exactly a p:events header followed by the data root"
        )
    events = _parse_events(children[0])
    root = _parse_fuzzy_node(children[1], events)
    try:
        return FuzzyTree(root, events)
    except Exception as exc:  # invariant violations become format errors
        raise XMLFormatError(f"invalid fuzzy document: {exc}") from exc


def _parse_events(header: ET.Element) -> EventTable:
    events = EventTable()
    for entry in header:
        if entry.tag != _EVENT:
            raise XMLFormatError(f"unexpected element in p:events: {entry.tag!r}")
        name = entry.get("name")
        prob = entry.get("prob")
        if name is None or prob is None:
            raise XMLFormatError("p:event requires both name and prob attributes")
        try:
            probability = float(prob)
        except ValueError:
            raise XMLFormatError(f"invalid probability {prob!r} for event {name!r}") from None
        try:
            events.declare(name, probability)
        except EventError as exc:
            raise XMLFormatError(str(exc)) from exc
    return events


def _parse_fuzzy_node(element: ET.Element, events: EventTable) -> FuzzyNode:
    if element.tag.startswith("{"):
        raise XMLFormatError(f"data elements must not be namespaced: {element.tag!r}")
    condition_text = element.get(_COND, "")
    try:
        condition = Condition.parse(condition_text)
    except EventError as exc:
        raise XMLFormatError(
            f"invalid condition {condition_text!r} on element {element.tag!r}: {exc}"
        ) from exc
    for attribute in element.keys():
        if attribute != _COND:
            raise XMLFormatError(
                f"unexpected attribute {attribute!r} on element {element.tag!r} "
                "(the dialect has no data attributes)"
            )
    children = list(element)
    text = (element.text or "").strip() or None
    if text is not None and children:
        raise XMLFormatError(
            f"element {element.tag!r} has both text and children (no mixed content)"
        )
    try:
        node = FuzzyNode(element.tag, value=text, condition=condition)
        for child in children:
            tail = (child.tail or "").strip()
            if tail:
                raise XMLFormatError(
                    f"element {element.tag!r} has mixed content (trailing text {tail!r})"
                )
            node.add_child(_parse_fuzzy_node(child, events))
    except TreeError as exc:
        raise XMLFormatError(str(exc)) from exc
    return node


def plain_from_string(text: str) -> Node:
    """Parse an ordinary (non-probabilistic) data tree from XML."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLFormatError(f"not well-formed XML: {exc}") from exc
    return plain_from_element(element)


def plain_from_element(element: ET.Element) -> Node:
    if element.tag.startswith("{"):
        raise XMLFormatError(f"data elements must not be namespaced: {element.tag!r}")
    if element.keys():
        raise XMLFormatError(
            f"unexpected attributes on element {element.tag!r} "
            "(plain trees carry no attributes)"
        )
    children = list(element)
    text = (element.text or "").strip() or None
    if text is not None and children:
        raise XMLFormatError(
            f"element {element.tag!r} has both text and children (no mixed content)"
        )
    try:
        node = Node(element.tag, value=text)
        for child in children:
            tail = (child.tail or "").strip()
            if tail:
                raise XMLFormatError(
                    f"element {element.tag!r} has mixed content (trailing text {tail!r})"
                )
            node.add_child(plain_from_element(child))
    except TreeError as exc:
        raise XMLFormatError(str(exc)) from exc
    return node
