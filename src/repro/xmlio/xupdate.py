"""XUpdate-style update transaction documents.

The paper's implementation expresses updates in XUpdate (slide 16).
This reproduction uses an XUpdate-flavoured dialect carrying the same
information — a selecting query, elementary insert/delete operations,
and the transaction confidence::

    <xu:modifications xmlns:xu="urn:repro:xupdate"
                      query="/A { B, C[$c] }" confidence="0.9">
      <xu:insert anchor="a"><D/></xu:insert>
      <xu:delete target="c"/>
    </xu:modifications>

* ``query`` holds the TPWJ text syntax (:mod:`repro.tpwj.parser`);
* ``anchor`` / ``target`` name query variables (without the ``$``);
* the body of ``xu:insert`` is the subtree to insert, in the plain
  data dialect.

A *batch* groups several transactions committed as one unit (the
warehouse applies them in document order with a single log append)::

    <xu:batch xmlns:xu="urn:repro:xupdate">
      <xu:modifications .../>
      <xu:modifications .../>
    </xu:batch>
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import QueryError, QueryParseError, UpdateError, XMLFormatError
from repro.tpwj.parser import format_pattern, parse_pattern
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import TransactionBatch, UpdateTransaction
from repro.xmlio.parse import plain_from_element
from repro.xmlio.serialize import plain_to_element

__all__ = [
    "XUPDATE_NAMESPACE",
    "transaction_to_string",
    "transaction_from_string",
    "batch_to_string",
    "batch_from_string",
    "updates_from_string",
]

XUPDATE_NAMESPACE = "urn:repro:xupdate"
_MODIFICATIONS = f"{{{XUPDATE_NAMESPACE}}}modifications"
_INSERT = f"{{{XUPDATE_NAMESPACE}}}insert"
_DELETE = f"{{{XUPDATE_NAMESPACE}}}delete"
_BATCH = f"{{{XUPDATE_NAMESPACE}}}batch"

ET.register_namespace("xu", XUPDATE_NAMESPACE)


def transaction_to_element(transaction: UpdateTransaction) -> ET.Element:
    """Serialize a transaction into an ``xu:modifications`` element."""
    element = ET.Element(
        _MODIFICATIONS,
        {
            "query": format_pattern(transaction.query),
            "confidence": repr(transaction.confidence),
        },
    )
    for op in transaction.operations:
        if isinstance(op, InsertOperation):
            insert = ET.SubElement(element, _INSERT, {"anchor": op.anchor})
            insert.append(plain_to_element(op.subtree))
        else:
            ET.SubElement(element, _DELETE, {"target": op.target})
    return element


def transaction_to_string(transaction: UpdateTransaction, indent: bool = True) -> str:
    element = transaction_to_element(transaction)
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def transaction_from_string(text: str) -> UpdateTransaction:
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLFormatError(f"not well-formed XML: {exc}") from exc
    return transaction_from_element(element)


def transaction_from_element(element: ET.Element) -> UpdateTransaction:
    if element.tag != _MODIFICATIONS:
        raise XMLFormatError(
            f"expected root element xu:modifications, got {element.tag!r}"
        )
    query_text = element.get("query")
    if query_text is None:
        raise XMLFormatError("xu:modifications requires a query attribute")
    try:
        query = parse_pattern(query_text)
    except QueryParseError as exc:
        raise XMLFormatError(f"invalid query {query_text!r}: {exc}") from exc

    confidence_text = element.get("confidence", "1.0")
    try:
        confidence = float(confidence_text)
    except ValueError:
        raise XMLFormatError(f"invalid confidence {confidence_text!r}") from None

    operations: list = []
    for child in element:
        if child.tag == _INSERT:
            anchor = child.get("anchor")
            if anchor is None:
                raise XMLFormatError("xu:insert requires an anchor attribute")
            bodies = list(child)
            if len(bodies) != 1:
                raise XMLFormatError("xu:insert must contain exactly one subtree")
            operations.append(InsertOperation(anchor, plain_from_element(bodies[0])))
        elif child.tag == _DELETE:
            target = child.get("target")
            if target is None:
                raise XMLFormatError("xu:delete requires a target attribute")
            operations.append(DeleteOperation(target))
        else:
            raise XMLFormatError(f"unexpected element in xu:modifications: {child.tag!r}")

    try:
        return UpdateTransaction(query, operations, confidence)
    except (UpdateError, QueryError) as exc:
        raise XMLFormatError(f"invalid transaction: {exc}") from exc


def batch_to_element(batch: TransactionBatch) -> ET.Element:
    """Serialize a transaction batch into an ``xu:batch`` element."""
    element = ET.Element(_BATCH)
    for transaction in batch:
        element.append(transaction_to_element(transaction))
    return element


def batch_to_string(batch: TransactionBatch, indent: bool = True) -> str:
    element = batch_to_element(batch)
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def batch_from_string(text: str) -> TransactionBatch:
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLFormatError(f"not well-formed XML: {exc}") from exc
    return batch_from_element(element)


def batch_from_element(element: ET.Element) -> TransactionBatch:
    if element.tag != _BATCH:
        raise XMLFormatError(f"expected root element xu:batch, got {element.tag!r}")
    transactions = [transaction_from_element(child) for child in element]
    try:
        return TransactionBatch(transactions)
    except UpdateError as exc:
        raise XMLFormatError(f"invalid batch: {exc}") from exc


def updates_from_string(text: str) -> UpdateTransaction | TransactionBatch:
    """Parse either a single ``xu:modifications`` or an ``xu:batch`` document."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLFormatError(f"not well-formed XML: {exc}") from exc
    if element.tag == _BATCH:
        return batch_from_element(element)
    return transaction_from_element(element)
