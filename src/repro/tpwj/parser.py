"""Text syntax for TPWJ queries.

The paper compiles TPWJ to XQuery; this reproduction gives TPWJ its own
small concrete syntax (round-tripping through :func:`format_pattern`)::

    /A { B[$x], C { //D[$x] } }

* a leading ``/`` anchors the pattern root at the document root; a
  leading ``//`` (or nothing) lets it map anywhere;
* ``{ ... }`` encloses sub-patterns, separated by commas;
* a ``//`` prefix on a sub-pattern makes its edge a descendant edge;
* a ``!`` prefix *negates* a sub-pattern (slide-19 extension): the
  parent's image must have no embedding of it — ``A { B, !C }`` is
  "an A with a B child and no C child";
* ``*`` is the wildcard label;
* ``[...]`` carries the value test and/or variable:
  ``[="foo"]`` (value test), ``[$x]`` (variable), ``[$x="foo"]`` (both).

The slide-6 example — "A with a B child and a C child, the C having a
D descendant whose value joins with B's value" — reads::

    /A { B[$v], C { //D[$v] } }
"""

from __future__ import annotations

from repro.errors import QueryParseError
from repro.tpwj.pattern import Pattern, PatternNode

__all__ = ["parse_pattern", "format_pattern"]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_BODY = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character scanner with position tracking for error messages."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise QueryParseError(f"expected {token!r}", self.pos)
        self.pos += len(token)

    def try_consume(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def name(self) -> str:
        start = self.pos
        if self.peek() not in _NAME_START:
            raise QueryParseError("expected a name", self.pos)
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_BODY:
            self.pos += 1
        return self.text[start : self.pos]

    def string(self) -> str:
        self.expect('"')
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise QueryParseError("unterminated string", self.pos)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(chars)
            if ch == "\\":
                if self.pos >= len(self.text):
                    raise QueryParseError("dangling escape", self.pos)
                escaped = self.text[self.pos]
                self.pos += 1
                if escaped not in '"\\':
                    raise QueryParseError(f"unknown escape \\{escaped}", self.pos - 1)
                chars.append(escaped)
            else:
                chars.append(ch)


def parse_pattern(text: str) -> Pattern:
    """Parse the TPWJ text syntax into a :class:`Pattern`."""
    scanner = _Scanner(text)
    scanner.skip_ws()
    anchored = False
    if scanner.startswith("//"):
        scanner.expect("//")
    elif scanner.try_consume("/"):
        anchored = True
    root = _parse_node(scanner, descendant=False)
    scanner.skip_ws()
    if scanner.pos != len(scanner.text):
        raise QueryParseError("trailing input after pattern", scanner.pos)
    return Pattern(root, anchored=anchored)


def _parse_node(scanner: _Scanner, descendant: bool) -> PatternNode:
    scanner.skip_ws()
    if scanner.try_consume("*"):
        label: str | None = None
    else:
        label = scanner.name()
    value: str | None = None
    variable: str | None = None
    scanner.skip_ws()
    if scanner.try_consume("["):
        scanner.skip_ws()
        if scanner.try_consume("$"):
            variable = scanner.name()
            scanner.skip_ws()
            if scanner.try_consume("="):
                scanner.skip_ws()
                value = scanner.string()
        elif scanner.try_consume("="):
            scanner.skip_ws()
            value = scanner.string()
        else:
            raise QueryParseError("expected '$var' or '=\"value\"' inside [...]", scanner.pos)
        scanner.skip_ws()
        scanner.expect("]")
    node = PatternNode(label, value=value, variable=variable, descendant=descendant)
    scanner.skip_ws()
    if scanner.try_consume("{"):
        while True:
            scanner.skip_ws()
            child_negated = scanner.try_consume("!")
            scanner.skip_ws()
            child_descendant = scanner.try_consume("//")
            child = _parse_node(scanner, descendant=child_descendant)
            child.negated = child_negated
            node.add_child(child)
            scanner.skip_ws()
            if scanner.try_consume(","):
                continue
            scanner.expect("}")
            break
    return node


def format_pattern(pattern: Pattern) -> str:
    """Render a pattern back into the text syntax (parse/format round-trips)."""
    prefix = "/" if pattern.anchored else ""
    return prefix + _format_node(pattern.root, top=True)


def _format_node(node: PatternNode, top: bool = False) -> str:
    parts: list[str] = []
    if not top and node.negated:
        parts.append("!")
    if not top and node.descendant:
        parts.append("//")
    parts.append(node.label if node.label is not None else "*")
    if node.variable is not None or node.value is not None:
        inner = ""
        if node.variable is not None:
            inner += f"${node.variable}"
        if node.value is not None:
            escaped = node.value.replace("\\", "\\\\").replace('"', '\\"')
            inner += f'="{escaped}"'
        parts.append(f"[{inner}]")
    if node.children:
        body = ", ".join(_format_node(child) for child in node.children)
        parts.append(f" {{ {body} }}")
    return "".join(parts)
