"""Tree-Pattern-With-Join queries — substrate S4 (paper, slide 6).

* :class:`Pattern` / :class:`PatternNode` — the query AST;
* :func:`parse_pattern` / :func:`format_pattern` — text syntax;
* :func:`find_matches` with :class:`MatchConfig` — the matcher;
* :func:`answer_tree` / :func:`distinct_answers` — minimal-subtree
  answers.
"""

from repro.tpwj.match import (
    DEFAULT_CONFIG,
    Match,
    MatchConfig,
    find_embeddings,
    find_matches,
)
from repro.tpwj.parser import format_pattern, parse_pattern
from repro.tpwj.pattern import Pattern, PatternNode
from repro.tpwj.result import answer_tree, distinct_answers
from repro.tpwj.xpath import (
    root_images_via_elementtree,
    to_elementtree_xpath,
    to_xpath,
)

__all__ = [
    "Pattern",
    "PatternNode",
    "parse_pattern",
    "format_pattern",
    "find_matches",
    "find_embeddings",
    "Match",
    "MatchConfig",
    "DEFAULT_CONFIG",
    "answer_tree",
    "distinct_answers",
    "to_xpath",
    "to_elementtree_xpath",
    "root_images_via_elementtree",
]
