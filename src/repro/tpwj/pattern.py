"""Tree-Pattern-With-Join (TPWJ) queries — the paper's query class.

Slide 6: queries are tree patterns (a standard subset of XQuery) with

* child and descendant edges,
* label tests (or wildcard),
* value tests on leaves,
* value *joins*: distinct pattern nodes constrained to map to data
  nodes carrying the same text value,

and the answer to a match is the minimal subtree of the document
containing all the nodes mapped by the query.

A :class:`PatternNode` may carry a *variable* (``$x``).  A variable
serves two purposes:

* **join**: when the same variable appears on several pattern nodes,
  their images must carry equal (non-null) text values — the "join by
  value" of slide 6;
* **binding**: update operations (:mod:`repro.updates`) refer to the
  pattern node they anchor at through its variable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import QueryError

__all__ = ["PatternNode", "Pattern"]


class PatternNode:
    """One node of a TPWJ pattern.

    Parameters
    ----------
    label:
        Required element label, or None for the wildcard ``*``.
    value:
        Exact value test (the image must be a leaf with this value).
    variable:
        Optional variable name (without the ``$``).
    descendant:
        True when the edge from this node's *parent* is a descendant
        edge (``//``), False for a child edge.  Ignored on the root,
        where anchoring is controlled by :attr:`Pattern.anchored`.
    negated:
        True marks a *negated* subpattern (the paper's slide-19
        "negation" extension): the parent's image must have **no**
        embedding of this subtree under the declared axis.  Negated
        subpatterns contribute no mapped nodes and may not carry
        variables or nested negation.
    children:
        Sub-patterns.
    """

    __slots__ = (
        "label",
        "value",
        "variable",
        "descendant",
        "negated",
        "_children",
        "_parent",
    )

    def __init__(
        self,
        label: str | None,
        value: str | None = None,
        variable: str | None = None,
        descendant: bool = False,
        negated: bool = False,
        children: Iterable["PatternNode"] = (),
    ) -> None:
        if label is not None and (not isinstance(label, str) or not label):
            raise QueryError(f"pattern label must be a non-empty string or None, got {label!r}")
        if value is not None and not isinstance(value, str):
            raise QueryError(f"pattern value must be a string or None, got {value!r}")
        if variable is not None and (not isinstance(variable, str) or not variable):
            raise QueryError(f"pattern variable must be a non-empty string, got {variable!r}")
        self.label = label
        self.value = value
        self.variable = variable
        self.descendant = bool(descendant)
        self.negated = bool(negated)
        self._children: list[PatternNode] = []
        self._parent: PatternNode | None = None
        for child in children:
            self.add_child(child)
        if self.value is not None and self._children:
            raise QueryError("a pattern node with a value test cannot have children")

    @property
    def children(self) -> tuple["PatternNode", ...]:
        return tuple(self._children)

    @property
    def parent(self) -> "PatternNode | None":
        return self._parent

    def add_child(self, child: "PatternNode") -> "PatternNode":
        if not isinstance(child, PatternNode):
            raise QueryError(f"pattern child must be a PatternNode, got {type(child).__name__}")
        if child._parent is not None:
            raise QueryError("pattern node already has a parent")
        if self.value is not None:
            raise QueryError("a pattern node with a value test cannot have children")
        self._children.append(child)
        child._parent = self
        return child

    def iter(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def __repr__(self) -> str:
        label = self.label if self.label is not None else "*"
        bits = [label]
        if self.variable:
            bits.append(f"${self.variable}")
        if self.value is not None:
            bits.append(f"={self.value!r}")
        return f"PatternNode({' '.join(bits)}, {len(self._children)} children)"


class Pattern:
    """A complete TPWJ query: a pattern tree plus anchoring mode.

    Parameters
    ----------
    root:
        Root pattern node.
    anchored:
        When True the root pattern node must map to the document root
        (text syntax prefix ``/``); otherwise it may map to any node
        (prefix ``//`` or none).
    """

    __slots__ = ("root", "anchored")

    def __init__(self, root: PatternNode, anchored: bool = False) -> None:
        if not isinstance(root, PatternNode):
            raise QueryError(f"pattern root must be a PatternNode, got {type(root).__name__}")
        if root.parent is not None:
            raise QueryError("pattern root must not have a parent")
        self.root = root
        self.anchored = bool(anchored)
        self._validate()

    def _validate(self) -> None:
        if self.root.negated:
            raise QueryError("the pattern root cannot be negated")
        # Negation rules: negated subpatterns bind nothing, so variables
        # (and nested negation) inside them are meaningless.
        for node in self.root.iter():
            if not node.negated:
                continue
            for inner in node.iter():
                if inner.variable is not None:
                    raise QueryError(
                        f"variable ${inner.variable} appears inside a negated "
                        "subpattern; negated subpatterns bind nothing"
                    )
                if inner is not node and inner.negated:
                    raise QueryError("nested negation is not supported")
        seen_vars: dict[str, list[PatternNode]] = {}
        for node in self.positive_nodes():
            if node.variable is not None:
                seen_vars.setdefault(node.variable, []).append(node)
        # A variable used by several nodes is a value join; each joined
        # node must be able to carry a value, i.e. must be a pattern leaf
        # (its image must be a data leaf).
        for variable, nodes in seen_vars.items():
            if len(nodes) > 1:
                for node in nodes:
                    if node.children:
                        raise QueryError(
                            f"join variable ${variable} appears on a non-leaf pattern "
                            "node; joined nodes must map to valued leaves"
                        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nodes(self) -> list[PatternNode]:
        return list(self.root.iter())

    def positive_nodes(self) -> list[PatternNode]:
        """Pattern nodes outside any negated subpattern (the mapped ones)."""
        result: list[PatternNode] = []

        def visit(node: PatternNode) -> None:
            if node.negated:
                return
            result.append(node)
            for child in node.children:
                visit(child)

        visit(self.root)
        return result

    def negated_constraints(self) -> list[PatternNode]:
        """The roots of the negated subpatterns, in pre-order."""
        return [node for node in self.root.iter() if node.negated]

    def has_negation(self) -> bool:
        return any(node.negated for node in self.root.iter())

    def size(self) -> int:
        return sum(1 for _ in self.root.iter())

    def variables(self) -> dict[str, list[PatternNode]]:
        """Map variable name -> pattern nodes carrying it."""
        result: dict[str, list[PatternNode]] = {}
        for node in self.positive_nodes():
            if node.variable is not None:
                result.setdefault(node.variable, []).append(node)
        return result

    def join_variables(self) -> dict[str, list[PatternNode]]:
        """Variables appearing on at least two nodes (true joins)."""
        return {var: nodes for var, nodes in self.variables().items() if len(nodes) > 1}

    def node_for_variable(self, variable: str) -> PatternNode:
        """The unique pattern node carrying *variable* (for update anchors)."""
        nodes = self.variables().get(variable, [])
        if not nodes:
            raise QueryError(f"no pattern node carries variable ${variable}")
        if len(nodes) > 1:
            raise QueryError(
                f"variable ${variable} is a join variable (appears {len(nodes)} times); "
                "update operations need a uniquely-bound variable"
            )
        return nodes[0]

    def __str__(self) -> str:
        from repro.tpwj.parser import format_pattern

        return format_pattern(self)

    def __repr__(self) -> str:
        return f"Pattern({str(self)!r})"
