"""Compilation of TPWJ patterns to XPath.

The paper's implementation evaluated queries by *compiling* them to
XQuery for an off-the-shelf engine (Qizx/open, slide 16).  This module
mirrors that architecture against XPath:

* :func:`to_xpath` — full XPath 1.0 output: nested predicates,
  descendant axes, value tests, and ``not(...)`` for the negation
  extension.  Join variables are the one TPWJ feature with no direct
  single-expression XPath 1.0 equivalent here and are rejected.

* :func:`to_elementtree_xpath` — the restricted dialect accepted by
  :mod:`xml.etree.ElementTree` (child-only predicates, no nesting, no
  negation).  It exists so the test suite can cross-validate the native
  matcher against an *independent* engine:
  :func:`root_images_via_elementtree` runs the compiled expression on a
  serialized copy of the document and returns how many pattern-root
  images it selects, which must agree with
  :func:`repro.tpwj.match.find_matches`.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import QueryError
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees.node import Node
from repro.xmlio.serialize import plain_to_element

__all__ = ["to_xpath", "to_elementtree_xpath", "root_images_via_elementtree"]


def _xpath_literal(value: str) -> str:
    """Quote a string for XPath 1.0 (which has no escape mechanism)."""
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    # Both quote kinds present: concat() of single-quoted chunks.
    parts = value.split("'")
    pieces: list[str] = []
    for index, part in enumerate(parts):
        if index:
            pieces.append('"\'"')
        if part:
            pieces.append(f"'{part}'")
    return f"concat({', '.join(pieces)})"


def to_xpath(pattern: Pattern) -> str:
    """Compile a TPWJ pattern (without joins) to an XPath 1.0 expression.

    The expression selects the images of the *pattern root*; sub-pattern
    structure becomes nested predicates.  Negated subpatterns compile to
    ``not(...)``.
    """
    if pattern.join_variables():
        raise QueryError(
            "join variables have no single-expression XPath 1.0 equivalent"
        )
    axis = "/" if pattern.anchored else "//"
    return axis + _node_expression(pattern.root)


def _node_expression(node: PatternNode) -> str:
    name = node.label if node.label is not None else "*"
    predicates: list[str] = []
    if node.value is not None:
        predicates.append(f". = {_xpath_literal(node.value)}")
    for child in node.children:
        step = _child_step(child)
        if child.negated:
            predicates.append(f"not({step})")
        else:
            predicates.append(step)
    return name + "".join(f"[{p}]" for p in predicates)


def _child_step(node: PatternNode) -> str:
    prefix = ".//" if node.descendant else ""
    return prefix + _node_expression(node)


def to_elementtree_xpath(pattern: Pattern) -> str:
    """Compile to the XPath subset :mod:`xml.etree.ElementTree` accepts.

    Restrictions (violations raise :class:`~repro.errors.QueryError`):
    no joins, no negation, no descendant edges below the root, no
    grandchildren (ElementTree predicates cannot nest), and value tests
    only on the root or its direct children.
    """
    if pattern.join_variables():
        raise QueryError("joins are not expressible in ElementTree's XPath subset")
    root = pattern.root
    if pattern.has_negation():
        raise QueryError("negation is not expressible in ElementTree's XPath subset")

    predicates: list[str] = []
    if root.value is not None:
        predicates.append(f".='{_et_literal(root.value)}'")
    for child in root.children:
        if child.descendant:
            raise QueryError(
                "descendant edges are not expressible in ElementTree predicates"
            )
        if child.children:
            raise QueryError("ElementTree predicates cannot nest")
        if child.label is None:
            raise QueryError("wildcard children are not expressible in predicates")
        if child.value is not None:
            predicates.append(f"{child.label}='{_et_literal(child.value)}'")
        else:
            predicates.append(child.label)

    name = root.label if root.label is not None else "*"
    axis = "./" if pattern.anchored else ".//"
    return axis + name + "".join(f"[{p}]" for p in predicates)


def _et_literal(value: str) -> str:
    if "'" in value:
        raise QueryError(
            "ElementTree XPath literals cannot contain single quotes"
        )
    return value


def root_images_via_elementtree(pattern: Pattern, root: Node) -> int:
    """Count the pattern-root images by running the compiled expression
    through ElementTree on a serialized copy of the document.

    Used as an independent cross-check of the native matcher: the
    number of distinct data nodes that ``find_matches`` assigns to the
    pattern root must equal this count (for patterns within the
    ElementTree subset).
    """
    expression = to_elementtree_xpath(pattern)
    wrapper = ET.Element("wrapper")
    wrapper.append(plain_to_element(root))
    return len(wrapper.findall(expression))
