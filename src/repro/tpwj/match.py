"""TPWJ matching: find all embeddings of a pattern in a data tree.

A *match* is a homomorphism from pattern nodes to data nodes that

* respects labels (wildcard ``*`` matches any label),
* respects value tests,
* respects edges (child edges map to parent/child pairs, descendant
  edges to proper ancestor/descendant pairs),
* satisfies the value joins (all nodes sharing a join variable map to
  leaves carrying equal values).

The matcher enumerates homomorphisms by backtracking over per-pattern-
node candidate lists.  Three optimizations — each individually
toggleable through :class:`MatchConfig` for the E9 ablation — keep the
enumeration tractable:

1. **label-index candidate pre-filtering**: candidates are drawn from a
   label -> nodes index instead of scanning the document per pattern
   node;
2. **bottom-up semi-join pruning**: a candidate survives only if each
   pattern child has at least one surviving candidate in the right
   axis relation, computed leaf-up before enumeration;
3. **early join checking**: join-variable bindings are checked as they
   are assigned instead of after a full mapping is built.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.instrumentation import counters
from repro.errors import QueryError
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees.node import Node

__all__ = ["MatchConfig", "Match", "find_matches", "find_embeddings"]


def find_embeddings(
    pattern_node: PatternNode, anchor: Node
) -> list[dict[PatternNode, Node]]:
    """All embeddings of the subtree at *pattern_node* below *anchor*.

    *pattern_node* maps under *anchor* through its declared axis (child
    or descendant edge); its subtree embeds homomorphically below that.
    Used for negated subpatterns: the plain-tree matcher needs "does an
    embedding exist?", the fuzzy evaluator needs every embedding's image
    to build the violation conditions.  Negated subpatterns are small,
    so this is a direct recursive search without index structures.
    """

    def local_ok(p: PatternNode, d: Node) -> bool:
        if p.label is not None and p.label != d.label:
            return False
        if p.value is not None and d.value != p.value:
            return False
        if p.children and d.is_leaf:
            return False
        return True

    def axis_candidates(p: PatternNode, base: Node) -> list[Node]:
        if p.descendant:
            return [n for n in base.iter() if n is not base]
        return list(base.children)

    def embed(p: PatternNode, d: Node) -> list[dict[PatternNode, Node]]:
        mappings: list[dict[PatternNode, Node]] = [{p: d}]
        for pattern_child in p.children:
            extensions: list[dict[PatternNode, Node]] = []
            for candidate in axis_candidates(pattern_child, d):
                if local_ok(pattern_child, candidate):
                    extensions.extend(embed(pattern_child, candidate))
            if not extensions:
                return []
            mappings = [
                {**mapping, **extension}
                for mapping in mappings
                for extension in extensions
            ]
        return mappings

    results: list[dict[PatternNode, Node]] = []
    for candidate in axis_candidates(pattern_node, anchor):
        if local_ok(pattern_node, candidate):
            results.extend(embed(pattern_node, candidate))
    return results


@dataclass(frozen=True, slots=True)
class MatchConfig:
    """Matcher optimization toggles (all on by default).

    ``honor_negation`` controls whether negated subpatterns are checked
    structurally (the plain-tree semantics).  The fuzzy evaluator turns
    it off and accounts for negated subpatterns through event
    conditions instead (their presence is world-dependent).
    """

    use_label_index: bool = True
    use_semijoin_pruning: bool = True
    early_join_check: bool = True
    max_matches: int | None = None
    honor_negation: bool = True


#: Default configuration shared by all callers that do not customise.
DEFAULT_CONFIG = MatchConfig()


class Match:
    """One embedding of a pattern into a data tree."""

    __slots__ = ("pattern", "_mapping")

    def __init__(self, pattern: Pattern, mapping: dict[PatternNode, Node]) -> None:
        self.pattern = pattern
        self._mapping = mapping

    @property
    def mapping(self) -> dict[PatternNode, Node]:
        return dict(self._mapping)

    def __getitem__(self, pattern_node: PatternNode) -> Node:
        return self._mapping[pattern_node]

    def nodes(self) -> list[Node]:
        """The image data nodes (with duplicates removed, identity-based)."""
        seen: set[int] = set()
        result: list[Node] = []
        for node in self._mapping.values():
            if id(node) not in seen:
                seen.add(id(node))
                result.append(node)
        return result

    def iter_images(self):
        """The image data nodes, raw (possibly with duplicates).

        The zero-copy counterpart of :meth:`nodes` for consumers whose
        aggregation is idempotent anyway (the probability pipeline's
        closed-condition unions).
        """
        return self._mapping.values()

    def node_for(self, variable: str) -> Node:
        """The data node mapped by the pattern node carrying *variable*."""
        return self._mapping[self.pattern.node_for_variable(variable)]

    def binding(self, variable: str) -> str | None:
        """The value bound by *variable* (None when the node has no value)."""
        nodes = self.pattern.variables().get(variable)
        if not nodes:
            raise QueryError(f"no pattern node carries variable ${variable}")
        return self._mapping[nodes[0]].value

    def bindings(self) -> dict[str, str | None]:
        return {var: self.binding(var) for var in self.pattern.variables()}

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{p.label or '*'}->{d.label}" for p, d in self._mapping.items()
        )
        return f"Match({pairs})"


def find_matches(
    pattern: Pattern,
    root: Node,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    plan=None,
) -> list[Match]:
    """All matches of *pattern* in the tree rooted at *root*.

    With the default ``plan=None`` the fixed-strategy matcher runs with
    the toggles in *config* and the result order is deterministic
    (pre-order of candidate data nodes, pattern children in declaration
    order).  ``plan="auto"`` delegates to the cost-based engine
    (:mod:`repro.engine`): statistics are collected, a plan is built
    and executed; *config* then only supplies the runtime semantics
    (``max_matches``, ``honor_negation``) while the engine chooses the
    strategy.  Passing a prebuilt :class:`~repro.engine.planner.Plan`
    executes it directly (the warehouse does this through its plan
    cache); match order then follows the plan's visit order.
    """
    if plan is not None:
        # Imported here: the engine builds on this module.
        from repro.engine.executor import execute_plan, rekey_matches
        from repro.engine.planner import Plan, build_plan, pattern_fingerprint
        from repro.engine.stats import collect_stats

        if plan == "auto":
            plan = build_plan(pattern, collect_stats(root))
        elif not isinstance(plan, Plan):
            raise QueryError(
                f"plan must be None, 'auto' or a Plan, got {plan!r}"
            )
        if plan.pattern is not pattern and plan.fingerprint != pattern_fingerprint(
            pattern
        ):
            raise QueryError(
                f"plan was built for {plan.fingerprint!r}, not for {pattern!s}"
            )
        matches = execute_plan(plan, root, config)
        return rekey_matches(plan, pattern, matches)
    matcher = _Matcher(pattern, root, config)
    return matcher.run()


class _Matcher:
    # NOTE: the engine's physical operators (repro.engine.executor)
    # implement the same matching semantics as separate operators.  Any
    # change to the local test, the join rules or the negation check
    # here must be mirrored there; tests/test_engine_equivalence.py
    # guards the two against drifting apart.
    def __init__(self, pattern: Pattern, root: Node, config: MatchConfig) -> None:
        self.pattern = pattern
        self.root = root
        self.config = config
        self.join_groups = pattern.join_variables()
        # Pre-order interval numbering for O(1) ancestor/descendant
        # tests, plus the node list / label index for the candidate
        # scan — all gathered in one walk of the document (the walk is
        # the dominant cost of matching on small patterns, so it is
        # paid once, not per concern).
        self.enter: dict[int, int] = {}
        self.exit: dict[int, int] = {}
        self.all_nodes: list[Node] = []
        self.label_index: dict[str, list[Node]] = {}
        # An anchored single-node pattern can only map to the document
        # root: matching is a constant-time root probe, so the walk is
        # skipped entirely (the shape of root-targeted updates).
        self._root_probe = pattern.anchored and len(pattern.nodes()) == 1
        if not self._root_probe:
            self._walk_document()
        self.candidates: dict[PatternNode, list[Node]] = {}

    def _walk_document(self) -> None:
        enter = self.enter
        exit_ = self.exit
        all_nodes = self.all_nodes
        index = self.label_index
        build_index = self.config.use_label_index
        clock = 0
        stack: list[tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, closing = stack.pop()
            if closing:
                exit_[id(node)] = clock
                continue
            enter[id(node)] = clock
            clock += 1
            all_nodes.append(node)
            if build_index:
                bucket = index.get(node.label)
                if bucket is None:
                    index[node.label] = [node]
                else:
                    bucket.append(node)
            stack.append((node, True))
            children = node.children
            for child in reversed(children):
                stack.append((child, False))

    def _is_descendant(self, node: Node, ancestor: Node) -> bool:
        return (
            self.enter[id(ancestor)] < self.enter[id(node)]
            and self.enter[id(node)] < self.exit[id(ancestor)]
        )

    # ------------------------------------------------------------------
    # Candidate computation
    # ------------------------------------------------------------------

    def _local_ok(self, pattern_node: PatternNode, data_node: Node) -> bool:
        if pattern_node.label is not None and pattern_node.label != data_node.label:
            return False
        if pattern_node.value is not None and data_node.value != pattern_node.value:
            return False
        # Positive children require an internal image; negated children
        # do not (a leaf trivially has no embedding of the subpattern).
        if data_node.is_leaf and any(not c.negated for c in pattern_node.children):
            return False
        # A join variable can only bind a valued leaf.
        variable = pattern_node.variable
        if variable is not None and variable in self.join_groups:
            if data_node.value is None:
                return False
        return True

    def _compute_candidates(self) -> bool:
        """Fill per-pattern-node candidate lists; False when one is empty."""
        if self._root_probe:
            pattern_root = self.pattern.root
            if not self._local_ok(pattern_root, self.root):
                return False
            counters.incr("match.candidates")
            self.candidates[pattern_root] = [self.root]
            return True
        all_nodes = self.all_nodes
        index = self.label_index

        for pattern_node in self.pattern.positive_nodes():
            if self.config.use_label_index and pattern_node.label is not None:
                base = index.get(pattern_node.label, [])
            else:
                base = all_nodes
            kept = [node for node in base if self._local_ok(pattern_node, node)]
            counters.incr("match.candidates", len(kept))
            if not kept:
                return False
            self.candidates[pattern_node] = kept

        if self.pattern.anchored:
            anchored = [n for n in self.candidates[self.pattern.root] if n is self.root]
            if not anchored:
                return False
            self.candidates[self.pattern.root] = anchored
        return True

    def _semijoin_prune(self) -> bool:
        """Bottom-up structural pruning; False when a list empties."""
        order = self.pattern.positive_nodes()
        order.reverse()  # children before parents
        for pattern_node in order:
            required = [c for c in pattern_node.children if not c.negated]
            if not required:
                continue
            survivors: list[Node] = []
            for data_node in self.candidates[pattern_node]:
                if all(
                    self._has_axis_candidate(child, data_node)
                    for child in required
                ):
                    survivors.append(data_node)
            counters.incr(
                "match.semijoin_pruned",
                len(self.candidates[pattern_node]) - len(survivors),
            )
            if not survivors:
                return False
            self.candidates[pattern_node] = survivors
        return True

    def _has_axis_candidate(self, pattern_child: PatternNode, data_node: Node) -> bool:
        child_candidates = self.candidates[pattern_child]
        if pattern_child.descendant:
            return any(self._is_descendant(c, data_node) for c in child_candidates)
        return any(c.parent is data_node for c in child_candidates)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def run(self) -> list[Match]:
        if not self._compute_candidates():
            return []
        if self.config.use_semijoin_pruning and not self._semijoin_prune():
            return []

        matches: list[Match] = []
        mapping: dict[PatternNode, Node] = {}
        bindings: dict[str, str] = {}
        # One flag read per query, not one per partial assignment.
        track = counters.enabled

        def assign(pending: list[PatternNode]) -> bool:
            """Backtracking over pattern nodes; True to stop (limit hit)."""
            if not pending:
                if not self.config.early_join_check and not self._joins_ok(mapping):
                    return False
                matches.append(Match(self.pattern, dict(mapping)))
                if track:
                    counters.incr("match.found")
                return (
                    self.config.max_matches is not None
                    and len(matches) >= self.config.max_matches
                )
            pattern_node = pending[0]
            rest = pending[1:]
            for data_node in self._options(pattern_node, mapping):
                if track:
                    counters.incr("match.assignments")
                if self.config.honor_negation and any(
                    child.negated and find_embeddings(child, data_node)
                    for child in pattern_node.children
                ):
                    if track:
                        counters.incr("match.negation_pruned")
                    continue
                variable = pattern_node.variable
                joined = (
                    self.config.early_join_check
                    and variable is not None
                    and variable in self.join_groups
                )
                if joined:
                    value = data_node.value
                    bound = bindings.get(variable)
                    if bound is not None and bound != value:
                        continue
                    fresh_binding = bound is None
                    if fresh_binding:
                        bindings[variable] = value  # value is non-None (candidate filter)
                mapping[pattern_node] = data_node
                stop = assign(rest)
                del mapping[pattern_node]
                if joined and fresh_binding:
                    del bindings[variable]
                if stop:
                    return True
            return False

        # Process pattern nodes in pre-order so a node's parent is always
        # assigned before the node itself.  Negated subpatterns are not
        # part of the mapping; they are checked as parents get assigned.
        assign(self.pattern.positive_nodes())
        return matches

    def _options(
        self, pattern_node: PatternNode, mapping: dict[PatternNode, Node]
    ) -> list[Node]:
        candidates = self.candidates[pattern_node]
        parent = pattern_node.parent
        if parent is None:
            return candidates
        anchor = mapping[parent]
        if pattern_node.descendant:
            return [c for c in candidates if self._is_descendant(c, anchor)]
        return [c for c in candidates if c.parent is anchor]

    def _joins_ok(self, mapping: dict[PatternNode, Node]) -> bool:
        for nodes in self.join_groups.values():
            values = {mapping[p].value for p in nodes}
            if len(values) != 1 or None in values:
                return False
        return True
