"""Answer construction for TPWJ queries.

Slide 6: "Result: minimal subtree containing all the nodes mapped by
the query".  :func:`answer_tree` materialises that subtree for one
match; :func:`distinct_answers` collapses the matches of one document
into the *set* of answer trees (unordered-tree equality), which is the
per-world query result ``Q(t)`` used by the possible-worlds semantics.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.tpwj.match import Match
from repro.trees.algorithms import minimal_subtree
from repro.trees.node import Node

__all__ = ["answer_tree", "distinct_answers"]


def answer_tree(root: Node, match: Match) -> Node:
    """The minimal subtree of *root* containing the match's image nodes.

    The result is a fresh plain tree (conditions of fuzzy nodes, if any,
    are not copied: answers are ordinary data trees).
    """
    return minimal_subtree(root, match.nodes())


def distinct_answers(root: Node, matches: Iterable[Match]) -> dict[str, Node]:
    """Map canonical form -> answer tree over all matches (set semantics).

    Within a single document several matches may induce the same minimal
    subtree; ``Q(t)`` is a set, so duplicates collapse here.
    """
    answers: dict[str, Node] = {}
    for match in matches:
        answer = answer_tree(root, match)
        answers.setdefault(answer.canonical(), answer)
    return answers
