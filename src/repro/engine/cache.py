"""LRU plan cache keyed by (pattern fingerprint, statistics version).

Warehouse workloads repeat queries (the paper's consumers poll the
same patterns as the imprecise modules feed updates in), so plan
construction — stats lookups plus the greedy ordering — should be paid
once per (query, document-state) pair.  The statistics version is part
of the key: any committed update bumps it, so plans priced against
stale statistics age out naturally instead of being served wrong.

Mirrors the ``TreePatternCache`` idea from the treematcher exemplar in
SNIPPETS.md, specialised to plans and bounded by LRU eviction.

Thread safety: all operations are serialized by an internal lock (the
LRU reordering of :class:`~collections.OrderedDict` is not safe under
concurrent access), so the cache may be shared by the serving layer's
reader threads; cached :class:`Plan` objects are immutable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.analysis.instrumentation import counters
from repro.engine.planner import Plan

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded LRU map from (fingerprint, stats version) to :class:`Plan`."""

    __slots__ = ("_capacity", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[tuple[str, int], Plan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, fingerprint: str, stats_version: int) -> Plan | None:
        """The cached plan for the key, refreshing its LRU position."""
        key = (fingerprint, stats_version)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                counters.incr("engine.plan_cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        counters.incr("engine.plan_cache_hits")
        return plan

    def put(self, plan: Plan) -> None:
        """Insert *plan* under its own (fingerprint, stats version) key."""
        key = (plan.fingerprint, plan.stats_version)
        evictions = 0
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evictions += 1
        for _ in range(evictions):
            counters.incr("engine.plan_cache_evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self._entries)}/{self._capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
