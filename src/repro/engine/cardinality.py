"""Cardinality and selectivity estimation for TPWJ pattern nodes.

The estimates price the three decisions the planner makes:

* **candidate cardinality** — how many data nodes pass a pattern
  node's local test (label, value test, internal/valued requirements),
  straight off the label histogram and distinct-value counts;
* **axis selectivity** — given that a pattern node's parent is already
  bound, what fraction of the candidates survive the structural check
  (child edge: the parent's expected fan-out spread over the whole
  document; descendant edge: the expected descendant count);
* **join selectivity** — the chance a valued leaf agrees with an
  already-bound join value, assuming values uniform over the label's
  distinct values.

All estimates follow the classical uniformity/independence assumptions
of System-R style optimizers; they only need to *rank* alternatives,
not be exact, and the E9 benchmark checks the ranking is good enough.
"""

from __future__ import annotations

from repro.engine.stats import TreeStats
from repro.tpwj.pattern import Pattern, PatternNode

__all__ = [
    "estimate_candidates",
    "axis_selectivity",
    "join_selectivity",
    "estimate_enumeration_cost",
]


def estimate_candidates(
    pattern_node: PatternNode, stats: TreeStats, join_variables: set[str]
) -> float:
    """Expected number of data nodes passing *pattern_node*'s local test."""
    label = pattern_node.label
    base = float(stats.count_for_label(label))
    if base == 0.0:
        return 0.0

    if pattern_node.value is not None:
        # A value test keeps the valued nodes carrying one specific value:
        # valued / distinct values, under the uniform-values assumption.
        if label is None:
            valued = float(stats.valued_count)
            distinct = float(stats.distinct_values_total or 1)
        else:
            valued = float(stats.valued_counts.get(label, 0))
            distinct = float(stats.distinct_values.get(label, 0) or 1)
        return valued / distinct

    estimate = base
    if any(not child.negated for child in pattern_node.children):
        # Positive pattern children force an internal image.
        if label is None:
            internal = float(stats.node_count - stats.leaf_count)
            estimate *= internal / base if base else 0.0
        else:
            estimate *= stats.internal_counts.get(label, 0) / base
    elif pattern_node.variable in join_variables:
        # A join variable can only bind a valued leaf.
        if label is None:
            estimate *= stats.valued_count / base if base else 0.0
        else:
            estimate *= stats.valued_counts.get(label, 0) / base
    return estimate


def axis_selectivity(pattern_node: PatternNode, stats: TreeStats) -> float:
    """Fraction of candidates expected to satisfy the edge to a bound parent.

    Uniformity assumption: any specific data node is the parent
    (respectively an ancestor) of ``avg_fanout`` (respectively
    ``avg_descendants``) of the other nodes, so a random candidate sits
    under the bound parent with that count over the document size.
    """
    if pattern_node.parent is None:
        return 1.0
    if stats.node_count <= 1:
        return 1.0
    if pattern_node.descendant:
        related = stats.avg_descendants
    else:
        related = stats.avg_fanout
    return min(1.0, max(related, 1e-6) / stats.node_count)


def join_selectivity(pattern_node: PatternNode, stats: TreeStats) -> float:
    """Chance the node's value equals an already-bound join value."""
    label = pattern_node.label
    if label is None:
        distinct = stats.distinct_values_total
    else:
        distinct = stats.distinct_values.get(label, 0)
    return 1.0 / float(distinct) if distinct else 1.0


def estimate_enumeration_cost(
    pattern: Pattern,
    order: list[PatternNode],
    stats: TreeStats,
    anchored_root: bool,
) -> float:
    """Expected backtracking work for visiting pattern nodes in *order*.

    Standard left-deep cost model: the work at position *i* is the
    expected number of partial assignments alive after binding the
    first *i* nodes, and the total is the sum over positions.  Expected
    options per node = candidate cardinality x axis selectivity x (join
    selectivity when the node's variable is already bound earlier in
    the order).
    """
    join_vars = set(pattern.join_variables())
    bound_vars: set[str] = set()
    alive = 1.0
    total = 0.0
    for position, node in enumerate(order):
        options = estimate_candidates(node, stats, join_vars)
        if position == 0 and anchored_root:
            options = min(options, 1.0)
        options *= axis_selectivity(node, stats)
        variable = node.variable
        if variable in join_vars:
            if variable in bound_vars:
                options *= join_selectivity(node, stats)
            else:
                bound_vars.add(variable)
        alive *= options
        total += alive
        if alive == 0.0:
            break
    return total
