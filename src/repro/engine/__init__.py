"""Cost-based query engine for TPWJ evaluation.

The fixed-strategy matcher (:mod:`repro.tpwj.match`) evaluates every
query the same way, with hand-set ablation toggles.  This subsystem
chooses the strategy *per query* from data statistics, the way a
database optimizer does:

* :mod:`repro.engine.stats` — one-pass document statistics with
  versioned invalidation;
* :mod:`repro.engine.cardinality` — selectivity and cardinality
  estimates for pattern nodes, axes and value joins;
* :mod:`repro.engine.planner` — cost-based choice of visit order and
  physical operators, producing an explainable :class:`Plan`;
* :mod:`repro.engine.executor` — the physical operators that run a
  plan and return ordinary :class:`~repro.tpwj.match.Match` objects;
* :mod:`repro.engine.cache` — an LRU plan cache keyed by
  (pattern fingerprint, statistics version).

:class:`QueryEngine` ties them together for a long-lived document (the
warehouse holds one per open handle); the one-shot path is
``find_matches(pattern, root, plan="auto")``.

Thread safety (the serving layer's contract)
--------------------------------------------
A :class:`QueryEngine` may be shared by many reader threads and one
writer thread (the single-writer / multi-reader shape of the
warehouse).  Every mutable structure is protected:

* planning, statistics maintenance and walk/index construction happen
  under the engine's internal re-entrant lock;
* the :class:`~repro.engine.cache.PlanCache` and the
  :class:`~repro.events.dnf.ShannonCache` carry their own internal
  locks (they are hit from outside the engine lock);
* the document walk (interval numbering + label index) and the
  ancestor-condition index are **per-root views**: immutable once
  built for a pinned (frozen) generation, so match enumeration and
  condition lookups run lock-free after the initial, locked
  construction.  Only the *live* root's view is ever patched (by
  commit deltas, under the lock).

Pinned generations are frozen by the warehouse's copy-on-write
contract, so their views can never go stale; the warehouse calls
:meth:`QueryEngine.forget_root` when the last pin on a generation is
released, and a small LRU bound caps the registry for other callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from time import perf_counter

from repro.core.fuzzy_tree import FuzzyNode
from repro.engine.cache import PlanCache
from repro.engine.cardinality import (
    axis_selectivity,
    estimate_candidates,
    estimate_enumeration_cost,
    join_selectivity,
)
from repro.engine.conditions import AncestorConditionIndex
from repro.engine.executor import (
    _Intervals,
    ProbabilityBound,
    execute_plan,
    iter_plan,
    iter_rekeyed,
    rekey_matches,
)
from repro.engine.planner import Plan, PlanStep, build_plan, pattern_fingerprint
from repro.engine.stats import DocumentStats, StatsDelta, TreeStats, collect_stats
from repro.events.dnf import ShannonCache
from repro.tpwj.match import DEFAULT_CONFIG, Match, MatchConfig
from repro.tpwj.pattern import Pattern
from repro.trees.node import Node

__all__ = [
    "QueryEngine",
    "AncestorConditionIndex",
    "ProbabilityBound",
    "Plan",
    "PlanStep",
    "PlanCache",
    "ShannonCache",
    "TreeStats",
    "StatsDelta",
    "DocumentStats",
    "collect_stats",
    "build_plan",
    "execute_plan",
    "iter_plan",
    "iter_rekeyed",
    "rekey_matches",
    "pattern_fingerprint",
    "estimate_candidates",
    "estimate_enumeration_cost",
    "axis_selectivity",
    "join_selectivity",
]


class _RootView:
    """Executor state bound to one root object (one document generation).

    Holds a strong reference to the root: the registry key is
    ``id(root)``, and the reference guarantees the id can never be
    recycled by an unrelated object while the view is registered (a
    recycled id served a stale walk or — worse — a stale closed
    condition).
    """

    __slots__ = ("root", "version", "intervals", "conditions")

    def __init__(self, root: Node) -> None:
        self.root = root
        #: Statistics version the walk was built at — only meaningful
        #: for the *live* root (frozen roots never change again).
        self.version: int | None = None
        self.intervals: _Intervals | None = None
        self.conditions: AncestorConditionIndex | None = None


class QueryEngine:
    """Planner + plan cache bound to one (mutable) document.

    Parameters
    ----------
    root_provider:
        Zero-argument callable returning the document's current root.
    cache_capacity:
        Maximum number of cached plans (LRU eviction beyond it).
    max_root_views:
        Maximum number of per-root walk/index views kept at once (the
        live root plus recently used pinned generations).  Views for
        released generations are dropped eagerly by
        :meth:`forget_root`; the bound is a backstop for callers that
        never release.
    observability:
        Optional :class:`~repro.obs.Observability` panel: planning and
        view construction then emit phase spans (``plan_cache_lookup``,
        ``plan_build``, ``view_build``, ``stats_delta``,
        ``condition_index_patch``) into the active trace and latency
        histograms into the registry.  ``None`` (the default for
        standalone engines) attaches nothing and pays nothing.
    """

    def __init__(
        self,
        root_provider: Callable[[], Node],
        cache_capacity: int = 128,
        max_root_views: int = 8,
        observability=None,
    ) -> None:
        self.stats = DocumentStats(root_provider)
        self.cache = PlanCache(cache_capacity)
        # Shared Shannon-expansion memo for every probability this
        # engine's queries compute.  Entries are keyed by the event
        # table's probability generation, so structural commits need
        # not flush it — overlapping answers keep sharing subproblems
        # across queries until a probability actually changes.
        self.shannon = ShannonCache()
        self._root_provider = root_provider
        # Serializes planning, statistics maintenance and per-root view
        # construction.  Match enumeration itself runs outside the lock
        # on the immutable Plan/_Intervals objects it captured.
        self._lock = threading.RLock()
        # Per-root executor views, keyed by root identity (see
        # _RootView for why entries hold the root strongly).  Insertion
        # order doubles as LRU order.
        self._views: OrderedDict[int, _RootView] = OrderedDict()
        self._max_root_views = max(1, max_root_views)
        self._obs = observability

    @property
    def observability(self):
        """The attached :class:`~repro.obs.Observability` panel (or None)."""
        return self._obs

    # ------------------------------------------------------------------
    # Invalidation / incremental maintenance
    # ------------------------------------------------------------------

    @contextmanager
    def mutating(self):
        """Hold the engine lock across an in-place document mutation.

        The warehouse wraps every mutation of the live tree in this
        guard: a concurrent reader whose statistics snapshot was
        dropped (``invalidate`` or a non-maintainable delta) recollects
        by walking the provider's *live* root under the engine lock,
        and without the guard that walk would race the mutation and
        cache torn statistics.  Lock ordering stays acyclic: writers
        take write lock → engine lock; readers take the engine lock
        alone (their snapshot pins are acquired before any engine
        work).
        """
        with self._lock:
            yield

    def invalidate(self) -> None:
        """Tell the engine the document changed (stats version bump).

        Cached plans for older versions stop being served immediately
        (the version is part of the cache key) and age out by LRU.  The
        per-root views and the Shannon memo are dropped too: an
        untracked mutation may have rewritten conditions or event
        probabilities behind the engine's back.
        """
        with self._lock:
            self.stats.invalidate()
            self._views.clear()
            self.shannon.clear()

    def apply_delta(self, delta: StatsDelta | None) -> None:
        """Fold a commit's structural delta into the engine state.

        The statistics adjust in place (no full re-walk) and the
        version bumps only when the document actually changed, so plans
        cached for an untouched document keep being served.  Only the
        **live** root's view is touched: its walk is dropped (interval
        numbering is positional) and its ancestor-condition index is
        *patched* from the delta's subtree records rather than rebuilt
        (updates only attach/detach subtrees — kept nodes keep their
        conditions).  Views of pinned generations are frozen by the
        copy-on-write contract and stay valid as they are.  The Shannon
        memo survives as-is: its entries are keyed by the event table's
        probability generation, which structural deltas cannot change.
        ``None`` degrades to a full :meth:`invalidate`.
        """
        if delta is None:
            self.invalidate()
            return
        obs = self._obs
        tracing = obs is not None and obs.tracer.enabled
        with self._lock:
            t0 = perf_counter() if tracing else 0.0
            self.stats.apply_delta(delta)
            if tracing:
                obs.tracer.emit("stats_delta", perf_counter() - t0)
            if delta.is_empty:
                return
            live = self._root_provider()
            view = self._views.get(id(live))
            if view is not None and view.root is live:
                view.intervals = None
                view.version = None
                if view.conditions is not None:
                    t1 = perf_counter() if tracing else 0.0
                    view.conditions.apply_changes(delta.subtree_changes)
                    if tracing:
                        obs.tracer.emit(
                            "condition_index_patch", perf_counter() - t1
                        )

    def forget_root(self, root: Node) -> None:
        """Drop the per-root view for *root* (a released pinned generation).

        Called by the warehouse when the last snapshot pin on a
        document generation is released; idempotent, and a no-op for
        the live root.
        """
        with self._lock:
            view = self._views.get(id(root))
            if (
                view is not None
                and view.root is root
                and root is not self._root_provider()
            ):
                del self._views[id(root)]

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_for(self, pattern: Pattern, *, bounded: bool = False) -> Plan:
        """The cached or freshly built plan for *pattern* on the current stats.

        Note: a cached plan's :attr:`Plan.pattern` may be a different —
        structurally identical — object than *pattern*; matches map the
        *plan's* pattern nodes.  *bounded* requests the plan shape for
        probability-bounded enumeration (cached under its own
        fingerprint suffix, so the two shapes never alias).
        """
        obs = self._obs
        tracing = obs is not None and obs.tracer.enabled
        with self._lock:
            fingerprint = pattern_fingerprint(pattern) + (
                " [bounded]" if bounded else ""
            )
            version = self.stats.version
            t0 = perf_counter() if tracing else 0.0
            plan = self.cache.get(fingerprint, version)
            if tracing:
                obs.tracer.emit(
                    "plan_cache_lookup",
                    perf_counter() - t0,
                    hit=plan is not None,
                )
            if plan is None:
                t1 = perf_counter() if obs is not None else 0.0
                plan = build_plan(
                    pattern, self.stats.current(), version, bounded=bounded
                )
                self.cache.put(plan)
                if obs is not None:
                    built = perf_counter() - t1
                    if tracing:
                        obs.tracer.emit("plan_build", built)
                    obs.metrics.observe("engine.plan_build_seconds", built)
            return plan

    # ------------------------------------------------------------------
    # Per-root views
    # ------------------------------------------------------------------

    def _view(self, root: Node) -> _RootView:
        """The (LRU-refreshed) view for *root*; caller holds the lock."""
        key = id(root)
        view = self._views.get(key)
        if view is None or view.root is not root:
            view = _RootView(root)
            self._views[key] = view
        self._views.move_to_end(key)
        live = self._root_provider()
        while len(self._views) > self._max_root_views:
            for old_key, old_view in self._views.items():
                if old_view.root is not live:
                    del self._views[old_key]
                    break
            else:
                break  # only the live root is registered; keep it
        return view

    def _intervals_for(self, root: Node) -> _Intervals:
        """The document walk for *root* (building it unlocked if stale).

        The walk of the live root is version-checked (in-place commits
        renumber it); walks of pinned generations are frozen and valid
        forever.  Building the walk for a fuzzy root whose condition
        index is also missing fuses the index construction into the
        same single pass.

        The O(n) construction runs **outside** the engine lock so a
        writer's ``apply_delta`` never queues behind a reader's
        rebuild — the tail-latency killer of the serving shape.  This
        is safe because the engine's callers always evaluate a root
        they hold a snapshot pin on (or run single-threaded): the tree
        being walked is frozen by the warehouse's copy-on-write
        contract for as long as the pin lives.  Two racing builders do
        duplicate work; installation under the lock is idempotent.
        """
        with self._lock:
            view = self._view(root)
            live = root is self._root_provider()
            version = self.stats.version
            if view.intervals is not None and (not live or view.version == version):
                return view.intervals
            need_index = isinstance(root, FuzzyNode) and view.conditions is None
        index = AncestorConditionIndex(id(root)) if need_index else None
        obs = self._obs
        t0 = perf_counter() if obs is not None else 0.0
        # Chunked construction: yield the GIL periodically so a
        # committing writer never waits out a full O(n) rebuild burst.
        intervals = _Intervals(
            root,
            index.observe if index is not None else None,
            yield_every=256,
        )
        if obs is not None:
            built = perf_counter() - t0
            if obs.tracer.enabled:
                obs.tracer.emit("view_build", built, with_index=need_index)
            obs.metrics.observe("engine.view_build_seconds", built)
        with self._lock:
            view = self._view(root)  # may have been evicted meanwhile
            view.intervals = intervals
            # If the root was live when we sampled the version and a
            # commit landed during the build, copy-on-write made it a
            # frozen generation (roots never become live again), so the
            # sampled version is only consulted while it is still
            # accurate.
            view.version = version
            if index is not None and view.conditions is None:
                view.conditions = index
            return intervals

    def condition_index(self, root: Node | None = None) -> AncestorConditionIndex | None:
        """The ancestor-condition index for *root* (default: the live root).

        Returns None for plain (non-fuzzy) documents.  The index is
        built inside the engine's single document walk when possible
        and patched by commit deltas afterwards (live root) or frozen
        by copy-on-write (pinned roots), so between commits the lookup
        is a per-node dict hit.  Like the walk, a stale index is
        rebuilt outside the engine lock (the caller pins the root).
        """
        with self._lock:
            if root is None:
                root = self._root_provider()
            if not isinstance(root, FuzzyNode):
                return None
            view = self._view(root)
            if view.conditions is not None:
                return view.conditions
        # Fuse the build into the document walk when that is stale too;
        # otherwise (fresh walk, stale index) build standalone.
        self._intervals_for(root)
        with self._lock:
            view = self._view(root)
            if view.conditions is not None:
                return view.conditions
        index = AncestorConditionIndex.build(root)
        with self._lock:
            view = self._view(root)
            if view.conditions is None:
                view.conditions = index
            return view.conditions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def iter_matches(
        self,
        pattern: Pattern,
        config: MatchConfig = DEFAULT_CONFIG,
        root: Node | None = None,
        *,
        bound: ProbabilityBound | None = None,
        prune=None,
    ) -> "Iterator[Match]":
        """Plan (with caching) and stream matches for *pattern* lazily.

        The streaming protocol end to end: the plan comes from the
        cache (or is built and cached), execution yields matches one at
        a time (a consumer that stops pulling — top-k — aborts the
        backtracking; the config's ``max_matches`` additionally caps
        it).  Yielded matches are keyed by *pattern*'s own nodes even
        when the plan was cached from an earlier, structurally
        identical pattern object.

        *root*, when given, evaluates against that root object instead
        of the provider's current one — this is how pinned snapshot
        readers stay on their frozen generation while the live document
        moves on.  Planning and walk construction happen under the
        engine lock; the enumeration itself runs lock-free on the
        captured immutable plan and walk.

        *bound* and *prune* (always together) switch on the
        probability-bounded join: every candidate binding is priced via
        ``bound.bind`` and skipped when ``prune(upper)`` says the
        branch cannot contribute.  Bounded runs use the bounded plan
        shape (discounted cost model, separate cache entry).
        """
        pruning = bound is not None and prune is not None
        with self._lock:
            plan = self.plan_for(pattern, bounded=pruning)
            if root is None:
                root = self._root_provider()
        intervals = self._intervals_for(root)
        if pruning:
            matches = iter_plan(
                plan, root, config, intervals=intervals, bound=bound, prune=prune
            )
        else:
            matches = iter_plan(plan, root, config, intervals=intervals)
        # plan_for keyed the cache by this pattern's fingerprint, so
        # the shapes are identical; re-key onto the caller's nodes.
        yield from iter_rekeyed(plan, pattern, matches)

    def find_matches(
        self,
        pattern: Pattern,
        config: MatchConfig = DEFAULT_CONFIG,
        root: Node | None = None,
    ) -> list[Match]:
        """Plan (with caching) and execute *pattern* on the current document.

        The returned matches are keyed by *pattern*'s own nodes even
        when the plan was cached from an earlier, structurally
        identical pattern object.
        """
        return list(self.iter_matches(pattern, config, root=root))

    def explain(self, pattern: Pattern) -> str:
        """Human-readable plan plus the statistics that priced it."""
        with self._lock:
            plan = self.plan_for(pattern)
            stats = self.stats.current()
        lines = ["statistics:"]
        for key, value in stats.as_dict().items():
            lines.append(f"  {key}: {value}")
        lines.append(plan.explain())
        cache = self.cache.stats()
        lines.append(
            f"plan cache: {cache['entries']}/{cache['capacity']} entries, "
            f"{cache['hits']} hits, {cache['misses']} misses"
        )
        shannon = self.shannon.stats()
        lines.append(
            f"shannon cache: {shannon['entries']}/{shannon['capacity']} entries, "
            f"{shannon['hits']} hits, {shannon['misses']} misses"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"QueryEngine(stats={self.stats!r}, cache={self.cache!r})"
