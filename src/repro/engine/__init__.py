"""Cost-based query engine for TPWJ evaluation.

The fixed-strategy matcher (:mod:`repro.tpwj.match`) evaluates every
query the same way, with hand-set ablation toggles.  This subsystem
chooses the strategy *per query* from data statistics, the way a
database optimizer does:

* :mod:`repro.engine.stats` — one-pass document statistics with
  versioned invalidation;
* :mod:`repro.engine.cardinality` — selectivity and cardinality
  estimates for pattern nodes, axes and value joins;
* :mod:`repro.engine.planner` — cost-based choice of visit order and
  physical operators, producing an explainable :class:`Plan`;
* :mod:`repro.engine.executor` — the physical operators that run a
  plan and return ordinary :class:`~repro.tpwj.match.Match` objects;
* :mod:`repro.engine.cache` — an LRU plan cache keyed by
  (pattern fingerprint, statistics version).

:class:`QueryEngine` ties them together for a long-lived document (the
warehouse holds one per open handle); the one-shot path is
``find_matches(pattern, root, plan="auto")``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.fuzzy_tree import FuzzyNode
from repro.engine.cache import PlanCache
from repro.engine.cardinality import (
    axis_selectivity,
    estimate_candidates,
    estimate_enumeration_cost,
    join_selectivity,
)
from repro.engine.conditions import AncestorConditionIndex
from repro.engine.executor import (
    _Intervals,
    execute_plan,
    iter_plan,
    iter_rekeyed,
    rekey_matches,
)
from repro.engine.planner import Plan, PlanStep, build_plan, pattern_fingerprint
from repro.engine.stats import DocumentStats, StatsDelta, TreeStats, collect_stats
from repro.events.dnf import ShannonCache
from repro.tpwj.match import DEFAULT_CONFIG, Match, MatchConfig
from repro.tpwj.pattern import Pattern
from repro.trees.node import Node

__all__ = [
    "QueryEngine",
    "AncestorConditionIndex",
    "Plan",
    "PlanStep",
    "PlanCache",
    "ShannonCache",
    "TreeStats",
    "StatsDelta",
    "DocumentStats",
    "collect_stats",
    "build_plan",
    "execute_plan",
    "iter_plan",
    "iter_rekeyed",
    "rekey_matches",
    "pattern_fingerprint",
    "estimate_candidates",
    "estimate_enumeration_cost",
    "axis_selectivity",
    "join_selectivity",
]


class QueryEngine:
    """Planner + plan cache bound to one (mutable) document.

    Parameters
    ----------
    root_provider:
        Zero-argument callable returning the document's current root.
    cache_capacity:
        Maximum number of cached plans (LRU eviction beyond it).
    """

    def __init__(
        self, root_provider: Callable[[], Node], cache_capacity: int = 128
    ) -> None:
        self.stats = DocumentStats(root_provider)
        self.cache = PlanCache(cache_capacity)
        # Shared Shannon-expansion memo for every probability this
        # engine's queries compute.  Entries are keyed by the event
        # table's probability generation, so structural commits need
        # not flush it — overlapping answers keep sharing subproblems
        # across queries until a probability actually changes.
        self.shannon = ShannonCache()
        self._root_provider = root_provider
        # The executor's document walk (interval numbering + label
        # index), reused across executions until the stats version or
        # the root object changes.
        self._walk: tuple[int, int, _Intervals] | None = None
        # Per-node closed conditions (self ∧ ancestors), built during
        # the same walk and patched incrementally by commit deltas.
        self._conditions: AncestorConditionIndex | None = None

    def invalidate(self) -> None:
        """Tell the engine the document changed (stats version bump).

        Cached plans for older versions stop being served immediately
        (the version is part of the cache key) and age out by LRU.  The
        ancestor-condition index and the Shannon memo are dropped too:
        an untracked mutation may have rewritten conditions or event
        probabilities behind the engine's back.
        """
        self.stats.invalidate()
        self._walk = None
        self._conditions = None
        self.shannon.clear()

    def apply_delta(self, delta: StatsDelta | None) -> None:
        """Fold a commit's structural delta into the engine state.

        The statistics adjust in place (no full re-walk) and the
        version bumps only when the document actually changed, so plans
        cached for an untouched document keep being served.  The
        ancestor-condition index is *patched* from the delta's subtree
        records rather than rebuilt (updates only attach/detach
        subtrees — kept nodes keep their conditions).  The Shannon memo
        survives as-is: its entries are keyed by the event table's
        probability generation, which structural deltas cannot change.
        ``None`` degrades to a full :meth:`invalidate`.
        """
        if delta is None:
            self.invalidate()
            return
        self.stats.apply_delta(delta)
        if not delta.is_empty:
            self._walk = None
            if self._conditions is not None:
                self._conditions.apply_changes(delta.subtree_changes)

    def plan_for(self, pattern: Pattern) -> Plan:
        """The cached or freshly built plan for *pattern* on the current stats.

        Note: a cached plan's :attr:`Plan.pattern` may be a different —
        structurally identical — object than *pattern*; matches map the
        *plan's* pattern nodes.
        """
        fingerprint = pattern_fingerprint(pattern)
        version = self.stats.version
        plan = self.cache.get(fingerprint, version)
        if plan is None:
            plan = build_plan(pattern, self.stats.current(), version)
            self.cache.put(plan)
        return plan

    def _current_walk(self, root: Node) -> _Intervals:
        version = self.stats.version
        if (
            self._walk is None
            or self._walk[0] != version
            or self._walk[1] != id(root)
        ):
            observer = None
            if isinstance(root, FuzzyNode) and (
                self._conditions is None or self._conditions.root_id != id(root)
            ):
                # Build the ancestor-condition index inside the same
                # single pass the interval numbering makes.
                index = AncestorConditionIndex(id(root))
                observer = index.observe
            self._walk = (version, id(root), _Intervals(root, observer))
            if observer is not None:
                self._conditions = index
        return self._walk[2]

    def condition_index(self) -> AncestorConditionIndex | None:
        """The ancestor-condition index for the current document.

        Returns None for plain (non-fuzzy) documents.  The index is
        built inside the engine's single document walk when possible
        and patched by commit deltas afterwards, so between commits the
        lookup is a per-node dict hit.  A copy-on-write root swap (a
        writer detaching pinned readers) is detected by root identity
        and triggers a rebuild.
        """
        root = self._root_provider()
        index = self._conditions
        if index is not None and index.root_id == id(root):
            return index
        if not isinstance(root, FuzzyNode):
            return None
        # Fuse the build into the document walk when that is stale too;
        # otherwise (fresh walk, stale index) build standalone.
        self._current_walk(root)
        index = self._conditions
        if index is not None and index.root_id == id(root):
            return index
        index = AncestorConditionIndex.build(root)
        self._conditions = index
        return index

    def iter_matches(
        self,
        pattern: Pattern,
        config: MatchConfig = DEFAULT_CONFIG,
    ) -> "Iterator[Match]":
        """Plan (with caching) and stream matches for *pattern* lazily.

        The streaming protocol end to end: the plan comes from the
        cache (or is built and cached), execution yields matches one at
        a time (a consumer that stops pulling — top-k — aborts the
        backtracking; the config's ``max_matches`` additionally caps
        it).  Yielded matches are keyed by *pattern*'s own nodes even
        when the plan was cached from an earlier, structurally
        identical pattern object.
        """
        plan = self.plan_for(pattern)
        root = self._root_provider()
        matches = iter_plan(
            plan, root, config, intervals=self._current_walk(root)
        )
        # plan_for keyed the cache by this pattern's fingerprint, so
        # the shapes are identical; re-key onto the caller's nodes.
        yield from iter_rekeyed(plan, pattern, matches)

    def find_matches(
        self, pattern: Pattern, config: MatchConfig = DEFAULT_CONFIG
    ) -> list[Match]:
        """Plan (with caching) and execute *pattern* on the current document.

        The returned matches are keyed by *pattern*'s own nodes even
        when the plan was cached from an earlier, structurally
        identical pattern object.
        """
        return list(self.iter_matches(pattern, config))

    def explain(self, pattern: Pattern) -> str:
        """Human-readable plan plus the statistics that priced it."""
        plan = self.plan_for(pattern)
        stats = self.stats.current()
        lines = ["statistics:"]
        for key, value in stats.as_dict().items():
            lines.append(f"  {key}: {value}")
        lines.append(plan.explain())
        cache = self.cache.stats()
        lines.append(
            f"plan cache: {cache['entries']}/{cache['capacity']} entries, "
            f"{cache['hits']} hits, {cache['misses']} misses"
        )
        shannon = self.shannon.stats()
        lines.append(
            f"shannon cache: {shannon['entries']}/{shannon['capacity']} entries, "
            f"{shannon['hits']} hits, {shannon['misses']} misses"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"QueryEngine(stats={self.stats!r}, cache={self.cache!r})"
