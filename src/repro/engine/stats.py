"""Per-document statistics feeding the cost-based planner.

The planner needs cheap, already-aggregated facts about the document to
price candidate sets and axis steps without touching the tree again:
how many nodes carry each label, how many of those are valued leaves,
how many distinct values each label carries, and the shape of the tree
(depth and fan-out distributions).  :func:`collect_stats` gathers all
of it in **one pre-order pass**.

Documents mutate (updates attach and detach subtrees), so statistics
carry a *version*.  :class:`DocumentStats` wraps a root provider with
lazy recomputation: writers call :meth:`DocumentStats.invalidate` after
each mutation, which bumps the version and drops the snapshot; the next
reader recomputes.  The version also keys the plan cache
(:mod:`repro.engine.cache`), so a stale plan can never be served for a
changed document.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.instrumentation import counters
from repro.trees.node import Node

__all__ = ["TreeStats", "collect_stats", "DocumentStats"]


@dataclass(frozen=True)
class TreeStats:
    """A one-pass statistical summary of a data tree.

    All per-label maps are keyed by node label.  ``sum_depth`` doubles
    as the number of (proper ancestor, descendant) pairs in the tree —
    each node at depth *d* is a descendant of exactly *d* ancestors —
    which is what the descendant-axis selectivity estimate needs.
    """

    node_count: int
    leaf_count: int
    valued_count: int
    max_depth: int
    sum_depth: int
    max_fanout: int
    label_counts: dict[str, int] = field(default_factory=dict)
    valued_counts: dict[str, int] = field(default_factory=dict)
    internal_counts: dict[str, int] = field(default_factory=dict)
    distinct_values: dict[str, int] = field(default_factory=dict)
    distinct_values_total: int = 0

    @property
    def avg_depth(self) -> float:
        return self.sum_depth / self.node_count if self.node_count else 0.0

    @property
    def avg_fanout(self) -> float:
        internal = self.node_count - self.leaf_count
        return (self.node_count - 1) / internal if internal else 0.0

    @property
    def avg_descendants(self) -> float:
        """Expected number of proper descendants of a uniformly drawn node."""
        return self.sum_depth / self.node_count if self.node_count else 0.0

    def count_for_label(self, label: str | None) -> int:
        """Nodes carrying *label* (all nodes for the wildcard)."""
        if label is None:
            return self.node_count
        return self.label_counts.get(label, 0)

    def as_dict(self) -> dict:
        """Flat summary for CLI display and logs."""
        return {
            "nodes": self.node_count,
            "leaves": self.leaf_count,
            "valued_leaves": self.valued_count,
            "labels": len(self.label_counts),
            "distinct_values": self.distinct_values_total,
            "max_depth": self.max_depth,
            "avg_depth": round(self.avg_depth, 3),
            "max_fanout": self.max_fanout,
            "avg_fanout": round(self.avg_fanout, 3),
        }


def collect_stats(root: Node) -> TreeStats:
    """Collect :class:`TreeStats` for the tree rooted at *root* in one pass."""
    counters.incr("engine.stats_collected")
    node_count = 0
    leaf_count = 0
    valued_count = 0
    max_depth = 0
    sum_depth = 0
    max_fanout = 0
    label_counts: dict[str, int] = {}
    valued_counts: dict[str, int] = {}
    internal_counts: dict[str, int] = {}
    values_by_label: dict[str, set[str]] = {}
    all_values: set[str] = set()

    stack: list[tuple[Node, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        node_count += 1
        sum_depth += depth
        if depth > max_depth:
            max_depth = depth
        label = node.label
        label_counts[label] = label_counts.get(label, 0) + 1
        children = node.children
        if children:
            internal_counts[label] = internal_counts.get(label, 0) + 1
            if len(children) > max_fanout:
                max_fanout = len(children)
            for child in children:
                stack.append((child, depth + 1))
        else:
            leaf_count += 1
        if node.value is not None:
            valued_count += 1
            valued_counts[label] = valued_counts.get(label, 0) + 1
            values_by_label.setdefault(label, set()).add(node.value)
            all_values.add(node.value)

    return TreeStats(
        node_count=node_count,
        leaf_count=leaf_count,
        valued_count=valued_count,
        max_depth=max_depth,
        sum_depth=sum_depth,
        max_fanout=max_fanout,
        label_counts=label_counts,
        valued_counts=valued_counts,
        internal_counts=internal_counts,
        distinct_values={k: len(v) for k, v in values_by_label.items()},
        distinct_values_total=len(all_values),
    )


class DocumentStats:
    """Versioned, lazily recomputed statistics for a mutable document.

    Parameters
    ----------
    root_provider:
        Zero-argument callable returning the document's *current* root.
        A callable (rather than a node) because some stores replace the
        root object wholesale on load/rollback.
    """

    __slots__ = ("_root_provider", "_version", "_snapshot")

    def __init__(self, root_provider: Callable[[], Node]) -> None:
        self._root_provider = root_provider
        self._version = 0
        self._snapshot: TreeStats | None = None

    @property
    def version(self) -> int:
        """Monotone counter; bumped by every :meth:`invalidate`."""
        return self._version

    def invalidate(self) -> None:
        """Mark the document as changed; the next read recomputes."""
        self._version += 1
        self._snapshot = None
        counters.incr("engine.stats_invalidated")

    def current(self) -> TreeStats:
        """The statistics for the current document state (recomputing lazily)."""
        if self._snapshot is None:
            self._snapshot = collect_stats(self._root_provider())
        return self._snapshot

    def __repr__(self) -> str:
        state = "fresh" if self._snapshot is not None else "stale"
        return f"DocumentStats(version={self._version}, {state})"
