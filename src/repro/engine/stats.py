"""Per-document statistics feeding the cost-based planner.

The planner needs cheap, already-aggregated facts about the document to
price candidate sets and axis steps without touching the tree again:
how many nodes carry each label, how many of those are valued leaves,
how many distinct values each label carries, and the shape of the tree
(depth and fan-out distributions).  :func:`collect_stats` gathers all
of it in **one pre-order pass**.

Documents mutate (updates attach and detach subtrees), so statistics
carry a *version*.  :class:`DocumentStats` wraps a root provider with
lazy recomputation: writers call :meth:`DocumentStats.invalidate` after
each mutation, which bumps the version and drops the snapshot; the next
reader recomputes.  The version also keys the plan cache
(:mod:`repro.engine.cache`), so a stale plan can never be served for a
changed document.

Incremental maintenance: a full recollection walks the whole document,
which the warehouse's commit path cannot afford per update.  Mutators
instead record what they touched in a :class:`StatsDelta` (subtrees
attached, subtrees detached, child-count transitions) and hand it to
:meth:`DocumentStats.apply_delta`, which adjusts the counts in place.
An empty delta (the update changed nothing structurally) keeps the
version — and with it every cached plan — while a non-empty delta bumps
the version so stale plans age out, exactly as a full invalidation
would.  The only statistics that cannot always be maintained exactly
under removals are the maxima (depth, fan-out): when a removal might
have lowered one, the snapshot is dropped and the next reader pays one
full recollection.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.instrumentation import counters
from repro.trees.node import Node

__all__ = ["TreeStats", "StatsDelta", "collect_stats", "DocumentStats"]


@dataclass(frozen=True)
class TreeStats:
    """A one-pass statistical summary of a data tree.

    All per-label maps are keyed by node label.  ``sum_depth`` doubles
    as the number of (proper ancestor, descendant) pairs in the tree —
    each node at depth *d* is a descendant of exactly *d* ancestors —
    which is what the descendant-axis selectivity estimate needs.
    """

    node_count: int
    leaf_count: int
    valued_count: int
    max_depth: int
    sum_depth: int
    max_fanout: int
    label_counts: dict[str, int] = field(default_factory=dict)
    valued_counts: dict[str, int] = field(default_factory=dict)
    internal_counts: dict[str, int] = field(default_factory=dict)
    distinct_values: dict[str, int] = field(default_factory=dict)
    distinct_values_total: int = 0

    @property
    def avg_depth(self) -> float:
        return self.sum_depth / self.node_count if self.node_count else 0.0

    @property
    def avg_fanout(self) -> float:
        internal = self.node_count - self.leaf_count
        return (self.node_count - 1) / internal if internal else 0.0

    @property
    def avg_descendants(self) -> float:
        """Expected number of proper descendants of a uniformly drawn node."""
        return self.sum_depth / self.node_count if self.node_count else 0.0

    def count_for_label(self, label: str | None) -> int:
        """Nodes carrying *label* (all nodes for the wildcard)."""
        if label is None:
            return self.node_count
        return self.label_counts.get(label, 0)

    def as_dict(self) -> dict:
        """Flat summary for CLI display and logs."""
        return {
            "nodes": self.node_count,
            "leaves": self.leaf_count,
            "valued_leaves": self.valued_count,
            "labels": len(self.label_counts),
            "distinct_values": self.distinct_values_total,
            "max_depth": self.max_depth,
            "avg_depth": round(self.avg_depth, 3),
            "max_fanout": self.max_fanout,
            "avg_fanout": round(self.avg_fanout, 3),
        }


class StatsDelta:
    """Structural changes of one commit, recorded at the mutation sites.

    Mutators call the ``record_*`` methods as they attach and detach
    subtrees; :meth:`DocumentStats.apply_delta` folds the result into
    the maintained counts.  A delta never inspects the whole document —
    every record walks only the subtree being moved.
    """

    __slots__ = (
        "node_count",
        "leaf_count",
        "valued_count",
        "sum_depth",
        "label_counts",
        "valued_counts",
        "internal_counts",
        "value_deltas",
        "added_max_depth",
        "removed_max_depth",
        "added_max_fanout",
        "removed_max_fanout",
        "recorded",
        "subtree_changes",
    )

    def __init__(self) -> None:
        self.node_count = 0
        self.leaf_count = 0
        self.valued_count = 0
        self.sum_depth = 0
        self.label_counts: dict[str, int] = {}
        self.valued_counts: dict[str, int] = {}
        self.internal_counts: dict[str, int] = {}
        self.value_deltas: dict[tuple[str, str], int] = {}
        self.added_max_depth = -1
        self.removed_max_depth = -1
        self.added_max_fanout = 0
        self.removed_max_fanout = 0
        self.recorded = False
        #: Ordered ("add"/"remove", subtree root) records.  Beyond the
        #: aggregated counts, consumers that maintain per-node state
        #: (the engine's ancestor-condition index) need the actual
        #: subtrees a commit touched; holding the detached roots here
        #: also keeps their node identities alive until the delta is
        #: consumed, so removal patches can never race an id reuse.
        self.subtree_changes: list[tuple[str, Node]] = []

    @property
    def is_empty(self) -> bool:
        """True when no mutation was recorded (document unchanged)."""
        return not self.recorded

    def record_subtree_added(self, root: Node, depth: int) -> None:
        """A subtree was attached with its root at absolute *depth*."""
        self.subtree_changes.append(("add", root))
        self._record(root, depth, 1)

    def record_subtree_removed(self, root: Node, depth: int) -> None:
        """A subtree rooted at absolute *depth* was detached."""
        self.subtree_changes.append(("remove", root))
        self._record(root, depth, -1)

    def record_child_count_change(self, label: str, before: int, after: int) -> None:
        """A kept node with *label* went from *before* to *after* children.

        Captures leaf/internal transitions of the anchor or parent node
        and fan-out movements that :meth:`DocumentStats.apply_delta`
        needs to decide whether the maintained maxima survive.
        """
        if before == after:
            return
        self.recorded = True
        if before == 0:
            self.leaf_count -= 1
            self.internal_counts[label] = self.internal_counts.get(label, 0) + 1
        elif after == 0:
            self.leaf_count += 1
            self.internal_counts[label] = self.internal_counts.get(label, 0) - 1
        if after > before:
            if after > self.added_max_fanout:
                self.added_max_fanout = after
        elif before > self.removed_max_fanout:
            self.removed_max_fanout = before

    def _record(self, root: Node, depth: int, sign: int) -> None:
        self.recorded = True
        stack: list[tuple[Node, int]] = [(root, depth)]
        while stack:
            node, d = stack.pop()
            self.node_count += sign
            self.sum_depth += sign * d
            label = node.label
            self.label_counts[label] = self.label_counts.get(label, 0) + sign
            children = node.children
            if children:
                self.internal_counts[label] = (
                    self.internal_counts.get(label, 0) + sign
                )
                fanout = len(children)
                if sign > 0:
                    if fanout > self.added_max_fanout:
                        self.added_max_fanout = fanout
                elif fanout > self.removed_max_fanout:
                    self.removed_max_fanout = fanout
                for child in children:
                    stack.append((child, d + 1))
            else:
                self.leaf_count += sign
                if sign > 0:
                    if d > self.added_max_depth:
                        self.added_max_depth = d
                elif d > self.removed_max_depth:
                    self.removed_max_depth = d
            if node.value is not None:
                self.valued_count += sign
                self.valued_counts[label] = self.valued_counts.get(label, 0) + sign
                key = (label, node.value)
                self.value_deltas[key] = self.value_deltas.get(key, 0) + sign

    def __repr__(self) -> str:
        if self.is_empty:
            return "StatsDelta(empty)"
        return (
            f"StatsDelta(nodes{self.node_count:+d}, "
            f"labels={len(self.label_counts)})"
        )


class _StatsAccumulator:
    """Mutable counterpart of :class:`TreeStats`, incrementally adjustable.

    Holds, beyond the frozen snapshot's fields, the per-label value
    occurrence counters that make ``distinct_values`` maintainable under
    removals (a distinct value disappears only when its last occurrence
    does).
    """

    __slots__ = (
        "node_count",
        "leaf_count",
        "valued_count",
        "max_depth",
        "sum_depth",
        "max_fanout",
        "label_counts",
        "valued_counts",
        "internal_counts",
        "value_counts",
        "total_value_counts",
    )

    def __init__(self) -> None:
        self.node_count = 0
        self.leaf_count = 0
        self.valued_count = 0
        self.max_depth = 0
        self.sum_depth = 0
        self.max_fanout = 0
        self.label_counts: dict[str, int] = {}
        self.valued_counts: dict[str, int] = {}
        self.internal_counts: dict[str, int] = {}
        self.value_counts: dict[str, dict[str, int]] = {}
        self.total_value_counts: dict[str, int] = {}

    def add_tree(self, root: Node, depth: int = 0) -> None:
        stack: list[tuple[Node, int]] = [(root, depth)]
        while stack:
            node, d = stack.pop()
            self.node_count += 1
            self.sum_depth += d
            if d > self.max_depth:
                self.max_depth = d
            label = node.label
            self.label_counts[label] = self.label_counts.get(label, 0) + 1
            children = node.children
            if children:
                self.internal_counts[label] = (
                    self.internal_counts.get(label, 0) + 1
                )
                if len(children) > self.max_fanout:
                    self.max_fanout = len(children)
                for child in children:
                    stack.append((child, d + 1))
            else:
                self.leaf_count += 1
            if node.value is not None:
                self.valued_count += 1
                self.valued_counts[label] = self.valued_counts.get(label, 0) + 1
                per_label = self.value_counts.setdefault(label, {})
                per_label[node.value] = per_label.get(node.value, 0) + 1
                self.total_value_counts[node.value] = (
                    self.total_value_counts.get(node.value, 0) + 1
                )

    def apply(self, delta: StatsDelta) -> bool:
        """Fold *delta* in; False when the result cannot be maintained exactly.

        A False return means the caller must fall back to a full
        recollection: either a removal may have lowered a maximum, or an
        invariant went negative (the delta does not describe this tree).
        """
        # Maxima first: a removal reaching the current maximum may have
        # taken its only witness.  An addition in the same delta cannot
        # vouch for it — the commit may have inserted deep material and
        # then deleted it again, so aggregated add/remove extents lose
        # the ordering needed to reason it out.  Recompute.
        new_max_depth = self.max_depth
        if 0 <= delta.removed_max_depth and delta.removed_max_depth >= self.max_depth:
            return False
        if delta.added_max_depth > new_max_depth:
            new_max_depth = delta.added_max_depth
        new_max_fanout = self.max_fanout
        if delta.removed_max_fanout > 0 and delta.removed_max_fanout >= self.max_fanout:
            return False
        if delta.added_max_fanout > new_max_fanout:
            new_max_fanout = delta.added_max_fanout

        node_count = self.node_count + delta.node_count
        leaf_count = self.leaf_count + delta.leaf_count
        valued_count = self.valued_count + delta.valued_count
        sum_depth = self.sum_depth + delta.sum_depth
        if min(node_count, leaf_count, valued_count, sum_depth) < 0 or node_count == 0:
            return False
        if not _merge_counts(self.label_counts, delta.label_counts):
            return False
        if not _merge_counts(self.valued_counts, delta.valued_counts):
            return False
        if not _merge_counts(self.internal_counts, delta.internal_counts):
            return False
        for (label, value), change in delta.value_deltas.items():
            per_label = self.value_counts.setdefault(label, {})
            count = per_label.get(value, 0) + change
            if count < 0:
                return False
            if count:
                per_label[value] = count
            else:
                per_label.pop(value, None)
                if not per_label:
                    del self.value_counts[label]
            total = self.total_value_counts.get(value, 0) + change
            if total < 0:
                return False
            if total:
                self.total_value_counts[value] = total
            else:
                self.total_value_counts.pop(value, None)

        self.node_count = node_count
        self.leaf_count = leaf_count
        self.valued_count = valued_count
        self.sum_depth = sum_depth
        self.max_depth = new_max_depth
        self.max_fanout = new_max_fanout
        return True

    def freeze(self) -> TreeStats:
        return TreeStats(
            node_count=self.node_count,
            leaf_count=self.leaf_count,
            valued_count=self.valued_count,
            max_depth=self.max_depth,
            sum_depth=self.sum_depth,
            max_fanout=self.max_fanout,
            label_counts=dict(self.label_counts),
            valued_counts=dict(self.valued_counts),
            internal_counts=dict(self.internal_counts),
            distinct_values={
                label: len(values) for label, values in self.value_counts.items()
            },
            distinct_values_total=len(self.total_value_counts),
        )


def _merge_counts(target: dict[str, int], deltas: dict[str, int]) -> bool:
    """Add *deltas* into *target* dropping zeros; False on a negative count."""
    for key, change in deltas.items():
        count = target.get(key, 0) + change
        if count < 0:
            return False
        if count:
            target[key] = count
        else:
            target.pop(key, None)
    return True


def collect_stats(root: Node) -> TreeStats:
    """Collect :class:`TreeStats` for the tree rooted at *root* in one pass."""
    counters.incr("engine.stats_collected")
    accumulator = _StatsAccumulator()
    accumulator.add_tree(root)
    return accumulator.freeze()


class DocumentStats:
    """Versioned, incrementally maintained statistics for a mutable document.

    Parameters
    ----------
    root_provider:
        Zero-argument callable returning the document's *current* root.
        A callable (rather than a node) because some stores replace the
        root object wholesale on load/rollback.
    """

    __slots__ = ("_root_provider", "_version", "_accumulator", "_snapshot")

    def __init__(self, root_provider: Callable[[], Node]) -> None:
        self._root_provider = root_provider
        self._version = 0
        self._accumulator: _StatsAccumulator | None = None
        self._snapshot: TreeStats | None = None

    @property
    def version(self) -> int:
        """Monotone counter; bumped by every document change."""
        return self._version

    def invalidate(self) -> None:
        """Mark the document as changed; the next read recomputes."""
        self._version += 1
        self._accumulator = None
        self._snapshot = None
        counters.incr("engine.stats_invalidated")

    def apply_delta(self, delta: StatsDelta | None) -> None:
        """Fold a commit's :class:`StatsDelta` into the maintained counts.

        ``None`` (the mutation was not tracked) degrades to a full
        :meth:`invalidate`.  An empty delta keeps the version — cached
        plans stay valid for a document that did not change.  Otherwise
        the version bumps (stale plans age out) and the counts are
        adjusted in place; when the delta cannot be maintained exactly
        (a removal may have lowered a maximum), the snapshot is dropped
        and the next reader recollects.
        """
        if delta is None:
            self.invalidate()
            return
        if delta.is_empty:
            counters.incr("engine.stats_delta_noop")
            return
        self._version += 1
        if self._accumulator is None:
            return  # nothing maintained yet; next read collects fresh
        if self._accumulator.apply(delta):
            self._snapshot = self._accumulator.freeze()
            counters.incr("engine.stats_delta_applied")
        else:
            self._accumulator = None
            self._snapshot = None
            counters.incr("engine.stats_delta_recollected")

    def current(self) -> TreeStats:
        """The statistics for the current document state (recomputing lazily)."""
        if self._snapshot is None:
            counters.incr("engine.stats_collected")
            accumulator = _StatsAccumulator()
            accumulator.add_tree(self._root_provider())
            self._accumulator = accumulator
            self._snapshot = accumulator.freeze()
        return self._snapshot

    def __repr__(self) -> str:
        state = "fresh" if self._snapshot is not None else "stale"
        return f"DocumentStats(version={self._version}, {state})"
