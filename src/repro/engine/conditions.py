"""Ancestor-condition index: per-node *closed* conditions.

The probability pipeline of slide 13 needs, for every data node a match
maps, the conjunction of the node's condition with **all** its
ancestors' conditions (a node exists in a world only when its whole
ancestor chain does).  Computed naively that is an O(depth) Python walk
per mapped node per match — the dominant per-row cost once matching
itself is planned and streamed.

:class:`AncestorConditionIndex` precomputes the *closed* condition of
every fuzzy node — the interned :class:`~repro.events.condition.Condition`
over the frozenset union of its own and all ancestors' literals — so
:func:`~repro.core.query.match_condition` becomes a small union of
precomputed frozensets.  Closed conditions are built during the
engine's single document walk (the :class:`~repro.engine.executor._Intervals`
traversal calls :meth:`observe` per node) and **patched incrementally**
from commit deltas: every structural mutation the warehouse commits is
recorded as attached/detached subtrees in the
:class:`~repro.engine.stats.StatsDelta`, and since updates never mutate
a *kept* node's condition in place (deletions detach the target and
attach fresh survivor copies), patching the touched subtrees keeps the
whole index exact without a re-walk.  Untracked mutations must drop the
index (``QueryEngine.invalidate`` does), exactly as they must drop
statistics and cached plans.

Entries are keyed by node identity.  Removal patches pop the detached
subtree's ids while the delta still holds the nodes alive, so a later
id reuse can never be served a stale closure.  Sharing keeps the index
light: a node whose own condition is empty *shares* its parent's closed
condition object, so sparse condition densities store few distinct
conditions.
"""

from __future__ import annotations

from repro.core.fuzzy_tree import FuzzyNode
from repro.events.condition import Condition

__all__ = ["AncestorConditionIndex"]


class AncestorConditionIndex:
    """Closed (self ∧ ancestors) conditions, per fuzzy node."""

    __slots__ = ("root_id", "_closed")

    def __init__(self, root_id: int) -> None:
        #: Identity of the root this index was built for.  Copy-on-write
        #: swaps (a writer detaching pinned readers) replace the whole
        #: tree; the owner compares this against its current root and
        #: rebuilds on mismatch.
        self.root_id = root_id
        self._closed: dict[int, Condition] = {}

    @classmethod
    def build(cls, root: FuzzyNode) -> "AncestorConditionIndex":
        """Build the index for a whole tree in one pre-order walk."""
        index = cls(id(root))
        observe = index.observe
        for node in root.iter():
            observe(node)
        return index

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------

    def observe(self, node: FuzzyNode) -> None:
        """Record *node*'s closed condition (its parent's must be known
        or computable — pre-order walks guarantee it)."""
        self._closed[id(node)] = self._closed_for(node)

    def add_subtree(self, root: FuzzyNode) -> None:
        """Patch in an attached subtree (closures derived from its
        current parent chain)."""
        for node in root.iter():
            self._closed[id(node)] = self._closed_for(node)

    def remove_subtree(self, root: FuzzyNode) -> None:
        """Patch out a detached subtree (by the node identities it still
        holds)."""
        closed = self._closed
        for node in root.iter():
            closed.pop(id(node), None)

    def apply_changes(self, changes) -> None:
        """Apply a commit's ordered (kind, subtree-root) patch list."""
        for kind, node in changes:
            if kind == "add":
                self.add_subtree(node)
            else:
                self.remove_subtree(node)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def closed_condition(self, node: FuzzyNode) -> Condition:
        """The interned conjunction of *node*'s and its ancestors' literals.

        May be inconsistent (``allow_inconsistent`` construction): a
        node whose closure is inconsistent exists in no world, and the
        caller decides what that means for its match.  Unknown nodes
        fall back to an upward walk that stops at the nearest indexed
        ancestor and caches the chain on the way back down.
        """
        closed = self._closed.get(id(node))
        if closed is None:
            closed = self._closed_for(node)
            self._closed[id(node)] = closed
        return closed

    def _closed_for(self, node: FuzzyNode) -> Condition:
        parent = node.parent
        if parent is None:
            return node.condition
        base = self._closed.get(id(parent))
        if base is None:
            # Walk up to the nearest indexed ancestor (iteratively — no
            # recursion budget on deep trees), caching the chain on the
            # way back down.
            chain: list[FuzzyNode] = []
            walk: FuzzyNode | None = parent
            base = None
            while walk is not None:
                cached = self._closed.get(id(walk))
                if cached is not None:
                    base = cached
                    break
                chain.append(walk)
                walk = walk.parent  # type: ignore[assignment]
            for member in reversed(chain):
                base = _extend(base, member.condition)
                self._closed[id(member)] = base
        return _extend(base, node.condition)

    def __len__(self) -> int:
        return len(self._closed)

    def __repr__(self) -> str:
        return f"AncestorConditionIndex({len(self._closed)} nodes)"


def _extend(base: Condition | None, condition: Condition) -> Condition:
    """``base ∧ condition`` with object sharing for the trivial cases."""
    if base is None or base.is_true:
        return condition
    if condition.is_true:
        return base  # shared object: sparse conditions stay O(1)
    return Condition(base.literals | condition.literals, allow_inconsistent=True)
