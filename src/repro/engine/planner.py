"""Cost-based planning for TPWJ evaluation.

A :class:`Plan` fixes, ahead of execution, everything the fixed-strategy
matcher used to hard-code or leave to hand-set ablation flags:

* the **visit order** of the pattern nodes — any topological order of
  the pattern tree is legal (a node's parent must be bound before the
  node); the planner picks greedily by expected option count, so
  selective nodes (rare labels, value tests, second occurrences of a
  join variable) bind early and cut the backtracking tree high up;
* the **scan operator** — label-index scan versus full document scan
  per pattern node;
* whether the **structural semi-join prune** pays for itself (its cost
  is linear in the candidate sets; on tiny candidate sets the pass
  costs more than the enumeration it saves);
* where **join checks** run — eagerly during enumeration when the
  pattern has join variables, at the end otherwise.

Plans are explainable: :meth:`Plan.explain` renders the decisions with
the estimates that drove them, and ``repro explain`` surfaces it on the
command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.instrumentation import counters
from repro.engine.cardinality import (
    axis_selectivity,
    estimate_candidates,
    estimate_enumeration_cost,
    join_selectivity,
)
from repro.engine.stats import TreeStats
from repro.tpwj.parser import format_pattern
from repro.tpwj.pattern import Pattern, PatternNode

__all__ = ["Plan", "PlanStep", "build_plan", "pattern_fingerprint"]

#: Below this estimated total candidate volume the semi-join prepass
#: costs more than the enumeration it could save.
SEMIJOIN_THRESHOLD = 32.0

#: How much of the enumeration a probability-bounded join is expected
#: to skip: branch-and-bound cuts assignments whose upper bound cannot
#: beat the admission threshold, so the expected visited fraction of
#: the backtracking tree is modelled as this constant.
BOUNDED_COST_DISCOUNT = 0.5
#: Under a bounded join the semi-join prepass must clear a higher bar:
#: its full linear pass over the candidate sets is paid up front, while
#: much of the enumeration it would have saved is pruned by the
#: probability bound anyway.
BOUNDED_SEMIJOIN_FACTOR = 2.0


def pattern_fingerprint(pattern: Pattern) -> str:
    """A deterministic key identifying a pattern up to text syntax.

    ``format_pattern`` round-trips through the parser, so two patterns
    with the same fingerprint are structurally identical (same labels,
    axes, value tests, variables, negation, anchoring).
    """
    return format_pattern(pattern)


@dataclass(frozen=True)
class PlanStep:
    """One pattern node in the visit order, with its pricing."""

    node: PatternNode
    scan: str  # "label-index" | "full-scan"
    estimated_candidates: float
    estimated_options: float  # after axis + join selectivity

    def describe(self) -> str:
        label = self.node.label if self.node.label is not None else "*"
        bits = [label]
        if self.node.variable is not None:
            bits.append(f"${self.node.variable}")
        if self.node.value is not None:
            bits.append(f'="{self.node.value}"')
        axis = "//" if self.node.descendant and self.node.parent is not None else ""
        return (
            f"{axis}{' '.join(bits)}  [{self.scan}]  "
            f"est. candidates={self.estimated_candidates:.1f}  "
            f"est. options={self.estimated_options:.2f}"
        )


@dataclass(frozen=True)
class Plan:
    """An executable, explainable evaluation plan for one pattern.

    The plan owns the *strategy* decisions; runtime semantics
    (``max_matches``, ``honor_negation``) stay with the
    :class:`~repro.tpwj.match.MatchConfig` supplied at execution time.
    """

    pattern: Pattern
    steps: tuple[PlanStep, ...]
    use_label_index: bool
    use_semijoin_pruning: bool
    early_join_check: bool
    estimated_cost: float
    baseline_cost: float  # cost of the naive pre-order visit order
    stats_version: int
    fingerprint: str
    reasons: tuple[str, ...] = field(default_factory=tuple)

    @property
    def order(self) -> list[PatternNode]:
        return [step.node for step in self.steps]

    def explain(self) -> str:
        """Multi-line human-readable rendering of the plan."""
        lines = [
            f"plan for {self.fingerprint}",
            f"  stats version: {self.stats_version}",
            f"  estimated cost: {self.estimated_cost:.2f}"
            f"  (naive pre-order: {self.baseline_cost:.2f})",
            "  operators:",
            f"    semi-join prune: {'on' if self.use_semijoin_pruning else 'off'}",
            f"    join check: {'early' if self.early_join_check else 'final'}",
            "  visit order:",
        ]
        for position, step in enumerate(self.steps):
            lines.append(f"    {position + 1}. {step.describe()}")
        if self.reasons:
            lines.append("  decisions:")
            for reason in self.reasons:
                lines.append(f"    - {reason}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Plan({self.fingerprint!r}, {len(self.steps)} steps, "
            f"cost={self.estimated_cost:.2f})"
        )


def build_plan(
    pattern: Pattern,
    stats: TreeStats,
    stats_version: int = 0,
    *,
    bounded: bool = False,
) -> Plan:
    """Choose a visit order and operator set for *pattern* given *stats*.

    *bounded* prices the plan for probability-bounded enumeration
    (top-k / ``min_probability``): the branch-and-bound prune inside
    the join is expected to skip a large share of the backtracking
    tree, so enumeration cost is discounted and the semi-join prepass —
    whose up-front pass competes with savings the prune captures anyway
    — must clear a higher candidate-volume bar.  Bounded plans carry a
    distinct fingerprint so the plan cache never serves one shape for
    the other.
    """
    counters.incr("engine.plans_built")
    join_vars = set(pattern.join_variables())
    reasons: list[str] = []

    # ------------------------------------------------------------------
    # Visit order: greedy over the frontier (root, then children of
    # already-placed nodes), cheapest expected option count first.
    # ------------------------------------------------------------------
    order: list[PatternNode] = [pattern.root]
    frontier = [c for c in pattern.root.children if not c.negated]
    bound_vars = {pattern.root.variable} if pattern.root.variable in join_vars else set()

    def expected_options(node: PatternNode) -> float:
        options = estimate_candidates(node, stats, join_vars)
        options *= axis_selectivity(node, stats)
        if node.variable in join_vars and node.variable in bound_vars:
            options *= join_selectivity(node, stats)
        return options

    while frontier:
        frontier.sort(key=expected_options)
        chosen = frontier.pop(0)
        order.append(chosen)
        if chosen.variable in join_vars:
            bound_vars.add(chosen.variable)
        frontier.extend(c for c in chosen.children if not c.negated)

    estimated_cost = estimate_enumeration_cost(
        pattern, order, stats, pattern.anchored
    )
    baseline_order = pattern.positive_nodes()
    baseline_cost = estimate_enumeration_cost(
        pattern, baseline_order, stats, pattern.anchored
    )
    if order != baseline_order:
        reasons.append(
            f"reordered visit sequence: est. cost {estimated_cost:.2f} "
            f"vs pre-order {baseline_cost:.2f}"
        )

    # ------------------------------------------------------------------
    # Operator choices.
    # ------------------------------------------------------------------
    labelled = [n for n in order if n.label is not None]
    use_label_index = bool(labelled)
    if use_label_index:
        reasons.append(
            f"label-index scan: {len(labelled)}/{len(order)} pattern nodes "
            "carry a label test"
        )
    else:
        reasons.append("full scan: every pattern node is a wildcard")

    total_candidates = sum(
        estimate_candidates(node, stats, join_vars) for node in order
    )
    semijoin_threshold = SEMIJOIN_THRESHOLD * (
        BOUNDED_SEMIJOIN_FACTOR if bounded else 1.0
    )
    use_semijoin_pruning = (
        len(order) > 1 and total_candidates >= semijoin_threshold
    )
    if use_semijoin_pruning:
        reasons.append(
            f"semi-join prune: est. candidate volume {total_candidates:.0f} "
            f">= threshold {semijoin_threshold:.0f}"
        )
    elif len(order) <= 1:
        reasons.append("no semi-join prune: single pattern node")
    else:
        reasons.append(
            f"no semi-join prune: est. candidate volume {total_candidates:.0f} "
            f"below threshold {semijoin_threshold:.0f}"
        )
    if bounded:
        estimated_cost *= BOUNDED_COST_DISCOUNT
        baseline_cost *= BOUNDED_COST_DISCOUNT
        reasons.append(
            "bounded enumeration: probability branch-and-bound prunes the "
            f"join (cost x{BOUNDED_COST_DISCOUNT}, semi-join threshold "
            f"x{BOUNDED_SEMIJOIN_FACTOR:.0f})"
        )

    early_join_check = bool(join_vars)
    if join_vars:
        names = ", ".join(f"${v}" for v in sorted(join_vars))
        reasons.append(f"early join check: join variables {names}")
    else:
        reasons.append("no join variables: join check elided")

    steps = []
    seen_vars: set[str] = set()
    for node in order:
        candidates = estimate_candidates(node, stats, join_vars)
        counters.incr("engine.estimated_candidates", candidates)
        options = candidates * axis_selectivity(node, stats)
        if node.variable in join_vars:
            if node.variable in seen_vars:
                options *= join_selectivity(node, stats)
            seen_vars.add(node.variable)
        scan = (
            "label-index"
            if use_label_index and node.label is not None
            else "full-scan"
        )
        steps.append(
            PlanStep(
                node=node,
                scan=scan,
                estimated_candidates=candidates,
                estimated_options=options,
            )
        )

    return Plan(
        pattern=pattern,
        steps=tuple(steps),
        use_label_index=use_label_index,
        use_semijoin_pruning=use_semijoin_pruning,
        early_join_check=early_join_check,
        estimated_cost=estimated_cost,
        baseline_cost=baseline_cost,
        stats_version=stats_version,
        fingerprint=pattern_fingerprint(pattern)
        + (" [bounded]" if bounded else ""),
        reasons=tuple(reasons),
    )
