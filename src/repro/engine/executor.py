"""Physical operators executing a :class:`~repro.engine.planner.Plan`.

The fixed-strategy matcher in :mod:`repro.tpwj.match` fuses candidate
computation, pruning and enumeration into one class with boolean
toggles.  The engine splits the same work into explicit operators so a
plan can pick and order them:

* :class:`LabelIndexScan` / :class:`FullScan` — produce the per-pattern-
  node candidate lists (one document pass builds the label index,
  shared by every scan);
* :class:`SemiJoinPrune` — the bottom-up structural semi-join: a
  candidate survives only when every required pattern child still has a
  candidate in the right axis relation;
* :class:`BacktrackJoin` — enumerate homomorphisms over the plan's
  visit order, checking join variables eagerly or at the end as the
  plan decided.

The operators reproduce the matcher's semantics exactly — the
equivalence property test (``tests/test_engine_equivalence.py``) checks
the match *set* is identical to the naive matcher on random instances —
but the *order* of matches follows the plan's visit order, so callers
needing a canonical order must sort (the fuzzy query path already
does).
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import islice
from time import sleep as _sleep

from repro.analysis.instrumentation import counters
from repro.engine.planner import Plan
from repro.tpwj.match import DEFAULT_CONFIG, Match, MatchConfig, find_embeddings
from repro.tpwj.pattern import PatternNode
from repro.trees.node import Node

__all__ = [
    "execute_plan",
    "iter_plan",
    "iter_rekeyed",
    "rekey_matches",
    "LabelIndexScan",
    "FullScan",
    "SemiJoinPrune",
    "BacktrackJoin",
    "ProbabilityBound",
]


def iter_rekeyed(plan: Plan, pattern, matches) -> Iterator[Match]:
    """Re-key *matches* from the plan's pattern nodes onto *pattern*'s,
    lazily.

    A cached plan may carry a different — structurally identical —
    pattern object than the caller's; after this, ``match[caller_node]``
    works.  Pass-through when the plan was built for *pattern* itself.
    The caller must have established structural identity (equal
    fingerprints); positive nodes then correspond position by position.
    """
    if plan.pattern is pattern:
        yield from matches
        return
    pairs = list(zip(plan.pattern.positive_nodes(), pattern.positive_nodes()))
    for match in matches:
        yield Match(pattern, {mine: match[theirs] for theirs, mine in pairs})


def rekey_matches(plan: Plan, pattern, matches: list[Match]) -> list[Match]:
    """Materializing wrapper around :func:`iter_rekeyed`."""
    if plan.pattern is pattern:
        return matches
    return list(iter_rekeyed(plan, pattern, matches))


class _Intervals:
    """Pre-order interval numbering for O(1) ancestor/descendant tests.

    The constructor makes the engine's **single** document pass: it
    numbers the tree *and* collects the node list and the label index
    the scan operators draw from, so executing a plan walks the
    document exactly once (the fixed matcher walks it twice).

    *yield_every*, when set, cooperatively yields the GIL every that
    many visited nodes (``time.sleep(0)``): the serving layer rebuilds
    walks on reader threads after commits, and an uninterruptible O(n)
    pass would otherwise hold the GIL for milliseconds at a time —
    exactly the burst that lands in a concurrent writer's p99 commit
    latency.  The cost is one no-op syscall per chunk; leave it None
    for single-threaded callers.
    """

    __slots__ = ("enter", "exit", "all_nodes", "label_index")

    def __init__(self, root: Node, observer=None, yield_every: int | None = None) -> None:
        self.enter: dict[int, int] = {}
        self.exit: dict[int, int] = {}
        self.all_nodes: list[Node] = []
        self.label_index: dict[str, list[Node]] = {}
        enter, exit_, all_nodes, index = (
            self.enter,
            self.exit,
            self.all_nodes,
            self.label_index,
        )
        clock = 0

        # *observer* piggybacks on the single pass: the engine passes
        # its ancestor-condition index's ``observe`` so per-node closed
        # conditions are gathered in the same walk (pre-order — a
        # node's parent is always observed first).

        def visit(node: Node) -> None:
            nonlocal clock
            enter[id(node)] = clock
            clock += 1
            if yield_every is not None and clock % yield_every == 0:
                _sleep(0)  # let a waiting writer slip in
            all_nodes.append(node)
            if observer is not None:
                observer(node)
            bucket = index.get(node.label)
            if bucket is None:
                index[node.label] = [node]
            else:
                bucket.append(node)
            for child in node.children:
                visit(child)
            exit_[id(node)] = clock

        visit(root)

    def is_descendant(self, node: Node, ancestor: Node) -> bool:
        return (
            self.enter[id(ancestor)] < self.enter[id(node)]
            and self.enter[id(node)] < self.exit[id(ancestor)]
        )


def _local_ok(
    pattern_node: PatternNode, data_node: Node, join_vars: dict
) -> bool:
    """The matcher's local test, shared by both scan operators."""
    if pattern_node.label is not None and pattern_node.label != data_node.label:
        return False
    if pattern_node.value is not None and data_node.value != pattern_node.value:
        return False
    if data_node.is_leaf and any(not c.negated for c in pattern_node.children):
        return False
    variable = pattern_node.variable
    if variable is not None and variable in join_vars and data_node.value is None:
        return False
    return True


class LabelIndexScan:
    """Candidate production off the label -> nodes index of the walk."""

    def __init__(self, intervals: _Intervals) -> None:
        self._index = intervals.label_index
        self._all = intervals.all_nodes

    def scan(self, pattern_node: PatternNode, join_vars: dict) -> list[Node]:
        if pattern_node.label is not None:
            base = self._index.get(pattern_node.label, [])
        else:
            base = self._all
        kept = [n for n in base if _local_ok(pattern_node, n, join_vars)]
        counters.incr("engine.actual_candidates", len(kept))
        counters.incr("match.candidates", len(kept))
        return kept


class FullScan:
    """Candidate production by filtering the whole document per node."""

    def __init__(self, intervals: _Intervals) -> None:
        self._all = intervals.all_nodes

    def scan(self, pattern_node: PatternNode, join_vars: dict) -> list[Node]:
        kept = [n for n in self._all if _local_ok(pattern_node, n, join_vars)]
        counters.incr("engine.actual_candidates", len(kept))
        counters.incr("match.candidates", len(kept))
        return kept


class SemiJoinPrune:
    """Bottom-up structural pruning of the candidate lists."""

    def __init__(self, intervals: _Intervals) -> None:
        self._intervals = intervals

    def prune(
        self,
        positive_nodes: list[PatternNode],
        candidates: dict[PatternNode, list[Node]],
    ) -> bool:
        """Prune in place; False when a candidate list empties."""
        for pattern_node in reversed(positive_nodes):
            required = [c for c in pattern_node.children if not c.negated]
            if not required:
                continue
            survivors = [
                data_node
                for data_node in candidates[pattern_node]
                if all(
                    self._has_axis_candidate(child, data_node, candidates)
                    for child in required
                )
            ]
            counters.incr(
                "match.semijoin_pruned",
                len(candidates[pattern_node]) - len(survivors),
            )
            if not survivors:
                return False
            candidates[pattern_node] = survivors
        return True

    def _has_axis_candidate(
        self,
        pattern_child: PatternNode,
        data_node: Node,
        candidates: dict[PatternNode, list[Node]],
    ) -> bool:
        child_candidates = candidates[pattern_child]
        if pattern_child.descendant:
            return any(
                self._intervals.is_descendant(c, data_node)
                for c in child_candidates
            )
        return any(c.parent is data_node for c in child_candidates)


class ProbabilityBound:
    """Incremental upper bound on a partial match's probability.

    A match fires only in worlds satisfying the conjunction of its
    mapped nodes' *closed* conditions (node + ancestors — the
    ancestor-condition index gives each closure in O(1)).  Over the
    distinct literals bound so far, the product of per-literal
    probabilities is that conjunction's exact probability when it is
    consistent, and a (positive) overestimate when it is not — either
    way an **upper bound** on anything the partial assignment can grow
    into, because extending the assignment only conjoins more literals
    and conjunction never raises probability.  (Negated subpatterns
    only lower the true probability further, so the bound stays valid
    for them too.)

    :meth:`bind`/:meth:`unbind` mirror the backtracking join's
    assign/retract: each bind multiplies in the probabilities of the
    closure's *new* literals and pushes an undo record; unbind restores
    the previous product exactly (a stack restore, not a division — a
    zero-probability literal would otherwise poison the product
    forever).
    """

    __slots__ = ("_lookup", "_probability", "_seen", "_stack", "_product")

    def __init__(self, closed_condition, event_probability) -> None:
        #: node -> interned closed Condition (the index's lookup).
        self._lookup = closed_condition
        #: event name -> probability (the event table's lookup).
        self._probability = event_probability
        self._seen: set = set()
        self._stack: list = []
        self._product = 1.0

    @property
    def current(self) -> float:
        """The bound for the literals bound so far."""
        return self._product

    def bind(self, node) -> float:
        """Fold *node*'s closed condition in; returns the new bound."""
        seen = self._seen
        product = self._product
        added: list = []
        probability = self._probability
        for literal in self._lookup(node).literals:
            if literal in seen:
                continue
            seen.add(literal)
            added.append(literal)
            p = probability(literal.event)
            product *= p if literal.positive else 1.0 - p
        self._stack.append((self._product, added))
        self._product = product
        return product

    def unbind(self) -> None:
        """Undo the most recent :meth:`bind` exactly."""
        product, added = self._stack.pop()
        seen = self._seen
        for literal in added:
            seen.discard(literal)
        self._product = product


class BacktrackJoin:
    """Backtracking enumeration over the plan's visit order.

    :meth:`iter_matches` is the streaming protocol: matches are yielded
    as the backtracking discovers them, so a consumer that stops early
    (``ResultSet.limit``, a handle's ``max_matches``) aborts the rest of
    the search instead of paying for a full enumeration.

    Probability-bounded enumeration (top-k / ``min_probability``): pass
    *bound* (a :class:`ProbabilityBound`) and *prune* (a callable on
    the bound's value) to :meth:`iter_matches` and every partial
    assignment whose upper bound the consumer rejects is cut — the
    whole subtree of the backtracking search below it is never visited.
    """

    def __init__(
        self,
        plan: Plan,
        intervals: _Intervals,
        candidates: dict[PatternNode, list[Node]],
        runtime: MatchConfig,
    ) -> None:
        self._plan = plan
        self._intervals = intervals
        self._candidates = candidates
        self._runtime = runtime
        self._join_groups = plan.pattern.join_variables()

    def iter_matches(self, *, bound=None, prune=None) -> Iterator[Match]:
        """Lazily yield matches in the plan's deterministic visit order.

        With *bound* and *prune* set, every candidate assignment first
        folds its node's closed condition into the bound; if
        ``prune(upper)`` rejects the resulting upper bound, the branch
        is abandoned before any deeper enumeration (and the bound is
        restored).  *prune* may close over mutable consumer state — a
        threshold-admission heap's k-th best rises as rows are
        admitted, so later branches face a tighter test.
        """
        mapping: dict[PatternNode, Node] = {}
        bindings: dict[str, str] = {}
        order = self._plan.order
        runtime = self._runtime
        early = self._plan.early_join_check
        pruning = bound is not None and prune is not None
        # One flag read per execution, not one per partial assignment.
        track = counters.enabled

        def assign(position: int) -> Iterator[Match]:
            if position == len(order):
                if early or self._joins_ok(mapping):
                    if track:
                        counters.incr("match.found")
                    yield Match(self._plan.pattern, dict(mapping))
                return
            pattern_node = order[position]
            for data_node in self._options(pattern_node, mapping):
                if track:
                    counters.incr("match.assignments")
                if runtime.honor_negation and any(
                    child.negated and find_embeddings(child, data_node)
                    for child in pattern_node.children
                ):
                    if track:
                        counters.incr("match.negation_pruned")
                    continue
                if pruning:
                    if prune(bound.bind(data_node)):
                        bound.unbind()
                        if track:
                            counters.incr("match.bound_pruned")
                        continue
                variable = pattern_node.variable
                joined = early and variable is not None and variable in self._join_groups
                if joined:
                    existing = bindings.get(variable)
                    if existing is not None and existing != data_node.value:
                        if pruning:
                            bound.unbind()
                        continue
                    fresh_binding = existing is None
                    if fresh_binding:
                        bindings[variable] = data_node.value
                mapping[pattern_node] = data_node
                yield from assign(position + 1)
                del mapping[pattern_node]
                if pruning:
                    bound.unbind()
                if joined and fresh_binding:
                    del bindings[variable]

        yield from assign(0)

    def run(self) -> list[Match]:
        matches = self.iter_matches()
        if self._runtime.max_matches is not None:
            return list(islice(matches, self._runtime.max_matches))
        return list(matches)

    def _options(
        self, pattern_node: PatternNode, mapping: dict[PatternNode, Node]
    ) -> list[Node]:
        candidates = self._candidates[pattern_node]
        parent = pattern_node.parent
        if parent is None:
            return candidates
        anchor = mapping[parent]
        if pattern_node.descendant:
            return [
                c for c in candidates if self._intervals.is_descendant(c, anchor)
            ]
        return [c for c in candidates if c.parent is anchor]

    def _joins_ok(self, mapping: dict[PatternNode, Node]) -> bool:
        for nodes in self._join_groups.values():
            values = {mapping[p].value for p in nodes}
            if len(values) != 1 or None in values:
                return False
        return True


def iter_plan(
    plan: Plan,
    root: Node,
    runtime: MatchConfig = DEFAULT_CONFIG,
    *,
    intervals: _Intervals | None = None,
    bound: ProbabilityBound | None = None,
    prune=None,
) -> Iterator[Match]:
    """Run *plan* against the tree at *root*, streaming matches lazily.

    This is the engine's streaming protocol: the candidate scans and the
    optional semi-join prepass run when iteration starts, then matches
    are yielded one at a time from the backtracking join.  A consumer
    that stops pulling (top-k queries) aborts the enumeration early —
    no wasted backtracking below the last match it asked for.

    *runtime* supplies the semantic knobs (``max_matches`` — applied
    here as a hard cap — and ``honor_negation``); the strategy toggles
    come from the plan.  *intervals* lets a long-lived caller
    (:class:`~repro.engine.QueryEngine`) reuse the document walk across
    executions; it must have been built for *root* in its current state.
    *bound*/*prune* switch on probability-bounded enumeration — see
    :meth:`BacktrackJoin.iter_matches`.
    """
    counters.incr("engine.plans_executed")
    pattern = plan.pattern
    join_vars = pattern.join_variables()
    if intervals is None:
        intervals = _Intervals(root)

    scan = (
        LabelIndexScan(intervals) if plan.use_label_index else FullScan(intervals)
    )
    candidates: dict[PatternNode, list[Node]] = {}
    positive = pattern.positive_nodes()
    for pattern_node in positive:
        kept = scan.scan(pattern_node, join_vars)
        if not kept:
            return
        candidates[pattern_node] = kept

    if pattern.anchored:
        anchored = [n for n in candidates[pattern.root] if n is root]
        if not anchored:
            return
        candidates[pattern.root] = anchored

    if plan.use_semijoin_pruning:
        if not SemiJoinPrune(intervals).prune(positive, candidates):
            return

    matches = BacktrackJoin(plan, intervals, candidates, runtime).iter_matches(
        bound=bound, prune=prune
    )
    if runtime.max_matches is not None:
        matches = islice(matches, runtime.max_matches)
    yield from matches


def execute_plan(
    plan: Plan,
    root: Node,
    runtime: MatchConfig = DEFAULT_CONFIG,
    *,
    intervals: _Intervals | None = None,
) -> list[Match]:
    """Run *plan* against the tree at *root*, returning all matches.

    Materializing wrapper around :func:`iter_plan` for callers that
    need the full match list (updates, the equivalence tests).
    """
    return list(iter_plan(plan, root, runtime, intervals=intervals))
