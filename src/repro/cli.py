"""Command-line interface to the probabilistic XML warehouse.

The paper's system is a warehouse with a query interface and an update
interface (slide 3); this CLI is the operational face of that
architecture::

    python -m repro init WH --root directory          # create a store
    python -m repro init WH --document doc.xml        # ... or from XML
    python -m repro query WH '/directory { person { name, email } }'
    python -m repro query WH '//person' --stream --limit 5   # lazy top-k rows
    python -m repro explain WH '//person { name[$n] }'  # show the query plan
    python -m repro update WH --xupdate tx.xml --confidence 0.85
    python -m repro simplify WH
    python -m repro compact WH                        # fold the WAL into a snapshot
    python -m repro stats WH                          # includes WAL depth/bytes
    python -m repro stats WH --json                   # ... machine-readable
    python -m repro serve-stats WH                    # serving-side counters
    python -m repro serve WH --port 8080              # HTTP/JSON front end
    python -m repro metrics WH                        # Prometheus exposition
    python -m repro metrics WH --format json          # ... structured dashboard
    python -m repro trace WH '//person' --last 3      # nested per-phase spans
    python -m repro history WH --tail 10
    python -m repro worlds WH                         # enumerate (small docs)
    python -m repro estimate WH '//email' --samples 2000

``query``, ``update`` and ``serve-stats`` are collection-aware: when
the path holds a collection (``repro.connect_collection``), queries fan
out across every document (rows prefixed with their document key, a
``--limit`` short-circuiting the fan-out), updates route to the
document named by ``--doc``, and serve-stats aggregates per-shard
serving counters.

Every command exits 0 on success; errors print a clean one-line message
on stderr (no traceback) with a distinct exit code per family:

* 2 — generic model/usage error (:class:`~repro.errors.ReproError`);
* 3 — pattern syntax error (:class:`~repro.errors.PatternSyntaxError`);
* 4 — corrupt on-disk state (:class:`~repro.errors.WarehouseCorruptError`);
* 5 — warehouse locked by another process
  (:class:`~repro.errors.WarehouseLockedError`);
* 6 — use of a closed session (:class:`~repro.errors.SessionClosedError`).

Two Unix conventions on top: a downstream that closes the pipe early
(``repro query … --stream | head -1``) exits 141 (128 + SIGPIPE) with
no traceback, and Ctrl-C exits 130 (128 + SIGINT) — in both cases the
streamed iteration is closed first, so its snapshot pin is released.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from contextlib import closing
from pathlib import Path

from repro.api import connect
from repro.obs import render_json, render_prometheus, render_trace
from repro.serve import Collection, connect_collection
from repro.core.montecarlo import estimate_query
from repro.core.semantics import to_possible_worlds
from repro.errors import (
    PatternSyntaxError,
    ReproError,
    SessionClosedError,
    WarehouseCorruptError,
    WarehouseLockedError,
)
from repro.tpwj.parser import parse_pattern
from repro.tpwj.pattern import Pattern
from repro.xmlio.parse import fuzzy_from_string
from repro.xmlio.serialize import fuzzy_to_string, plain_to_string

__all__ = ["main", "build_parser", "exit_code_for"]

#: Most-derived first: the first matching family decides the exit code.
_EXIT_CODES: tuple[tuple[type[ReproError], int], ...] = (
    (PatternSyntaxError, 3),
    (WarehouseCorruptError, 4),
    (WarehouseLockedError, 5),
    (SessionClosedError, 6),
)


def exit_code_for(exc: ReproError) -> int:
    """The CLI exit code for a library error (2 for the generic family)."""
    for family, code in _EXIT_CODES:
        if isinstance(exc, family):
            return code
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic XML warehouse (Abiteboul & Senellart, EDBT 2006)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser("init", help="create a new warehouse")
    init.add_argument("path", type=Path)
    source = init.add_mutually_exclusive_group(required=True)
    source.add_argument("--root", help="label of an empty document root")
    source.add_argument(
        "--document", type=Path, help="probabilistic XML file to load"
    )

    query = commands.add_parser("query", help="evaluate a TPWJ query")
    query.add_argument("path", type=Path)
    query.add_argument("pattern", help="TPWJ text syntax")
    query.add_argument("--limit", type=int, default=None, help="max answers shown")
    query.add_argument(
        "--xml", action="store_true", help="print answers as XML instead of canonical"
    )
    query.add_argument(
        "--stream",
        action="store_true",
        help="print match rows lazily in match order (with --limit pushed "
        "into the engine's streaming protocol) instead of ranked answers",
    )
    query.add_argument(
        "--no-planner",
        action="store_true",
        help="bypass the cost-based engine (fixed-strategy matcher)",
    )
    query.add_argument(
        "--top-k",
        type=int,
        default=None,
        dest="top_k",
        help="the k most probable answers, branch-and-bound pruned "
        "(rows print in descending probability)",
    )
    query.add_argument(
        "--min-probability",
        type=float,
        default=None,
        dest="min_probability",
        help="only answers with probability >= P (the threshold is "
        "pushed into the join as a pruning bound)",
    )
    query.add_argument(
        "--estimate",
        action="store_true",
        help="anytime Monte-Carlo estimates (probability ± stderr) "
        "instead of exact Shannon probabilities",
    )
    query.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="estimate convergence target at 3 sigma (implies --estimate)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        dest="deadline_ms",
        help="estimate sampling time budget in milliseconds "
        "(implies --estimate)",
    )

    explain = commands.add_parser(
        "explain", help="show the engine's plan and cost estimates for a query"
    )
    explain.add_argument("path", type=Path)
    explain.add_argument("pattern", help="TPWJ text syntax")

    update = commands.add_parser(
        "update", help="apply an XUpdate transaction (or an xu:batch of them)"
    )
    update.add_argument("path", type=Path)
    update.add_argument(
        "--xupdate",
        type=Path,
        required=True,
        help="transaction XML (xu:modifications or xu:batch)",
    )
    update.add_argument(
        "--confidence", type=float, default=None, help="override the confidence"
    )
    update.add_argument(
        "--doc",
        default=None,
        help="document key to route to (required when PATH is a collection)",
    )

    simplify = commands.add_parser("simplify", help="run fuzzy data simplification")
    simplify.add_argument("path", type=Path)

    compact = commands.add_parser(
        "compact", help="fold pending WAL records into a fresh snapshot"
    )
    compact.add_argument("path", type=Path)

    stats = commands.add_parser("stats", help="document and log statistics")
    stats.add_argument("path", type=Path)
    stats.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    serve = commands.add_parser(
        "serve",
        help="serve the warehouse (or collection) over HTTP/JSON: "
        "POST /query, POST /update, GET /stats, /metrics, /healthz; "
        "SIGTERM drains gracefully",
    )
    serve.add_argument("path", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="query worker threads (default: cores, clamped to [2, 8])",
    )
    serve.add_argument(
        "--shard-processes",
        type=int,
        default=None,
        metavar="N",
        help="serve a collection with N worker processes behind a "
        "consistent-hash ring instead of the in-process thread pool "
        "(single-core hosts fall back to threads)",
    )
    serve.add_argument(
        "--replication-factor",
        type=int,
        default=1,
        metavar="R",
        help="with --shard-processes: keep every document on R ring "
        "successors so reads fail over when a worker dies",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admitted requests beyond the workers before 429 load-shedding",
    )
    serve.add_argument(
        "--deadline-ms",
        type=int,
        default=30_000,
        help="default per-query deadline (requests override via timeout_ms)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="seconds an idle keep-alive connection is kept open",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds a drain waits for in-flight requests before closing",
    )

    serve_stats = commands.add_parser(
        "serve-stats",
        help="serving-side counters (read sessions, caches, WAL; "
        "per-document for collections)",
    )
    serve_stats.add_argument("path", type=Path)
    serve_stats.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    metrics = commands.add_parser(
        "metrics",
        help="export the instrument panel (counters, gauges, latency "
        "histograms) for the warehouse or collection",
    )
    metrics.add_argument("path", type=Path)
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="prom = Prometheus text exposition (default), json = "
        "structured dashboard with slow queries and recent traces",
    )

    trace = commands.add_parser(
        "trace",
        help="show recent span traces; with a PATTERN, execute that "
        "query first so its trace is captured",
    )
    trace.add_argument("path", type=Path)
    trace.add_argument(
        "pattern",
        nargs="?",
        default=None,
        help="TPWJ query to execute and trace (optional)",
    )
    trace.add_argument(
        "--last", type=int, default=5, help="show at most the last N traces"
    )

    history = commands.add_parser("history", help="show the transaction log")
    history.add_argument("path", type=Path)
    history.add_argument("--tail", type=int, default=None, help="last N entries only")

    worlds = commands.add_parser("worlds", help="enumerate the possible worlds")
    worlds.add_argument("path", type=Path)

    estimate = commands.add_parser("estimate", help="Monte-Carlo query estimation")
    estimate.add_argument("path", type=Path)
    estimate.add_argument("pattern")
    estimate.add_argument("--samples", type=int, default=1000)
    estimate.add_argument("--seed", type=int, default=0)

    export = commands.add_parser("export", help="print the document as XML")
    export.add_argument("path", type=Path)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # User/model errors get one clean line, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except BrokenPipeError:
        # ``repro query … | head -1``: downstream closed the pipe.  The
        # streaming loops release their pins via closing(); here we only
        # have to exit quietly — point stdout at devnull so the
        # interpreter's exit-time flush cannot raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            pass  # stdout already gone or not a real file (e.g. captured)
        return 141  # 128 + SIGPIPE, the shell's convention
    except KeyboardInterrupt:
        return 130  # 128 + SIGINT; quiet, like every well-behaved filter


def _dispatch(args: argparse.Namespace) -> int:
    handlers = {
        "init": _cmd_init,
        "query": _cmd_query,
        "explain": _cmd_explain,
        "update": _cmd_update,
        "serve": _cmd_serve,
        "simplify": _cmd_simplify,
        "compact": _cmd_compact,
        "stats": _cmd_stats,
        "serve-stats": _cmd_serve_stats,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "history": _cmd_history,
        "worlds": _cmd_worlds,
        "estimate": _cmd_estimate,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


def _cmd_init(args: argparse.Namespace) -> int:
    if args.document is not None:
        document = fuzzy_from_string(args.document.read_text(encoding="utf-8"))
        session_kwargs = {"document": document}
    else:
        session_kwargs = {"root": args.root}
    with connect(args.path, create=True, **session_kwargs) as session:
        print(f"created warehouse at {args.path} ({session.stats()['nodes']} nodes)")
    return 0


def _parse_pattern_arg(text: str) -> Pattern:
    """Shared pattern parsing for query/explain/estimate.

    Wraps parse failures with the offending text so the CLI error
    message identifies the argument, not just the position.
    """
    try:
        return parse_pattern(text)
    except PatternSyntaxError as exc:
        raise PatternSyntaxError(f"invalid pattern {text!r}: {exc}") from exc


def _query_options(args: argparse.Namespace):
    """The QueryOptions for the new flags, or None for the legacy paths.

    ``--top-k`` folds into ``limit`` (strictest wins) and switches the
    order to probability; validation errors surface as the aggregated
    :class:`~repro.api.options.QueryOptionsError`.
    """
    from repro.api import QueryOptions

    if args.top_k is None and args.min_probability is None:
        return None
    limit = args.limit
    if args.top_k is not None:
        limit = args.top_k if limit is None else min(limit, args.top_k)
    return QueryOptions(
        limit=limit,
        order="probability" if args.top_k is not None else "document",
        min_probability=args.min_probability,
        plan="fixed" if args.no_planner else "auto",
    )


def _print_estimate(estimate, *, xml: bool, document: str | None = None) -> None:
    prefix = "" if document is None else f"{document}  "
    if xml:
        where = "" if document is None else f"{document}: "
        print(
            f"<!-- {where}P = {estimate.probability:.6f} "
            f"± {estimate.stderr:.6f} ({estimate.samples} samples) -->"
        )
        print(plain_to_string(estimate.tree))
    else:
        print(
            f"{prefix}{estimate.probability:.6f} ±{estimate.stderr:.6f} "
            f"({estimate.samples} samples)  {estimate.tree.canonical()}"
        )


def _cmd_query(args: argparse.Namespace) -> int:
    pattern = _parse_pattern_arg(args.pattern)
    options = _query_options(args)
    estimating = (
        args.estimate or args.epsilon is not None or args.deadline_ms is not None
    )
    if Collection.is_collection(args.path):
        return _cmd_query_collection(args, pattern, options, estimating)
    empty = True
    with connect(args.path) as session:
        if options is not None:
            results = session.query(pattern, options=options)
        else:
            results = session.query(pattern, planner=not args.no_planner)
        if estimating:
            if options is None and args.limit is not None:
                results = results.limit(args.limit)
            for estimate in results.estimate(
                epsilon=args.epsilon, deadline_ms=args.deadline_ms
            ):
                empty = False
                _print_estimate(estimate, xml=args.xml)
        elif args.stream or (options is not None and options.is_bounded):
            # Row mode: lazy, match order, limit pushed into the engine.
            if args.limit is not None:
                results = results.limit(args.limit)
            # closing(): a BrokenPipeError (| head) or Ctrl-C must still
            # release the stream's iteration pin before the session goes.
            with closing(iter(results)) as rows:
                for row in rows:
                    empty = False
                    if args.xml:
                        print(f"<!-- P = {row.probability:.6f} -->")
                        print(plain_to_string(row.tree))
                    else:
                        print(f"{row.probability:.6f}  {row.tree.canonical()}")
        else:
            # Answer mode: full evaluation, ranked by probability.
            answers = results.answers()
            shown = answers if args.limit is None else answers[: args.limit]
            for answer in shown:
                empty = False
                if args.xml:
                    print(f"<!-- P = {answer.probability:.6f} -->")
                    print(plain_to_string(answer.tree))
                else:
                    print(f"{answer.probability:.6f}  {answer.tree.canonical()}")
            empty = not answers
    if empty:
        print("(no answers)")
    return 0


def _cmd_query_collection(
    args: argparse.Namespace, pattern: Pattern, options=None, estimating=False
) -> int:
    """Fan a query out across every document of a collection.

    Rows arrive in deterministic (document, row) order — or globally by
    descending probability under ``--top-k`` — prefixed with their
    document key; limits and probability floors are pushed into every
    shard and short-circuit the fan-out.  ``--stream`` is implied
    (cross-shard answer aggregation is meaningless: independent event
    tables), and without it ranked per-document answers are printed
    instead.
    """
    empty = True
    with connect_collection(args.path) as collection:
        if options is not None:
            results = collection.query(pattern, options=options)
        else:
            results = collection.query(pattern)
            if args.limit is not None:
                results = results.limit(args.limit)
        if estimating:
            for key, estimate in results.estimate(
                epsilon=args.epsilon, deadline_ms=args.deadline_ms
            ):
                empty = False
                _print_estimate(estimate, xml=args.xml, document=key)
        elif args.stream or (options is not None and options.is_bounded):
            # closing(): on a broken pipe the fan-out's short-circuit
            # finally must run (abandon flag, shard futures cancelled).
            with closing(iter(results)) as rows:
                for row in rows:
                    empty = False
                    if args.xml:
                        print(f"<!-- {row.document}: P = {row.probability:.6f} -->")
                        print(plain_to_string(row.tree))
                    else:
                        print(
                            f"{row.document}  {row.probability:.6f}  "
                            f"{row.tree.canonical()}"
                        )
        else:
            merged = results.answers()
            if args.limit is not None:
                merged = merged[: args.limit]
            for key, answer in merged:
                empty = False
                if args.xml:
                    print(f"<!-- {key}: P = {answer.probability:.6f} -->")
                    print(plain_to_string(answer.tree))
                else:
                    print(
                        f"{key}  {answer.probability:.6f}  "
                        f"{answer.tree.canonical()}"
                    )
    if empty:
        print("(no answers)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    pattern = _parse_pattern_arg(args.pattern)
    with connect(args.path) as session:
        print(session.explain(pattern))
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.updates.transaction import TransactionBatch
    from repro.xmlio.xupdate import updates_from_string

    text = args.xupdate.read_text(encoding="utf-8")
    parsed = updates_from_string(text)
    with ExitStack() as stack:
        if Collection.is_collection(args.path):
            if args.doc is None:
                raise ReproError(
                    f"{args.path} is a collection: route the update with "
                    "--doc KEY"
                )
            collection = stack.enter_context(connect_collection(args.path))
            session = collection.document(args.doc)
        else:
            if args.doc is not None:
                raise ReproError("--doc only applies to collections")
            session = stack.enter_context(connect(args.path))
        if isinstance(parsed, TransactionBatch):
            reports = session.update_many(parsed, confidence=args.confidence)
            print(
                f"batch of {len(reports)}: "
                f"applied: {sum(1 for r in reports if r.applied)}  "
                f"matches: {sum(r.matches for r in reports)}  "
                f"inserted nodes: {sum(r.inserted_nodes for r in reports)}  "
                f"survivor copies: {sum(r.survivor_copies for r in reports)}"
            )
            return 0
        report = session.update(parsed, confidence=args.confidence)
        print(
            f"matches: {report.matches}  applied: {report.applied}  "
            f"inserted nodes: {report.inserted_nodes}  "
            f"survivor copies: {report.survivor_copies}"
            + (f"  event: {report.confidence_event}" if report.confidence_event else "")
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the HTTP package borrows the CLI's exit-code
    # mapping for its error payloads, so the import must stay lazy.
    from repro.serve.http import run_server

    return run_server(
        args.path,
        host=args.host,
        port=args.port,
        workers=args.workers,
        shard_processes=args.shard_processes,
        replication_factor=args.replication_factor,
        queue_depth=args.queue_depth,
        default_deadline=args.deadline_ms / 1000.0,
        idle_timeout=args.idle_timeout,
        drain_grace=args.drain_grace,
    )


def _cmd_simplify(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        report = session.simplify()
        print(
            f"nodes: {report.nodes_before} -> {report.nodes_after}  "
            f"literals: {report.literals_before} -> {report.literals_after}  "
            f"events collected: {report.collected_events}"
        )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        summary = session.compact()
        print(
            f"compacted: folded {summary['folded_records']} WAL records  "
            f"snapshot sequence: {summary['sequence']}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        info = session.stats()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        for key, value in info.items():
            print(f"{key}: {value}")
    return 0


#: The serving-side counters serve-stats surfaces, in display order.
_SERVE_KEYS = (
    "sequence",
    "nodes",
    "declared_events",
    "read_sessions",
    "wal_depth",
    "wal_bytes",
    "shannon_cache_entries",
    "shannon_cache_hits",
    "shannon_cache_misses",
)


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    if Collection.is_collection(args.path):
        with connect_collection(args.path) as collection:
            info = collection.stats()
            info["health"] = collection.health()
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"collection: {args.path}  documents: {info['document_count']}")
        pool = info.get("pool")
        if pool is not None:
            print(
                f"pool: {pool['workers']} workers  "
                f"active: {pool['active_tasks']}  "
                f"submitted: {pool['submitted_tasks']}"
            )
        cluster = info.get("cluster")
        if cluster is not None:
            line = f"cluster: {cluster['processes']} worker processes"
            replication = cluster.get("replication")
            if replication and replication.get("factor", 1) > 1:
                line += (
                    f"  replication: x{replication['factor']}"
                    f"  stale replicas: {replication['stale_replicas']}"
                )
            print(line)
        totals = info["totals"]
        print(
            f"totals: nodes: {totals['nodes']}  "
            f"events: {totals['declared_events']}  "
            f"commits: {totals['sequence']}  "
            f"read sessions: {totals['read_sessions']}"
        )
        for key, shard in sorted(info["health"]["shards"].items()):
            print(
                f"  health {key}: alive: {shard['alive']}  "
                f"wal_depth: {shard['wal_depth']}  "
                f"respawns: {shard['respawns']}"
            )
        for key, document in info["documents"].items():
            values = "  ".join(f"{name}: {document[name]}" for name in _SERVE_KEYS)
            print(f"  {key}: {values}")
        return 0
    with connect(args.path) as session:
        info = session.stats()
    if args.json:
        print(
            json.dumps(
                {name: info[name] for name in _SERVE_KEYS},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"warehouse: {args.path}")
    for name in _SERVE_KEYS:
        print(f"{name}: {info[name]}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    # Opening the store populates the panel for this process: recovery
    # replay timing, document gauges (via stats()), and — through the
    # catalogue — every declared series at zero, so a scrape of a fresh
    # process still sees the full schema.
    if Collection.is_collection(args.path):
        with connect_collection(args.path) as collection:
            collection.stats()
            obs = collection.observability
    else:
        with connect(args.path) as session:
            session.stats()
            obs = session.observability
    if obs is None:
        raise ReproError("no observability panel attached")
    if args.format == "json":
        print(render_json(obs.metrics, obs))
    else:
        print(render_prometheus(obs.metrics), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        obs = session.observability
        if obs is None or not obs.tracer.enabled:
            raise ReproError("tracing is disabled for this warehouse")
        if args.pattern is not None:
            session.query(_parse_pattern_arg(args.pattern)).all()
        traces = obs.tracer.recent(args.last)
    if not traces:
        print("(no traces)")
        return 0
    for index, span in enumerate(traces):
        if index:
            print()
        print(render_trace(span))
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        entries = session.history()
    if args.tail is not None:
        entries = entries[-args.tail :]
    for entry in entries:
        kind = entry.get("kind", "?")
        sequence = entry.get("sequence", "?")
        extra = ""
        if kind == "update":
            extra = (
                f"  confidence={entry.get('confidence')}"
                f"  matches={entry.get('matches')}"
            )
        elif kind == "simplify":
            extra = f"  nodes={entry.get('nodes_before')}->{entry.get('nodes_after')}"
        print(f"#{sequence}  {kind}{extra}")
    return 0


def _cmd_worlds(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        worlds = to_possible_worlds(session.document)
    for world in worlds:
        print(f"{world.probability:.6f}  {world.tree.canonical()}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        estimates = estimate_query(
            session.document,
            _parse_pattern_arg(args.pattern),
            samples=args.samples,
            rng=random.Random(args.seed),
        )
    for estimate in estimates:
        print(
            f"{estimate.probability:.4f} ± {estimate.stderr:.4f}  "
            f"{estimate.tree.canonical()}"
        )
    if not estimates:
        print("(no answers observed)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    with connect(args.path) as session:
        print(fuzzy_to_string(session.document))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
