"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses mirror the subsystems described in DESIGN.md: tree
construction, the event algebra, query parsing/evaluation, update
application, XML (de)serialization and warehouse storage.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TreeError",
    "EventError",
    "UnknownEventError",
    "InvalidProbabilityError",
    "InconsistentConditionError",
    "QueryError",
    "PatternSyntaxError",
    "QueryCancelledError",
    "QueryParseError",
    "UpdateError",
    "XMLFormatError",
    "WarehouseError",
    "WarehouseLockedError",
    "WarehouseCorruptError",
    "SessionClosedError",
    "ShardUnavailableError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class TreeError(ReproError):
    """Invalid tree construction or manipulation (e.g. cycles, bad labels)."""


class EventError(ReproError):
    """Base class for errors in the probabilistic event algebra."""


class UnknownEventError(EventError):
    """An event name was used that is not registered in the event table."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown event: {name!r}")
        self.name = name


class InvalidProbabilityError(EventError):
    """A probability outside the closed interval [0, 1] was supplied."""

    def __init__(self, value: float) -> None:
        super().__init__(f"probability must lie in [0, 1], got {value!r}")
        self.value = value


class InconsistentConditionError(EventError):
    """A condition simultaneously requires an event and its negation."""


class QueryError(ReproError):
    """Invalid query structure or evaluation failure."""


class PatternSyntaxError(QueryError):
    """The TPWJ text syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


#: Backwards-compatible alias; the canonical name is
#: :class:`PatternSyntaxError` since the session API unification.
QueryParseError = PatternSyntaxError


class QueryCancelledError(QueryError):
    """A streamed query was abandoned by its abort hook before exhaustion.

    Raised from inside a :class:`~repro.api.results.RowStream` opened
    with an *abort* callable (see :meth:`ResultSet.stream`) when that
    callable returns true between rows — the serving layer's deadline
    and disconnect cancellation path.  The stream's iteration pin is
    released before the error propagates.
    """


class UpdateError(ReproError):
    """Invalid update transaction or application failure."""


class XMLFormatError(ReproError):
    """A serialized document or transaction does not follow the expected dialect."""


class WarehouseError(ReproError):
    """Base class for warehouse storage failures."""


class WarehouseLockedError(WarehouseError):
    """Another process holds the warehouse lock."""


class WarehouseCorruptError(WarehouseError):
    """The on-disk state failed an integrity check."""


class SessionClosedError(WarehouseError):
    """A session, snapshot or warehouse handle was used after close().

    Subclasses :class:`WarehouseError` so code that treated the old
    ``WarehouseError("warehouse handle is closed")`` as a warehouse
    failure keeps catching it.
    """


class ShardUnavailableError(WarehouseError):
    """A process-backed shard died (or is respawning) mid-request.

    The shard's acknowledged commits are durable — the supervisor
    respawns the worker and WAL replay restores them — so the request
    that observed the dead pipe is safe to retry once the shard is
    re-admitted.  :attr:`retryable` marks that contract for clients and
    the HTTP error body.
    """

    retryable = True
