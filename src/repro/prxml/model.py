"""PrXML-style distributional documents (``ind`` / ``mux`` nodes).

The fuzzy-tree model attaches conditions to ordinary nodes.  The
probabilistic-XML literature that followed this paper (by the same
authors) popularised an alternative surface syntax: *distributional
nodes* embedded in the document —

* ``ind``: each child is kept independently with its own probability;
* ``mux``: at most one child is kept, chosen by a probability
  distribution (summing to at most 1; the remainder is "none").

This subpackage implements that family as a front-end: a
:class:`PDocument` is a tree of regular and distributional nodes, and
:func:`repro.prxml.compile.compile_to_fuzzy` translates it into the
paper's fuzzy-tree representation (fresh events for ``ind`` choices,
first-success selector chains for ``mux``), after which every engine in
the library — queries, updates, simplification, the warehouse — applies
unchanged.  The translation is validated by comparing possible-worlds
distributions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ReproError

__all__ = ["PNode", "PRegular", "PInd", "PMux", "PDocument"]


class PNode:
    """Base class for PrXML nodes (regular or distributional)."""

    __slots__ = ("_children", "_parent")

    def __init__(self) -> None:
        self._children: list[PNode] = []
        self._parent: PNode | None = None

    @property
    def children(self) -> tuple["PNode", ...]:
        return tuple(self._children)

    @property
    def parent(self) -> "PNode | None":
        return self._parent

    def add_child(self, child: "PNode") -> "PNode":
        if not isinstance(child, PNode):
            raise ReproError(f"expected a PNode, got {type(child).__name__}")
        if child._parent is not None:
            raise ReproError("PrXML node already has a parent")
        self._children.append(child)
        child._parent = self
        return child

    def iter(self) -> Iterator["PNode"]:
        stack: list[PNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def clone(self) -> "PNode":
        raise NotImplementedError


class PRegular(PNode):
    """An ordinary data node (label, optional leaf value)."""

    __slots__ = ("label", "value")

    def __init__(
        self,
        label: str,
        value: str | None = None,
        children: Iterable[PNode] = (),
    ) -> None:
        super().__init__()
        if not isinstance(label, str) or not label:
            raise ReproError(f"label must be a non-empty string, got {label!r}")
        if value is not None and not isinstance(value, str):
            raise ReproError(f"value must be a string or None, got {value!r}")
        self.label = label
        self.value = value
        for child in children:
            self.add_child(child)
        if self.value is not None and self._children:
            raise ReproError("a valued PrXML node cannot have children (no mixed content)")

    def add_child(self, child: PNode) -> PNode:
        if getattr(self, "value", None) is not None:
            raise ReproError("a valued PrXML node cannot have children (no mixed content)")
        return super().add_child(child)

    def clone(self) -> "PRegular":
        copy = PRegular(self.label, self.value)
        for child in self._children:
            copy.add_child(child.clone())
        return copy

    def __repr__(self) -> str:
        return f"PRegular({self.label!r})"


def _check_probability(value: float, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(f"{where}: probability must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"{where}: probability {value} outside [0, 1]")
    return value


class PInd(PNode):
    """An independent-choice distributional node.

    Each child is kept with its associated probability, independently
    of the others.  ``ind`` nodes are transparent: their surviving
    children attach to the nearest regular ancestor.
    """

    __slots__ = ("probabilities",)

    def __init__(self) -> None:
        super().__init__()
        self.probabilities: list[float] = []

    def add(self, child: PNode, probability: float) -> PNode:
        self.probabilities.append(_check_probability(probability, "ind child"))
        return super().add_child(child)

    def add_child(self, child: PNode) -> PNode:  # pragma: no cover - guarded API
        raise ReproError("use PInd.add(child, probability)")

    def clone(self) -> "PInd":
        copy = PInd()
        for child, probability in zip(self._children, self.probabilities):
            copy.add(child.clone(), probability)
        return copy

    def __repr__(self) -> str:
        return f"PInd({len(self._children)} choices)"


class PMux(PNode):
    """A mutually-exclusive-choice distributional node.

    At most one child is kept; child ``i`` is chosen with its
    probability, and with the remaining mass no child is kept.  The
    probabilities must sum to at most 1.
    """

    __slots__ = ("probabilities",)

    def __init__(self) -> None:
        super().__init__()
        self.probabilities: list[float] = []

    def add(self, child: PNode, probability: float) -> PNode:
        probability = _check_probability(probability, "mux child")
        if sum(self.probabilities) + probability > 1.0 + 1e-9:
            raise ReproError(
                "mux child probabilities exceed 1 "
                f"(have {sum(self.probabilities)}, adding {probability})"
            )
        self.probabilities.append(probability)
        return super().add_child(child)

    def add_child(self, child: PNode) -> PNode:  # pragma: no cover - guarded API
        raise ReproError("use PMux.add(child, probability)")

    def clone(self) -> "PMux":
        copy = PMux()
        for child, probability in zip(self._children, self.probabilities):
            copy.add(child.clone(), probability)
        return copy

    def __repr__(self) -> str:
        return f"PMux({len(self._children)} alternatives)"


class PDocument:
    """A PrXML document: a regular root over a mixed node tree.

    Validation rules:

    * the root is a regular node (documents always have their root);
    * distributional nodes are never leaves pointlessly (allowed but
      meaningless — flagged) and never carry values;
    * a distributional node's child may be regular or distributional
      (``ind`` under ``mux`` etc. compose freely).
    """

    __slots__ = ("root",)

    def __init__(self, root: PRegular) -> None:
        if not isinstance(root, PRegular):
            raise ReproError("a PrXML document root must be a regular node")
        if root.parent is not None:
            raise ReproError("the root must not have a parent")
        self.root = root

    def size(self) -> int:
        return sum(1 for _ in self.root.iter())

    def distributional_count(self) -> int:
        return sum(1 for n in self.root.iter() if isinstance(n, (PInd, PMux)))

    def __repr__(self) -> str:
        return (
            f"PDocument({self.size()} nodes, "
            f"{self.distributional_count()} distributional)"
        )
