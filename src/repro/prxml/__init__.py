"""PrXML-style distributional documents (``ind``/``mux``) — an extension.

A front-end surface syntax for probabilistic XML that compiles into the
paper's fuzzy-tree representation (see :mod:`repro.prxml.compile`), so
every engine of the library applies unchanged.
"""

from repro.prxml.compile import compile_to_fuzzy
from repro.prxml.model import PDocument, PInd, PMux, PNode, PRegular

__all__ = ["PNode", "PRegular", "PInd", "PMux", "PDocument", "compile_to_fuzzy"]
