"""Compilation of PrXML documents into fuzzy trees.

Distributional nodes are *transparent*: they do not appear in the data,
they only decide which of their descendants exist.  The translation
walks the PrXML tree accumulating, for every regular node, the
condition under which it is attached to its nearest regular ancestor:

* crossing an ``ind`` edge with probability ``p`` conjoins a fresh
  event of probability ``p``;
* crossing a ``mux`` node allocates a first-success selector chain
  (``x1``, ``¬x1 x2``, …) over fresh events with the appropriate
  conditional probabilities — exactly the slide-12 expressiveness
  construction — and conjoins the selected branch's condition;
* regular-to-regular edges conjoin nothing.

The result is a :class:`~repro.core.fuzzy_tree.FuzzyTree` with the same
possible-worlds distribution (checked exhaustively by the tests), on
which every engine of the library operates unchanged.
"""

from __future__ import annotations

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.errors import ReproError
from repro.events.condition import Condition
from repro.events.literal import Literal
from repro.events.table import EventTable
from repro.prxml.model import PDocument, PInd, PMux, PNode, PRegular

__all__ = ["compile_to_fuzzy"]


def compile_to_fuzzy(document: PDocument, prefix: str = "d") -> FuzzyTree:
    """Translate a PrXML document into an equivalent fuzzy tree.

    Fresh events are named ``{prefix}1``, ``{prefix}2``, … in traversal
    order, so compilation is deterministic.
    """
    events = EventTable()
    root = FuzzyNode(document.root.label, document.root.value)
    _attach_children(document.root, root, Condition(), events, prefix)
    return FuzzyTree(root, events)


def _attach_children(
    source: PNode,
    target: FuzzyNode,
    inherited: Condition,
    events: EventTable,
    prefix: str,
) -> None:
    """Attach the regular descendants of *source* under *target*.

    ``inherited`` is the condition accumulated from distributional
    nodes between *target*'s regular source and *source*'s children.
    """
    if isinstance(source, PRegular):
        child_conditions = [(child, inherited) for child in source.children]
    elif isinstance(source, PInd):
        child_conditions = []
        for child, probability in zip(source.children, source.probabilities):
            condition = _conjoin_event(inherited, events, probability, prefix)
            child_conditions.append((child, condition))
    elif isinstance(source, PMux):
        child_conditions = list(
            zip(source.children, _mux_selectors(source, inherited, events, prefix))
        )
    else:  # pragma: no cover - the model has exactly three node kinds
        raise ReproError(f"unknown PrXML node type: {type(source).__name__}")

    for child, condition in child_conditions:
        if isinstance(child, PRegular):
            fuzzy_child = FuzzyNode(child.label, child.value, condition)
            target.add_child(fuzzy_child)
            _attach_children(child, fuzzy_child, Condition(), events, prefix)
        else:
            # Distributional under distributional: stays transparent,
            # conditions accumulate.
            _attach_children(child, target, condition, events, prefix)


def _conjoin_event(
    inherited: Condition, events: EventTable, probability: float, prefix: str
) -> Condition:
    if probability == 1.0:
        return inherited
    name = events.fresh(probability, prefix=prefix)
    return inherited.with_literal(Literal(name, True))


def _mux_selectors(
    node: PMux, inherited: Condition, events: EventTable, prefix: str
) -> list[Condition]:
    """First-success selector conditions for a mux node's children."""
    selectors: list[Condition] = []
    negatives: list[Literal] = []
    remaining = 1.0
    for probability in node.probabilities:
        conditional = probability / remaining if remaining > 1e-12 else 0.0
        conditional = min(1.0, max(0.0, conditional))
        if conditional == 1.0:
            # This alternative absorbs all remaining mass: no new event.
            selectors.append(
                Condition(set(inherited.literals) | set(negatives))
            )
            remaining = 0.0
            continue
        name = events.fresh(conditional, prefix=prefix)
        selectors.append(
            Condition(
                set(inherited.literals) | set(negatives) | {Literal(name, True)}
            )
        )
        negatives.append(Literal(name, False))
        remaining -= probability
    return selectors
