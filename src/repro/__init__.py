"""repro — a reproduction of Abiteboul & Senellart, *Querying and
Updating Probabilistic Information in XML* (EDBT 2006).

The library implements the paper end to end:

* **fuzzy trees** (:mod:`repro.core`) — unordered data trees whose
  nodes carry conjunctive event conditions, with an event table;
* the **possible-worlds model** (:mod:`repro.pworlds`) — the semantic
  foundation, used as ground truth;
* **TPWJ queries** (:mod:`repro.tpwj`) — tree patterns with value
  joins, evaluated both on worlds and directly on fuzzy trees;
* **probabilistic updates** (:mod:`repro.updates`, applied via
  :func:`repro.apply_update`) — insert/delete transactions with a
  confidence;
* an **XML dialect** (:mod:`repro.xmlio`) and a filesystem
  **warehouse** (:mod:`repro.warehouse`) matching the paper's system
  architecture;
* **workload generators** (:mod:`repro.workloads`) simulating the
  imprecise modules of the paper's introduction.

Quickstart::

    from repro import (FuzzyNode, FuzzyTree, EventTable, Condition,
                       parse_pattern, query_fuzzy_tree)

    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode("A", children=[
        FuzzyNode("B", condition=Condition.of("w1", "!w2")),
        FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
    ])
    doc = FuzzyTree(root, events)
    for answer in query_fuzzy_tree(doc, parse_pattern("/A { //D }")):
        print(answer.probability, answer.tree.canonical())
"""

from repro.core import (
    ALL_RULES,
    AnswerEstimate,
    FuzzyAnswer,
    FuzzyNode,
    FuzzyTree,
    SimplifyReport,
    UpdateReport,
    apply_update,
    estimate_query,
    from_possible_worlds,
    match_condition,
    query_fuzzy_tree,
    simplify,
    to_possible_worlds,
)
from repro.engine import (
    Plan,
    PlanCache,
    QueryEngine,
    StatsDelta,
    TreeStats,
    build_plan,
    collect_stats,
    execute_plan,
)
from repro.errors import (
    EventError,
    InconsistentConditionError,
    InvalidProbabilityError,
    QueryError,
    QueryParseError,
    ReproError,
    TreeError,
    UnknownEventError,
    UpdateError,
    WarehouseError,
    XMLFormatError,
)
from repro.events import (
    TRUE,
    Condition,
    Dnf,
    EventTable,
    Literal,
    complement_as_disjoint_conditions,
    dnf_probability,
)
from repro.pworlds import (
    PossibleWorlds,
    World,
    query_possible_worlds,
    update_possible_worlds,
)
from repro.tpwj import (
    Match,
    MatchConfig,
    Pattern,
    PatternNode,
    find_matches,
    format_pattern,
    parse_pattern,
)
from repro.trees import Node, tree
from repro.updates import (
    DeleteOperation,
    InsertOperation,
    TransactionBatch,
    UpdateTransaction,
    apply_deterministic,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TreeError",
    "EventError",
    "UnknownEventError",
    "InvalidProbabilityError",
    "InconsistentConditionError",
    "QueryError",
    "QueryParseError",
    "UpdateError",
    "XMLFormatError",
    "WarehouseError",
    # trees
    "Node",
    "tree",
    # events
    "Literal",
    "Condition",
    "TRUE",
    "EventTable",
    "Dnf",
    "dnf_probability",
    "complement_as_disjoint_conditions",
    # possible worlds
    "PossibleWorlds",
    "World",
    "query_possible_worlds",
    "update_possible_worlds",
    # queries
    "Pattern",
    "PatternNode",
    "parse_pattern",
    "format_pattern",
    "find_matches",
    "Match",
    "MatchConfig",
    # updates
    "InsertOperation",
    "DeleteOperation",
    "UpdateTransaction",
    "TransactionBatch",
    "apply_deterministic",
    # core
    "FuzzyNode",
    "FuzzyTree",
    "to_possible_worlds",
    "from_possible_worlds",
    "FuzzyAnswer",
    "query_fuzzy_tree",
    "match_condition",
    "UpdateReport",
    "apply_update",
    "SimplifyReport",
    "simplify",
    "ALL_RULES",
    "AnswerEstimate",
    "estimate_query",
    # engine
    "QueryEngine",
    "Plan",
    "PlanCache",
    "TreeStats",
    "StatsDelta",
    "collect_stats",
    "build_plan",
    "execute_plan",
]
