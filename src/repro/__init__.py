"""repro — a reproduction of Abiteboul & Senellart, *Querying and
Updating Probabilistic Information in XML* (EDBT 2006).

The library implements the paper end to end:

* **fuzzy trees** (:mod:`repro.core`) — unordered data trees whose
  nodes carry conjunctive event conditions, with an event table;
* the **possible-worlds model** (:mod:`repro.pworlds`) — the semantic
  foundation, used as ground truth;
* **TPWJ queries** (:mod:`repro.tpwj`) — tree patterns with value
  joins, evaluated both on worlds and directly on fuzzy trees;
* **probabilistic updates** (:mod:`repro.updates`, applied via
  :func:`repro.core.update.apply_update`) — insert/delete transactions
  with a confidence;
* an **XML dialect** (:mod:`repro.xmlio`) and a filesystem
  **warehouse** (:mod:`repro.warehouse`) matching the paper's system
  architecture;
* **workload generators** (:mod:`repro.workloads`) simulating the
  imprecise modules of the paper's introduction.

Quickstart — the session API is the public surface::

    import repro

    with repro.connect("people-wh", create=True, root="directory") as session:
        session.update(
            repro.update(repro.pattern("directory", variable="d", anchored=True))
            .insert("d", repro.tree("person", repro.tree("name", "Alice")))
            .confidence(0.9)
        )
        for row in session.query("//person { name }").limit(5):
            print(row.probability, row.tree.canonical())

The model layer (fuzzy trees, possible worlds, the event algebra) stays
importable from its subpackages for direct experimentation; the 1.x
module-level conveniences (``repro.parse_pattern``,
``repro.query_fuzzy_tree``, ``repro.apply_update``) were removed in
2.0 — see the README's migration table.
"""

from repro.api import (
    PatternBuilder,
    QueryOptions,
    QueryOptionsError,
    ResultSet,
    Row,
    Session,
    Snapshot,
    UpdateBuilder,
    connect,
    pattern,
    update,
)
from repro.core import (
    ALL_RULES,
    AnswerEstimate,
    FuzzyAnswer,
    FuzzyNode,
    FuzzyTree,
    QueryRow,
    SimplifyReport,
    UpdateReport,
    estimate_query,
    from_possible_worlds,
    iter_query_rows,
    match_condition,
    simplify,
    to_possible_worlds,
)
from repro.engine import (
    AncestorConditionIndex,
    Plan,
    PlanCache,
    QueryEngine,
    ShannonCache,
    StatsDelta,
    TreeStats,
    build_plan,
    collect_stats,
    execute_plan,
)
from repro.errors import (
    EventError,
    InconsistentConditionError,
    InvalidProbabilityError,
    PatternSyntaxError,
    QueryCancelledError,
    QueryError,
    QueryParseError,
    ReproError,
    SessionClosedError,
    TreeError,
    UnknownEventError,
    UpdateError,
    WarehouseCorruptError,
    WarehouseError,
    XMLFormatError,
)
from repro.events import (
    TRUE,
    Condition,
    Dnf,
    EventTable,
    Literal,
    complement_as_disjoint_conditions,
    dnf_probability,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    SlowQueryLog,
    Tracer,
    default_observability,
    render_json,
    render_prometheus,
)
from repro.pworlds import (
    PossibleWorlds,
    World,
    query_possible_worlds,
    update_possible_worlds,
)
from repro.serve import (
    Collection,
    CollectionResultSet,
    ProcessCollection,
    SessionPool,
    ShardRow,
    connect_collection,
)
from repro.tpwj import (
    Match,
    MatchConfig,
    Pattern,
    PatternNode,
    find_matches,
    format_pattern,
)
from repro.trees import Node, tree
from repro.updates import (
    DeleteOperation,
    InsertOperation,
    TransactionBatch,
    UpdateTransaction,
    apply_deterministic,
)

__version__ = "2.0.0"

__all__ = [
    "__version__",
    # session API
    "connect",
    "Session",
    "Snapshot",
    "QueryOptions",
    "QueryOptionsError",
    "ResultSet",
    "Row",
    "PatternBuilder",
    "UpdateBuilder",
    "pattern",
    "update",
    # serving layer (collections)
    "connect_collection",
    "Collection",
    "CollectionResultSet",
    "ProcessCollection",
    "SessionPool",
    "ShardRow",
    # errors
    "ReproError",
    "TreeError",
    "EventError",
    "UnknownEventError",
    "InvalidProbabilityError",
    "InconsistentConditionError",
    "QueryError",
    "PatternSyntaxError",
    "QueryCancelledError",
    "QueryParseError",
    "UpdateError",
    "XMLFormatError",
    "WarehouseError",
    "WarehouseCorruptError",
    "SessionClosedError",
    # trees
    "Node",
    "tree",
    # events
    "Literal",
    "Condition",
    "TRUE",
    "EventTable",
    "Dnf",
    "dnf_probability",
    "complement_as_disjoint_conditions",
    # possible worlds
    "PossibleWorlds",
    "World",
    "query_possible_worlds",
    "update_possible_worlds",
    # queries (model-level helpers live at their defining modules:
    # repro.tpwj.parser.parse_pattern, repro.core.query.query_fuzzy_tree,
    # repro.core.update.apply_update)
    "Pattern",
    "PatternNode",
    "format_pattern",
    "find_matches",
    "Match",
    "MatchConfig",
    # updates
    "InsertOperation",
    "DeleteOperation",
    "UpdateTransaction",
    "TransactionBatch",
    "apply_deterministic",
    # core
    "FuzzyNode",
    "FuzzyTree",
    "to_possible_worlds",
    "from_possible_worlds",
    "FuzzyAnswer",
    "QueryRow",
    "iter_query_rows",
    "match_condition",
    "UpdateReport",
    "SimplifyReport",
    "simplify",
    "ALL_RULES",
    "AnswerEstimate",
    "estimate_query",
    # engine
    "QueryEngine",
    "AncestorConditionIndex",
    "ShannonCache",
    "Plan",
    "PlanCache",
    "TreeStats",
    "StatsDelta",
    "collect_stats",
    "build_plan",
    "execute_plan",
    # observability
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "SlowQueryLog",
    "default_observability",
    "render_prometheus",
    "render_json",
]
