"""Fuzzy trees — the paper's primary contribution (slide 12).

A *fuzzy tree* is a data tree in which every node carries an *event
condition* (a conjunction of probabilistic event literals), together
with an event table assigning each event an independent probability.
The document root's condition must be true: a document always has its
root, and the possible worlds of a fuzzy tree are the restrictions of
the tree to the nodes whose conditions hold (a node needs its whole
ancestor chain to survive).

:class:`FuzzyNode` extends the plain :class:`~repro.trees.node.Node`
with a condition, so every tree algorithm (matching, minimal subtrees,
canonical forms of the *underlying* tree) applies unchanged.
:class:`FuzzyTree` pairs the root with its :class:`EventTable`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import ReproError, TreeError
from repro.events.condition import TRUE, Condition
from repro.events.table import EventTable
from repro.trees.node import Node

__all__ = ["FuzzyNode", "FuzzyTree"]


class FuzzyNode(Node):
    """A data-tree node guarded by an event condition."""

    __slots__ = ("_condition",)

    def __init__(
        self,
        label: str,
        value: str | None = None,
        condition: Condition = TRUE,
        children: Iterable["FuzzyNode"] = (),
    ) -> None:
        if not isinstance(condition, Condition):
            raise TreeError(f"condition must be a Condition, got {type(condition).__name__}")
        self._condition = condition
        super().__init__(label, value=value, children=children)

    @property
    def condition(self) -> Condition:
        return self._condition

    @condition.setter
    def condition(self, condition: Condition) -> None:
        if not isinstance(condition, Condition):
            raise TreeError(f"condition must be a Condition, got {type(condition).__name__}")
        self._condition = condition

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------

    def clone(self) -> "FuzzyNode":
        copy = FuzzyNode(self.label, self.value, self._condition)
        for child in self.children:
            copy.add_child(child.clone())
        return copy

    def canonical(self) -> str:
        """Canonical form *including conditions* (fuzzy-tree equality).

        Two fuzzy subtrees are equal iff labels, values, the multiset of
        child subtrees **and** the conditions coincide.  Use
        :meth:`underlying` / plain-node canonicals to compare only the
        data part.
        """
        own = self.label if self.value is None else f"{self.label}={self.value!r}"
        condition = str(self._condition)
        if condition != "true":
            own = f"{own}[{condition}]"
        if self.is_leaf:
            return own
        parts = sorted(child.canonical() for child in self.children)
        return f"{own}({','.join(parts)})"

    def pretty(self, indent: str = "  ") -> str:
        """ASCII rendering with conditions, matching the paper's figures."""
        lines: list[str] = []

        def visit(node: FuzzyNode, level: int) -> None:
            suffix = f" = {node.value!r}" if node.value is not None else ""
            if not node.condition.is_true:
                suffix += f"  [{node.condition.pretty()}]"
            lines.append(f"{indent * level}{node.label}{suffix}")
            for child in node.children:
                visit(child, level + 1)

        visit(self, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Fuzzy-specific helpers
    # ------------------------------------------------------------------

    def path_condition(self) -> Condition:
        """Conjunction of this node's and all its ancestors' conditions.

        This is the exact existence condition of the node: it is present
        in a world iff the whole conjunction holds.  Raises
        :class:`~repro.errors.InconsistentConditionError` when the node
        can never exist; use ``path_condition_or_none`` to probe.
        """
        combined = self._condition
        for ancestor in self.ancestors():
            combined = combined.conjoin(ancestor.condition)  # type: ignore[attr-defined]
        return combined

    def path_condition_or_none(self) -> Condition | None:
        """Like :meth:`path_condition` but None when inconsistent."""
        literals = set(self._condition.literals)
        for ancestor in self.ancestors():
            literals |= ancestor.condition.literals  # type: ignore[attr-defined]
        combined = Condition(literals, allow_inconsistent=True)
        return combined if combined.is_consistent else None

    @staticmethod
    def from_plain(node: Node, condition: Condition = TRUE) -> "FuzzyNode":
        """Deep-convert a plain tree; *condition* guards the new root only."""
        root = FuzzyNode(node.label, node.value, condition)
        for child in node.children:
            root.add_child(FuzzyNode.from_plain(child))
        return root


class FuzzyTree:
    """A fuzzy document: a :class:`FuzzyNode` root plus its event table."""

    __slots__ = ("root", "events")

    def __init__(self, root: FuzzyNode, events: EventTable | None = None) -> None:
        if not isinstance(root, FuzzyNode):
            raise ReproError(f"fuzzy root must be a FuzzyNode, got {type(root).__name__}")
        if root.parent is not None:
            raise ReproError("fuzzy root must not have a parent")
        self.root = root
        self.events = events if events is not None else EventTable()
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of a fuzzy document.

        * the root's condition is true (a document always has a root);
        * every condition only references declared events;
        * every node is a :class:`FuzzyNode`.
        """
        if not self.root.condition.is_true:
            raise ReproError(
                "the document root must have the true condition "
                f"(found {self.root.condition})"
            )
        for node in self.root.iter():
            if not isinstance(node, FuzzyNode):
                raise ReproError(
                    f"fuzzy tree contains a plain node: {node.label!r}"
                )
            self.events.check_condition(node.condition)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def size(self) -> int:
        return self.root.size()

    def condition_literal_count(self) -> int:
        """Total number of literals across all node conditions."""
        return sum(len(node.condition) for node in self.iter_nodes())

    def used_events(self) -> frozenset[str]:
        """Events referenced by at least one node condition."""
        used: set[str] = set()
        for node in self.iter_nodes():
            used |= node.condition.events()
        return frozenset(used)

    def iter_nodes(self) -> Iterable[FuzzyNode]:
        return self.root.iter()  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Worlds
    # ------------------------------------------------------------------

    def world(self, assignment: Mapping[str, bool]) -> Node:
        """The ordinary tree selected by a truth assignment.

        Keeps exactly the nodes whose condition is satisfied and whose
        ancestors are all kept; returns a plain tree.
        """

        def copy(node: FuzzyNode) -> Node:
            fresh = Node(node.label, node.value)
            for child in node.children:
                assert isinstance(child, FuzzyNode)
                if child.condition.satisfied_by(assignment):
                    fresh.add_child(copy(child))
            return fresh

        return copy(self.root)

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------

    def clone(self) -> "FuzzyTree":
        return FuzzyTree(self.root.clone(), self.events.copy())

    def __repr__(self) -> str:
        return (
            f"FuzzyTree({self.size()} nodes, {len(self.events)} events, "
            f"{len(self.used_events())} used)"
        )
