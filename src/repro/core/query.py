"""TPWJ query evaluation directly on fuzzy trees (paper, slide 13).

Definition (slide 13): evaluate the query on the *underlying* data tree;
the probability of an answer is the probability of the conjunction of
the conditions of the nodes of the mapping.  Because the answer is the
minimal subtree containing the mapped nodes, the relevant conjunction
ranges over the mapped nodes *and all their ancestors* — an answer
exists in a world only when its whole subtree does.

Several matches may induce the same answer tree; the answer's
probability is then the probability of the *disjunction* of the match
conditions, computed exactly by Shannon expansion
(:func:`repro.events.dnf.dnf_probability`).  This is precisely what
makes the fuzzy evaluation commute with the possible-worlds semantics
(the theorem of slide 13, validated by benchmark E2 and the property
tests).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.instrumentation import counters
from repro.events.condition import Condition
from repro.events.dnf import Dnf, complement_as_disjoint_conditions, dnf_probability
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.tpwj.match import (
    DEFAULT_CONFIG,
    Match,
    MatchConfig,
    find_embeddings,
    find_matches,
)
from repro.tpwj.pattern import Pattern
from repro.tpwj.result import answer_tree
from repro.trees.node import Node

__all__ = [
    "FuzzyAnswer",
    "QueryRow",
    "query_fuzzy_tree",
    "iter_query_rows",
    "group_rows",
    "match_condition",
    "match_conditions",
]


class FuzzyAnswer:
    """One answer of a query over a fuzzy tree.

    Attributes
    ----------
    tree:
        The answer tree (an ordinary data tree — conditions are not part
        of answers).
    dnf:
        The disjunction of the per-match existence conditions that
        produce this answer.
    probability:
        Exact probability that this answer belongs to the query result.
    """

    __slots__ = ("tree", "dnf", "probability")

    def __init__(self, tree: Node, dnf: Dnf, probability: float) -> None:
        self.tree = tree
        self.dnf = dnf
        self.probability = probability

    def __repr__(self) -> str:
        return f"FuzzyAnswer(p={self.probability:.6g}, tree={self.tree.canonical()})"


def match_condition(match: Match) -> Condition | None:
    """Existence condition of a match: the conjunction over the mapped
    nodes *and their ancestors* of the node conditions.

    Returns None when the conjunction is inconsistent (the match can
    fire in no world).
    """
    literals: set = set()
    seen: set[int] = set()
    for node in match.nodes():
        for walk in node.ancestors(include_self=True):
            if id(walk) in seen:
                continue
            seen.add(id(walk))
            assert isinstance(walk, FuzzyNode), "match must be over a fuzzy tree"
            literals |= walk.condition.literals
    combined = Condition(literals, allow_inconsistent=True)
    return combined if combined.is_consistent else None


def _embedding_condition(embedding: dict) -> Condition | None:
    """Existence condition of a negated-subpattern embedding."""
    literals: set = set()
    seen: set[int] = set()
    for node in embedding.values():
        for walk in node.ancestors(include_self=True):
            if id(walk) in seen:
                continue
            seen.add(id(walk))
            assert isinstance(walk, FuzzyNode)
            literals |= walk.condition.literals
    combined = Condition(literals, allow_inconsistent=True)
    return combined if combined.is_consistent else None


def match_conditions(match: Match) -> list[Condition]:
    """Disjoint conjunctive conditions under which *match* holds.

    For a pattern without negation this is the singleton
    ``[match_condition(match)]`` (or ``[]`` when inconsistent).  With
    negated subpatterns (slide-19 extension) the match holds when its
    positive image exists *and no* embedding of any negated subpattern
    exists; the complement of the embeddings' conditions is rewritten
    into disjoint conjunctions, each conjoined with the positive
    condition.
    """
    gamma = match_condition(match)
    if gamma is None:
        return []
    constraints = match.pattern.negated_constraints()
    if not constraints:
        return [gamma]

    violations: list[Condition] = []
    for constraint in constraints:
        parent_image = match[constraint.parent]
        for embedding in find_embeddings(constraint, parent_image):
            delta = _embedding_condition(embedding)
            if delta is not None:
                violations.append(delta)

    pieces = complement_as_disjoint_conditions(violations)
    results: list[Condition] = []
    for piece in pieces:
        combined = Condition(
            gamma.literals | piece.literals, allow_inconsistent=True
        )
        if combined.is_consistent:
            results.append(Condition(combined.literals))
    return results


class QueryRow:
    """One *match* of a query over a fuzzy tree, streamed lazily.

    Where :class:`FuzzyAnswer` aggregates every match inducing the same
    answer tree (exact disjunction semantics), a row is the unit the
    streaming protocol can afford to emit without seeing the rest of
    the enumeration: the match itself, its answer tree, the disjoint
    conditions under which the match holds, and the exact probability
    of *this match* firing.  Rows arrive in the engine's deterministic
    match order, so a limited stream is a prefix of the unlimited one.
    """

    __slots__ = ("match", "tree", "dnf", "probability")

    def __init__(self, match: Match, tree: Node, dnf: Dnf, probability: float) -> None:
        self.match = match
        self.tree = tree
        self.dnf = dnf
        self.probability = probability

    def bindings(self) -> dict[str, str | None]:
        """Variable name -> bound text value for this match."""
        return self.match.bindings()

    def __repr__(self) -> str:
        return f"QueryRow(p={self.probability:.6g}, tree={self.tree.canonical()})"


def iter_query_rows(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    engine=None,
    limit: int | None = None,
):
    """Lazily evaluate a TPWJ query, yielding one :class:`QueryRow` per
    consistent, possible match.

    The streaming counterpart of :func:`query_fuzzy_tree`: matching is
    pulled one match at a time (through *engine*'s streaming protocol
    when given, the fixed matcher otherwise), each match's condition
    and probability are computed immediately, and iteration stops after
    *limit* emitted rows — aborting the remaining backtracking, which
    is what makes top-k queries cheaper than full materialization.
    Matches that can fire in no world (inconsistent conditions or zero
    probability) are skipped and do not count against *limit*.
    """
    if limit is not None and limit <= 0:
        return
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    if engine is not None:
        matches = engine.iter_matches(pattern, structural_config)
    else:
        matches = iter(find_matches(pattern, fuzzy.root, structural_config))
    emitted = 0
    for match in matches:
        counters.incr("core.query.matches")
        conditions = match_conditions(match)
        if not conditions:
            counters.incr("core.query.inconsistent_matches")
            continue
        dnf = Dnf(conditions)
        probability = dnf_probability(dnf, fuzzy.events)
        if probability == 0.0:
            continue
        yield QueryRow(match, answer_tree(fuzzy.root, match), dnf, probability)
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def group_rows(rows, events) -> list[FuzzyAnswer]:
    """Fold streamed rows into ranked :class:`FuzzyAnswer` aggregates.

    Rows inducing the same answer tree are merged (their conditions
    disjoined) exactly as :func:`query_fuzzy_tree` merges matches, then
    ranked by decreasing probability.  On an unlimited stream this
    reproduces :func:`query_fuzzy_tree`'s result; on a limited one it
    aggregates just the streamed prefix.
    """
    grouped: dict[str, tuple[Node, list[Condition]]] = {}
    for row in rows:
        key = row.tree.canonical()
        if key in grouped:
            grouped[key][1].extend(row.dnf.terms)
        else:
            grouped[key] = (row.tree, list(row.dnf.terms))
    answers: list[FuzzyAnswer] = []
    for tree, conditions in grouped.values():
        dnf = Dnf(conditions)
        probability = dnf_probability(dnf, events)
        if probability == 0.0:
            continue
        answers.append(FuzzyAnswer(tree, dnf, probability))
    answers.sort(key=lambda a: (-a.probability, a.tree.canonical()))
    return answers


def query_fuzzy_tree(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    plan=None,
    engine=None,
) -> list[FuzzyAnswer]:
    """Evaluate a TPWJ query on a fuzzy tree without enumerating worlds.

    Returns the answers sorted by decreasing probability (ties broken
    by canonical form), mirroring the normalized possible-worlds
    result.  Negated subpatterns are handled through conditions, not
    structure: their presence varies across worlds.

    Matching can be routed through the cost-based engine: *engine* (a
    :class:`~repro.engine.QueryEngine` bound to this document — the
    warehouse passes its own, reusing cached plans and the document
    walk) or *plan* (``"auto"`` / a prebuilt plan, forwarded to
    :func:`~repro.tpwj.match.find_matches`).  The grouped-and-sorted
    answers are identical on every path.
    """
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    if engine is not None:
        matches = engine.find_matches(pattern, structural_config)
    else:
        matches = find_matches(pattern, fuzzy.root, structural_config, plan=plan)
    grouped: dict[str, tuple[Node, list[Condition]]] = {}
    for match in matches:
        counters.incr("core.query.matches")
        conditions = match_conditions(match)
        if not conditions:
            counters.incr("core.query.inconsistent_matches")
            continue
        answer = answer_tree(fuzzy.root, match)
        key = answer.canonical()
        if key in grouped:
            grouped[key][1].extend(conditions)
        else:
            grouped[key] = (answer, list(conditions))

    answers: list[FuzzyAnswer] = []
    for tree, conditions in grouped.values():
        dnf = Dnf(conditions)
        probability = dnf_probability(dnf, fuzzy.events)
        if probability == 0.0:
            continue
        answers.append(FuzzyAnswer(tree, dnf, probability))
    answers.sort(key=lambda a: (-a.probability, a.tree.canonical()))
    return answers
