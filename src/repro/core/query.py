"""TPWJ query evaluation directly on fuzzy trees (paper, slide 13).

Definition (slide 13): evaluate the query on the *underlying* data tree;
the probability of an answer is the probability of the conjunction of
the conditions of the nodes of the mapping.  Because the answer is the
minimal subtree containing the mapped nodes, the relevant conjunction
ranges over the mapped nodes *and all their ancestors* — an answer
exists in a world only when its whole subtree does.

Several matches may induce the same answer tree; the answer's
probability is then the probability of the *disjunction* of the match
conditions, computed exactly by Shannon expansion
(:func:`repro.events.dnf.dnf_probability`).  This is precisely what
makes the fuzzy evaluation commute with the possible-worlds semantics
(the theorem of slide 13, validated by benchmark E2 and the property
tests).

The probability fast path (E12): when matching runs through a
:class:`~repro.engine.QueryEngine`, per-match conditions come from the
engine's precomputed ancestor-condition index (a small union of
interned frozensets instead of an O(depth) ancestor walk per mapped
node) and Shannon expansions share the engine's
:class:`~repro.events.dnf.ShannonCache` memo.  Streamed rows compute
their probability lazily on first access; whether a match is *possible*
(nonzero probability) is decided by the cheap per-literal test of
:func:`~repro.events.dnf` instead of a full expansion.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from sys import intern as _intern_str
from time import perf_counter

from repro.analysis.instrumentation import counters
from repro.events.condition import Condition
from repro.events.dnf import Dnf, complement_as_disjoint_conditions, dnf_probability
from repro.events.table import EventTable
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.tpwj.match import (
    DEFAULT_CONFIG,
    Match,
    MatchConfig,
    find_embeddings,
    find_matches,
)
from repro.tpwj.pattern import Pattern
from repro.tpwj.result import answer_tree
from repro.trees.node import Node

__all__ = [
    "FuzzyAnswer",
    "QueryRow",
    "query_fuzzy_tree",
    "iter_query_rows",
    "iter_bounded_rows",
    "topk_rows",
    "group_rows",
    "match_condition",
    "match_conditions",
]


class FuzzyAnswer:
    """One answer of a query over a fuzzy tree.

    Attributes
    ----------
    tree:
        The answer tree (an ordinary data tree — conditions are not part
        of answers).
    dnf:
        The disjunction of the per-match existence conditions that
        produce this answer.
    probability:
        Exact probability that this answer belongs to the query result.
    """

    __slots__ = ("tree", "dnf", "probability")

    def __init__(self, tree: Node, dnf: Dnf, probability: float) -> None:
        self.tree = tree
        self.dnf = dnf
        self.probability = probability

    def __repr__(self) -> str:
        return f"FuzzyAnswer(p={self.probability:.6g}, tree={self.tree.canonical()})"


def match_condition(match: Match, *, index=None) -> Condition | None:
    """Existence condition of a match: the conjunction over the mapped
    nodes *and their ancestors* of the node conditions.

    Returns None when the conjunction is inconsistent (the match can
    fire in no world).  *index*, when given, is the engine's
    :class:`~repro.engine.conditions.AncestorConditionIndex`: the
    per-node closures are precomputed, so the conjunction is a union of
    a handful of frozensets instead of a walk over every ancestor
    chain.
    """
    if index is not None:
        return _closed_union(index, match.iter_images())
    literals: set = set()
    seen: set[int] = set()
    for node in match.nodes():
        for walk in node.ancestors(include_self=True):
            if id(walk) in seen:
                continue
            seen.add(id(walk))
            assert isinstance(walk, FuzzyNode), "match must be over a fuzzy tree"
            literals |= walk.condition.literals
    combined = Condition(frozenset(literals), allow_inconsistent=True)
    return combined if combined.is_consistent else None


def _closed_union(index, nodes) -> Condition | None:
    """Union the precomputed closures of *nodes*; None when inconsistent.

    *nodes* may repeat (raw match images): closures are deduplicated by
    identity/equality before any set union, and the single-closure case
    — the typical one, since mapped nodes share ancestor chains whose
    closures are shared objects — returns the interned closure as-is.
    """
    lookup = index.closed_condition
    first = None
    extras = None
    for node in nodes:
        closed = lookup(node)
        if first is None:
            first = closed
        elif closed is not first:
            if extras is None:
                extras = [closed]
            elif closed not in extras:
                extras.append(closed)
    if extras is not None:
        literals = first.literals
        for closed in extras:
            literals |= closed.literals
        first = Condition(literals, allow_inconsistent=True)
    return first if first.is_consistent else None


def _embedding_condition(embedding: dict, index=None) -> Condition | None:
    """Existence condition of a negated-subpattern embedding."""
    if index is not None:
        nodes = list(embedding.values())
        return _closed_union(index, nodes)
    literals: set = set()
    seen: set[int] = set()
    for node in embedding.values():
        for walk in node.ancestors(include_self=True):
            if id(walk) in seen:
                continue
            seen.add(id(walk))
            assert isinstance(walk, FuzzyNode)
            literals |= walk.condition.literals
    combined = Condition(frozenset(literals), allow_inconsistent=True)
    return combined if combined.is_consistent else None


def match_conditions(match: Match, *, index=None) -> list[Condition]:
    """Disjoint conjunctive conditions under which *match* holds.

    For a pattern without negation this is the singleton
    ``[match_condition(match)]`` (or ``[]`` when inconsistent).  With
    negated subpatterns (slide-19 extension) the match holds when its
    positive image exists *and no* embedding of any negated subpattern
    exists; the complement of the embeddings' conditions is rewritten
    into disjoint conjunctions, each conjoined with the positive
    condition.
    """
    gamma = match_condition(match, index=index)
    if gamma is None:
        return []
    constraints = match.pattern.negated_constraints()
    if not constraints:
        return [gamma]

    violations: list[Condition] = []
    for constraint in constraints:
        parent_image = match[constraint.parent]
        for embedding in find_embeddings(constraint, parent_image):
            delta = _embedding_condition(embedding, index)
            if delta is not None:
                violations.append(delta)

    pieces = complement_as_disjoint_conditions(violations)
    results: list[Condition] = []
    for piece in pieces:
        combined = Condition(
            gamma.literals | piece.literals, allow_inconsistent=True
        )
        if combined.is_consistent:
            results.append(Condition(combined.literals))
    return results


def _possibly_nonzero(terms, events) -> bool:
    """True iff the disjunction of *terms* has nonzero probability.

    ``P(∨ terms) = 0`` exactly when every term contains a literal of
    probability zero (a positive literal over a 0-probability event or
    a negative one over a 1-probability event) — a per-literal scan, no
    Shannon expansion.
    """
    probability = events.probability
    for term in terms:
        for literal in term.literals:
            p = probability(literal.event)
            if (p == 0.0) if literal.positive else (p == 1.0):
                break
        else:
            return True
    return False


class QueryRow:
    """One *match* of a query over a fuzzy tree, streamed lazily.

    Where :class:`FuzzyAnswer` aggregates every match inducing the same
    answer tree (exact disjunction semantics), a row is the unit the
    streaming protocol can afford to emit without seeing the rest of
    the enumeration: the match itself, its answer tree, the disjoint
    conditions under which the match holds, and the exact probability
    of *this match* firing.  Rows arrive in the engine's deterministic
    match order, so a limited stream is a prefix of the unlimited one.

    The probability is computed on **first access** (every emitted row
    is already known to be possible): consumers that only group, count
    or render trees never pay the Shannon expansion, and those that do
    read it hit the engine's shared memo.  The row captures its events'
    probabilities at emission time, so the lazy value equals what eager
    computation would have produced even when the live table changes
    after the stream's pin is released (a later commit's simplify can
    GC an event this row references).
    """

    __slots__ = (
        "match",
        "tree",
        "dnf",
        "_events",
        "_cache",
        "_generation",
        "_captured",
        "_probability",
    )

    def __init__(
        self,
        match: Match,
        tree: Node,
        dnf: Dnf,
        events,
        *,
        cache=None,
        probability: float | None = None,
    ) -> None:
        self.match = match
        self.tree = tree
        self.dnf = dnf
        self._events = events
        self._cache = cache
        self._generation = events.generation
        # Emission-time snapshot of the mentioned events' probabilities
        # (a per-literal read, no expansion) — the fallback pricing
        # basis if the live table's assignment moves on before the
        # probability is first read.
        self._captured = (
            None
            if probability is not None
            else {event: events.probability(event) for event in dnf.events()}
        )
        self._probability = probability

    @property
    def probability(self) -> float:
        """Exact probability that this match fires (lazily computed)."""
        p = self._probability
        if p is None:
            events = self._events
            if events.generation == self._generation:
                p = dnf_probability(self.dnf, events, cache=self._cache)
            else:
                # An event was removed or redeclared since this row was
                # streamed; price against the captured probabilities
                # (no shared cache — its keys belong to live tables).
                p = dnf_probability(self.dnf, EventTable(self._captured))
            self._probability = p
        return p

    def bindings(self) -> dict[str, str | None]:
        """Variable name -> bound text value for this match."""
        return self.match.bindings()

    def __repr__(self) -> str:
        return f"QueryRow(p={self.probability:.6g}, tree={self.tree.canonical()})"


def iter_query_rows(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    engine=None,
    limit: int | None = None,
):
    """Lazily evaluate a TPWJ query, yielding one :class:`QueryRow` per
    consistent, possible match.

    The streaming counterpart of :func:`query_fuzzy_tree`: matching is
    pulled one match at a time (through *engine*'s streaming protocol
    when given, the fixed matcher otherwise), each match's condition is
    computed immediately — through the engine's ancestor-condition
    index when available — and iteration stops after *limit* emitted
    rows, aborting the remaining backtracking.  Matches that can fire
    in no world (inconsistent conditions or zero probability) are
    skipped and do not count against *limit*; row probabilities are
    computed lazily on first access.
    """
    if limit is not None and limit <= 0:
        return
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    if engine is not None:
        # The engine is told which root to evaluate — *fuzzy*'s own —
        # rather than whatever its provider currently points at: a
        # concurrent commit may swap the live document (copy-on-write)
        # between the caller pinning this generation and the first row
        # being pulled, and evaluating the new root against the pinned
        # tree would tear the read.
        matches = engine.iter_matches(pattern, structural_config, root=fuzzy.root)
        index = engine.condition_index(fuzzy.root)
        cache = engine.shannon
    else:
        matches = iter(find_matches(pattern, fuzzy.root, structural_config))
        index = cache = None
    events = fuzzy.events
    track = counters.enabled
    emitted = 0
    for match in matches:
        if track:
            counters.incr("core.query.matches")
        conditions = match_conditions(match, index=index)
        if not conditions:
            if track:
                counters.incr("core.query.inconsistent_matches")
            continue
        if not _possibly_nonzero(conditions, events):
            continue
        dnf = Dnf(conditions)
        yield QueryRow(match, answer_tree(fuzzy.root, match), dnf, events, cache=cache)
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def _bounded_matches(fuzzy, pattern, structural_config, engine, prune):
    """The match stream for a probability-bounded evaluation.

    Engine-backed and on a fuzzy document, the engine runs its
    branch-and-bound join: partial assignments are priced through a
    :class:`~repro.engine.executor.ProbabilityBound` over the
    ancestor-condition index and *prune* decides, from the upper bound
    alone, whether a branch can still contribute.  Without an engine
    (the E9 ablation baseline) or without an index (plain documents)
    the stream degrades to the unbounded enumeration — same rows, no
    pruning.

    Returns ``(matches, index, cache)``.
    """
    if engine is None:
        return (
            iter(find_matches(pattern, fuzzy.root, structural_config)),
            None,
            None,
        )
    index = engine.condition_index(fuzzy.root)
    cache = engine.shannon
    if index is None:
        matches = engine.iter_matches(
            pattern, structural_config, root=fuzzy.root
        )
        return matches, index, cache
    from repro.engine.executor import ProbabilityBound

    bound = ProbabilityBound(index.closed_condition, fuzzy.events.probability)
    matches = engine.iter_matches(
        pattern, structural_config, root=fuzzy.root, bound=bound, prune=prune
    )
    return matches, index, cache


def topk_rows(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    engine=None,
    k: int | None = None,
    min_probability: float = 0.0,
    abort=None,
) -> list[QueryRow]:
    """The *k* most probable rows, in decreasing-probability order.

    Ties are broken by the deterministic enumeration order, so the
    result equals the first *k* entries of the stable sort of the full
    enumeration by decreasing probability (the property the tests pin).

    Engine-backed, this runs as branch-and-bound inside the
    backtracking join: each partial assignment's closed conditions give
    an O(1) upper bound on any completion's probability, and a branch
    is cut when that bound cannot beat the current k-th best in the
    admission heap (or falls below *min_probability*).  Cutting at
    ``upper == kth-best`` is safe: a completion could at best *tie*,
    and later enumeration order loses ties.

    Rows are priced eagerly (their exact probability is the sort key),
    through the engine's shared Shannon memo when available.  *abort*
    is the serving layers' cancellation hook, polled once per
    enumerated match.
    """
    if k is not None and k <= 0:
        return []
    events = fuzzy.events
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    heap: list = []  # (probability, -emission_index, row): root = evictee

    def prune(upper: float) -> bool:
        if upper < min_probability:
            return True
        return k is not None and len(heap) == k and upper <= heap[0][0]

    matches, index, cache = _bounded_matches(
        fuzzy, pattern, structural_config, engine, prune
    )
    track = counters.enabled
    emitted = 0
    for match in matches:
        if abort is not None and abort():
            from repro.errors import QueryCancelledError

            raise QueryCancelledError("query cancelled by its abort hook")
        if track:
            counters.incr("core.query.matches")
        conditions = match_conditions(match, index=index)
        if not conditions:
            if track:
                counters.incr("core.query.inconsistent_matches")
            continue
        if not _possibly_nonzero(conditions, events):
            continue
        dnf = Dnf(conditions)
        p = dnf_probability(dnf, events, cache=cache)
        if p == 0.0 or p < min_probability:
            continue
        row = QueryRow(
            match,
            answer_tree(fuzzy.root, match),
            dnf,
            events,
            cache=cache,
            probability=p,
        )
        entry = (p, -emitted, row)
        emitted += 1
        if k is None:
            heap.append(entry)
        elif len(heap) < k:
            heapq.heappush(heap, entry)
        else:
            # On a probability tie the fresh entry's later emission
            # index makes it the heap minimum, so pushpop discards it —
            # exactly the stable-sort tie rule.
            heapq.heappushpop(heap, entry)
    heap.sort(key=lambda entry: (-entry[0], -entry[1]))
    return [row for _, _, row in heap]


def iter_bounded_rows(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    engine=None,
    min_probability: float = 0.0,
    limit: int | None = None,
):
    """Document-order rows with ``probability >= min_probability``.

    Like :func:`iter_query_rows` but the threshold is pushed *into*
    the join: engine-backed, a partial assignment whose probability
    upper bound is already below *min_probability* is pruned without
    ever being completed.  Rows are priced eagerly (the threshold needs
    the exact value); *limit* counts qualifying rows only.
    """
    if limit is not None and limit <= 0:
        return
    events = fuzzy.events
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )

    def prune(upper: float) -> bool:
        return upper < min_probability

    matches, index, cache = _bounded_matches(
        fuzzy, pattern, structural_config, engine, prune
    )
    track = counters.enabled
    emitted = 0
    for match in matches:
        if track:
            counters.incr("core.query.matches")
        conditions = match_conditions(match, index=index)
        if not conditions:
            if track:
                counters.incr("core.query.inconsistent_matches")
            continue
        if not _possibly_nonzero(conditions, events):
            continue
        dnf = Dnf(conditions)
        p = dnf_probability(dnf, events, cache=cache)
        if p == 0.0 or p < min_probability:
            continue
        yield QueryRow(
            match,
            answer_tree(fuzzy.root, match),
            dnf,
            events,
            cache=cache,
            probability=p,
        )
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def group_rows(rows, events, *, cache=None) -> list[FuzzyAnswer]:
    """Fold streamed rows into ranked :class:`FuzzyAnswer` aggregates.

    Rows inducing the same answer tree are merged (their conditions
    disjoined) exactly as :func:`query_fuzzy_tree` merges matches, then
    ranked by decreasing probability.  On an unlimited stream this
    reproduces :func:`query_fuzzy_tree`'s result; on a limited one it
    aggregates just the streamed prefix.  *cache* is a shared
    :class:`~repro.events.dnf.ShannonCache` for the per-group
    expansions (rows carry one from their engine already; this applies
    to the group-level disjunctions).
    """
    grouped: dict[str, tuple[Node, list[Condition]]] = {}
    for row in rows:
        key = _intern_str(row.tree.canonical())
        entry = grouped.get(key)
        if entry is not None:
            entry[1].extend(row.dnf.terms)
        else:
            grouped[key] = (row.tree, list(row.dnf.terms))
    answers: list[FuzzyAnswer] = []
    for tree, conditions in grouped.values():
        dnf = Dnf(conditions)
        probability = dnf_probability(dnf, events, cache=cache)
        if probability == 0.0:
            continue
        answers.append(FuzzyAnswer(tree, dnf, probability))
    answers.sort(key=lambda a: (-a.probability, a.tree.canonical()))
    return answers


def query_fuzzy_tree(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
    *,
    plan=None,
    engine=None,
) -> list[FuzzyAnswer]:
    """Evaluate a TPWJ query on a fuzzy tree without enumerating worlds.

    Returns the answers sorted by decreasing probability (ties broken
    by canonical form), mirroring the normalized possible-worlds
    result.  Negated subpatterns are handled through conditions, not
    structure: their presence varies across worlds.

    Matching can be routed through the cost-based engine: *engine* (a
    :class:`~repro.engine.QueryEngine` bound to this document — the
    warehouse passes its own, reusing cached plans and the document
    walk) or *plan* (``"auto"`` / a prebuilt plan, forwarded to
    :func:`~repro.tpwj.match.find_matches`).  The grouped-and-sorted
    answers are identical on every path; the engine path additionally
    reuses the ancestor-condition index and the shared Shannon memo.
    """
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    if engine is not None:
        # Evaluate against *fuzzy*'s root explicitly (see
        # iter_query_rows: the provider's live root may have moved on).
        matches = engine.iter_matches(pattern, structural_config, root=fuzzy.root)
        index = engine.condition_index(fuzzy.root)
        cache = engine.shannon
    else:
        matches = find_matches(pattern, fuzzy.root, structural_config, plan=plan)
        index = cache = None
    # Phase boundaries for the warehouse's instrument panel: one
    # match_enumeration emit for the whole enumerate-and-group loop,
    # one probability_evaluation emit for the pricing loop.  Off, this
    # costs two attribute reads per query.
    obs = engine.observability if engine is not None else None
    tracing = obs is not None and obs.tracer.enabled
    track = counters.enabled
    grouped: dict[str, tuple[Node, list[Condition]]] = {}
    t_phase = perf_counter() if tracing else 0.0
    for match in matches:
        if track:
            counters.incr("core.query.matches")
        conditions = match_conditions(match, index=index)
        if not conditions:
            if track:
                counters.incr("core.query.inconsistent_matches")
            continue
        answer = answer_tree(fuzzy.root, match)
        key = _intern_str(answer.canonical())
        entry = grouped.get(key)
        if entry is not None:
            entry[1].extend(conditions)
        else:
            grouped[key] = (answer, list(conditions))

    if tracing:
        now = perf_counter()
        obs.tracer.emit(
            "match_enumeration", now - t_phase, groups=len(grouped)
        )
        t_phase = now
    elif obs is not None:
        t_phase = perf_counter()
    answers: list[FuzzyAnswer] = []
    for tree, conditions in grouped.values():
        dnf = Dnf(conditions)
        probability = dnf_probability(dnf, fuzzy.events, cache=cache)
        if probability == 0.0:
            continue
        answers.append(FuzzyAnswer(tree, dnf, probability))
    if obs is not None:
        priced = perf_counter() - t_phase
        if tracing:
            obs.tracer.emit("probability_evaluation", priced)
        if obs.metrics.enabled:
            obs.metrics.observe("query.probability_seconds", priced)
    answers.sort(key=lambda a: (-a.probability, a.tree.canonical()))
    return answers
