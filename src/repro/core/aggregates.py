"""Aggregate queries over fuzzy trees.

Beyond returning each answer's probability, users of a probabilistic
warehouse routinely ask *how many* results to expect: "how many emails
do we believe this person has?", "what is the chance at least two
duplicates survive?".  This module provides exact aggregates over the
matches of a TPWJ query:

* :func:`expected_matches` — the expected number of matches, by
  linearity of expectation (no world enumeration, one DNF probability
  per match);
* :func:`expected_answers` — the expected number of *distinct* answer
  trees (sum of the answers' probabilities);
* :func:`match_count_distribution` — the full distribution of the
  number of matches, by enumeration over the events the matches
  involve (guarded like :func:`repro.core.semantics.to_possible_worlds`);
* :func:`probability_at_least` — tail probability of the count.

All aggregates commute with the possible-worlds semantics (a world's
match count is exactly the number of underlying matches whose
conditions it satisfies) — validated by the test suite.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.fuzzy_tree import FuzzyTree
from repro.core.query import match_conditions, query_fuzzy_tree
from repro.core.semantics import MAX_ENUMERATED_EVENTS
from repro.errors import ReproError
from repro.events.assignment import assignment_weight, enumerate_assignments
from repro.events.condition import Condition
from repro.events.dnf import dnf_probability
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches
from repro.tpwj.pattern import Pattern

__all__ = [
    "expected_matches",
    "expected_answers",
    "match_count_distribution",
    "probability_at_least",
]


def _match_pieces(
    fuzzy: FuzzyTree, pattern: Pattern, config: MatchConfig
) -> list[list[Condition]]:
    """Per-match disjoint condition pieces (empty lists dropped)."""
    structural_config = (
        replace(config, honor_negation=False) if pattern.has_negation() else config
    )
    pieces: list[list[Condition]] = []
    for match in find_matches(pattern, fuzzy.root, structural_config):
        conditions = match_conditions(match)
        if conditions:
            pieces.append(conditions)
    return pieces


def expected_matches(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
) -> float:
    """Expected number of matches of *pattern* (linearity of expectation)."""
    return sum(
        dnf_probability(conditions, fuzzy.events)
        for conditions in _match_pieces(fuzzy, pattern, config)
    )


def expected_answers(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
) -> float:
    """Expected number of distinct answer trees in the query result."""
    return sum(
        answer.probability for answer in query_fuzzy_tree(fuzzy, pattern, config)
    )


def match_count_distribution(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
) -> dict[int, float]:
    """Exact distribution of the number of matches.

    Enumerates the truth assignments of the events the matches mention
    (not the whole table); exponential in that event count, guarded at
    ``2^MAX_ENUMERATED_EVENTS``.
    """
    per_match = _match_pieces(fuzzy, pattern, config)
    involved: set[str] = set()
    for conditions in per_match:
        for condition in conditions:
            involved |= condition.events()
    if len(involved) > MAX_ENUMERATED_EVENTS:
        raise ReproError(
            f"refusing to enumerate 2^{len(involved)} assignments "
            f"(limit is 2^{MAX_ENUMERATED_EVENTS})"
        )
    distribution: dict[int, float] = {}
    for assignment in enumerate_assignments(sorted(involved)):
        weight = assignment_weight(assignment, fuzzy.events)
        if weight == 0.0:
            continue
        count = sum(
            1
            for conditions in per_match
            if any(condition.satisfied_by(assignment) for condition in conditions)
        )
        distribution[count] = distribution.get(count, 0.0) + weight
    return dict(sorted(distribution.items()))


def probability_at_least(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    k: int,
    config: MatchConfig = DEFAULT_CONFIG,
) -> float:
    """P(the query has at least *k* matches)."""
    if k <= 0:
        return 1.0
    distribution = match_count_distribution(fuzzy, pattern, config)
    return sum(weight for count, weight in distribution.items() if count >= k)
