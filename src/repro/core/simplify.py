"""Fuzzy data simplification (paper, slide 19 "perspectives").

Updates — deletions especially — grow the fuzzy tree: survivor copies
multiply and conditions accumulate literals.  Simplification rewrites
the document into a smaller one with the *same possible-worlds
semantics* (the property the test suite checks on every rule):

``certain``
    Events with probability 0 or 1 are resolved: a literal that is
    always true is dropped; a node whose condition contains a literal
    that is always false is removed with its subtree.

``impossible``
    A node whose condition, conjoined with its ancestors' conditions,
    is inconsistent can exist in no world; its subtree is removed.

``implied``
    A literal that already appears in an ancestor's condition is
    redundant on a descendant (the descendant only exists in worlds
    where all ancestors exist) and is dropped.

``siblings``
    Two sibling subtrees identical in every respect except that their
    root conditions are ``γ ∧ e`` and ``γ ∧ ¬e`` are merged into one
    subtree with root condition ``γ`` — in every world where ``γ``
    holds exactly one of the pair existed, so the multiset of children
    is preserved.

``gc``
    Events no longer referenced by any condition are dropped from the
    event table.

Rules run in rounds until a fixpoint is reached.  Each rule can be
toggled (the E7 ablation measures their individual contributions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.condition import Condition
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree

__all__ = ["SimplifyReport", "simplify", "ALL_RULES"]

#: Rule names in application order.
ALL_RULES = ("certain", "impossible", "implied", "siblings", "gc")


@dataclass(slots=True)
class SimplifyReport:
    """Counts of what each simplification rule did."""

    rounds: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    literals_before: int = 0
    literals_after: int = 0
    removed_certain: int = 0
    removed_impossible: int = 0
    dropped_literals: int = 0
    merged_siblings: int = 0
    collected_events: int = 0
    by_rule: dict = field(default_factory=dict)


def simplify(
    fuzzy: FuzzyTree,
    rules: tuple[str, ...] = ALL_RULES,
    max_rounds: int = 100,
) -> SimplifyReport:
    """Simplify *fuzzy* in place; returns a :class:`SimplifyReport`.

    ``rules`` selects which rewriting rules run (names from
    :data:`ALL_RULES`); unknown names raise ``ValueError``.
    """
    unknown = set(rules) - set(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown simplification rules: {sorted(unknown)}")

    report = SimplifyReport()
    report.nodes_before = fuzzy.size()
    report.literals_before = fuzzy.condition_literal_count()

    changed = True
    while changed and report.rounds < max_rounds:
        changed = False
        report.rounds += 1
        if "certain" in rules:
            changed |= _resolve_certain(fuzzy, report) > 0
        if "impossible" in rules:
            changed |= _remove_impossible(fuzzy, report) > 0
        if "implied" in rules:
            changed |= _drop_implied(fuzzy, report) > 0
        if "siblings" in rules:
            changed |= _merge_siblings(fuzzy, report) > 0
    if "gc" in rules:
        _collect_events(fuzzy, report)

    report.nodes_after = fuzzy.size()
    report.literals_after = fuzzy.condition_literal_count()
    return report


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


def _resolve_certain(fuzzy: FuzzyTree, report: SimplifyReport) -> int:
    """Resolve probability-0/1 events inside conditions."""
    certain: dict[str, bool] = {}
    for name, probability in fuzzy.events.items():
        if probability == 1.0:
            certain[name] = True
        elif probability == 0.0:
            certain[name] = False
    if not certain:
        return 0

    work = 0
    for node in list(fuzzy.iter_nodes()):
        if node.parent is None and node is not fuzzy.root:
            continue  # already detached in this pass
        if node.root() is not fuzzy.root:
            continue
        doomed = False
        dropped: list = []
        for literal in node.condition.literals:
            truth = certain.get(literal.event)
            if truth is None:
                continue
            if truth == literal.positive:
                dropped.append(literal)  # literal always true: redundant
            else:
                doomed = True  # literal always false: node impossible
                break
        if doomed:
            node.detach()
            report.removed_certain += node.size()
            work += 1
        elif dropped:
            node.condition = node.condition.without_literals(dropped)
            report.dropped_literals += len(dropped)
            work += 1
    return work


def _remove_impossible(fuzzy: FuzzyTree, report: SimplifyReport) -> int:
    """Remove subtrees whose path condition is inconsistent."""
    work = 0

    def visit(node: FuzzyNode, accumulated: frozenset) -> None:
        nonlocal work
        literals = accumulated | node.condition.literals
        combined = Condition(literals, allow_inconsistent=True)
        if not combined.is_consistent:
            report.removed_impossible += node.size()
            node.detach()
            work += 1
            return
        for child in list(node.children):
            assert isinstance(child, FuzzyNode)
            visit(child, frozenset(literals))

    visit(fuzzy.root, frozenset())
    return work


def _drop_implied(fuzzy: FuzzyTree, report: SimplifyReport) -> int:
    """Drop literals that already appear on an ancestor."""
    work = 0

    def visit(node: FuzzyNode, inherited: frozenset) -> None:
        nonlocal work
        redundant = node.condition.literals & inherited
        if redundant:
            node.condition = node.condition.without_literals(redundant)
            report.dropped_literals += len(redundant)
            work += 1
        for child in list(node.children):
            assert isinstance(child, FuzzyNode)
            visit(child, inherited | node.condition.literals)

    visit(fuzzy.root, frozenset())
    return work


def _subtree_key(node: FuzzyNode) -> str:
    """Canonical form of a subtree *excluding* the root's own condition."""
    own = node.label if node.value is None else f"{node.label}={node.value!r}"
    if node.is_leaf:
        return own
    parts = sorted(child.canonical() for child in node.children)
    return f"{own}({','.join(parts)})"


def _merge_siblings(fuzzy: FuzzyTree, report: SimplifyReport) -> int:
    """Merge sibling pairs with complementary conditions ``γ∧e`` / ``γ∧¬e``."""
    work = 0
    for node in list(fuzzy.iter_nodes()):
        if node.root() is not fuzzy.root:
            continue
        merged_here = True
        while merged_here:
            merged_here = False
            children = [c for c in node.children if isinstance(c, FuzzyNode)]
            groups: dict[str, list[FuzzyNode]] = {}
            for child in children:
                groups.setdefault(_subtree_key(child), []).append(child)
            for group in groups.values():
                if len(group) < 2:
                    continue
                pair = _find_complementary_pair(group)
                if pair is None:
                    continue
                first, second, merged_condition = pair
                first.condition = merged_condition
                second.detach()
                report.merged_siblings += 1
                work += 1
                merged_here = True
                break
    return work


def _find_complementary_pair(
    group: list[FuzzyNode],
) -> tuple[FuzzyNode, FuzzyNode, Condition] | None:
    for i, first in enumerate(group):
        for second in group[i + 1 :]:
            difference = first.condition.literals ^ second.condition.literals
            if len(difference) != 2:
                continue
            a, b = sorted(difference, key=lambda lit: lit.positive)
            if a.event == b.event and a.positive != b.positive:
                shared = first.condition.literals & second.condition.literals
                return first, second, Condition(shared)
    return None


def _collect_events(fuzzy: FuzzyTree, report: SimplifyReport) -> None:
    used = fuzzy.used_events()
    for name in list(fuzzy.events.names()):
        if name not in used:
            fuzzy.events.remove(name)
            report.collected_events += 1
