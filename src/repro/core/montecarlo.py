"""Monte-Carlo query estimation on fuzzy trees.

Exact possible-worlds evaluation enumerates ``2^n`` assignments; the
fuzzy evaluator is exact but its answer-combination step is exponential
in the events of an answer's DNF in the worst case.  Sampling gives a
third point on the cost/accuracy trade-off curve (benchmark E6): draw
assignments from the event table's product distribution, materialise
each sampled world, run the query, and count how often each answer
appears.

Estimates come with a standard error (binomial), so benchmarks can
report confidence intervals alongside the exact probabilities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.fuzzy_tree import FuzzyTree
from repro.events.assignment import sample_assignment
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches
from repro.tpwj.pattern import Pattern
from repro.tpwj.result import distinct_answers
from repro.trees.node import Node

__all__ = ["AnswerEstimate", "estimate_query"]


@dataclass(slots=True)
class AnswerEstimate:
    """A sampled answer: tree, estimated probability and standard error."""

    tree: Node
    probability: float
    stderr: float
    occurrences: int
    samples: int


def estimate_query(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    samples: int = 1000,
    rng: random.Random | None = None,
    config: MatchConfig = DEFAULT_CONFIG,
) -> list[AnswerEstimate]:
    """Estimate the query-answer probabilities by world sampling.

    Returns estimates sorted by decreasing probability (ties broken by
    the answer's canonical form).  Answers never observed in a sample
    do not appear — callers comparing against exact results should
    treat missing answers as probability 0.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    rng = rng if rng is not None else random.Random(0)
    used = sorted(fuzzy.used_events())

    counts: dict[str, int] = {}
    trees: dict[str, Node] = {}
    for _ in range(samples):
        assignment = sample_assignment(fuzzy.events, rng, events=used)
        world = fuzzy.world(assignment)
        matches = find_matches(pattern, world, config)
        for key, answer in distinct_answers(world, matches).items():
            counts[key] = counts.get(key, 0) + 1
            trees.setdefault(key, answer)

    estimates: list[AnswerEstimate] = []
    for key, count in counts.items():
        p = count / samples
        stderr = math.sqrt(p * (1.0 - p) / samples)
        estimates.append(AnswerEstimate(trees[key], p, stderr, count, samples))
    estimates.sort(key=lambda e: (-e.probability, e.tree.canonical()))
    return estimates
